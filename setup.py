"""Legacy setuptools entry point.

All project metadata lives in ``pyproject.toml``; this shim exists so the
package can still be installed in environments whose pip cannot perform
PEP 517/660 editable builds (e.g. offline machines without the ``wheel``
package, where ``pip install -e . --no-build-isolation --no-use-pep517``
or ``python setup.py develop`` are the available fallbacks).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
