#!/usr/bin/env python
"""Quickstart: embed a graph with One-Hot Graph Encoder Embedding.

This walks through the smallest end-to-end use of the library:

1. generate a graph with planted community structure,
2. reveal labels for 10% of the vertices (the paper's protocol),
3. embed the graph with each implementation (reference, vectorised,
   Ligra-engine, process-parallel) and confirm they agree,
4. classify the unlabelled vertices from the embedding.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphEncoderEmbedding
from repro.core import gee_ligra, gee_parallel, gee_python, gee_vectorized
from repro.core.gee_parallel import shutdown_workers
from repro.eval.metrics import accuracy
from repro.graph import planted_partition, summarize
from repro.labels import mask_labels


def main() -> None:
    # 1. A 3-community planted-partition graph (within-block edge probability
    #    10x the between-block probability).
    edges, truth = planted_partition(1500, 3, 0.05, 0.005, seed=0)
    info = summarize(edges)
    print("graph:", info.n_vertices, "vertices,", info.n_edges, "directed edges")

    # 2. Semi-supervised labels: keep 10% of the ground truth, hide the rest.
    labels = mask_labels(truth, observed_fraction=0.10, seed=0)
    print("labelled vertices:", int(np.sum(labels != -1)))

    # 3. Embed with every implementation and check they agree.
    results = {
        "gee-python (Algorithm 1 reference)": gee_python(edges, labels),
        "gee-vectorized (compiled-serial stand-in)": gee_vectorized(edges, labels),
        "gee-ligra (engine, vectorized backend)": gee_ligra(edges, labels, backend="vectorized"),
        "gee-parallel (process shared-memory)": gee_parallel(edges, labels, n_workers=4),
    }
    reference = results["gee-python (Algorithm 1 reference)"].embedding
    print("\nruntime and agreement with the reference implementation:")
    for name, result in results.items():
        delta = float(np.abs(result.embedding - reference).max())
        print(f"  {name:45s} {result.total_seconds*1e3:8.1f} ms   max|dZ| = {delta:.2e}")

    # 4. Use the high-level estimator API for classification of the
    #    unlabelled vertices (nearest class centroid in the embedding).
    model = GraphEncoderEmbedding(method="vectorized", normalize=True).fit(edges, labels)
    predictions = model.predict()
    unlabelled = labels == -1
    acc = accuracy(truth[unlabelled], predictions[unlabelled])
    print(f"\nclassification accuracy on the {int(unlabelled.sum())} unlabelled vertices: {acc:.3f}")

    shutdown_workers()


if __name__ == "__main__":
    main()
