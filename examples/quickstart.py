#!/usr/bin/env python
"""Quickstart: embed a graph with One-Hot Graph Encoder Embedding.

This walks through the end-to-end use of the redesigned API:

1. generate a graph with planted community structure and wrap it in the
   ``Graph`` facade (any graph-like input works: edge lists, ``(s, 2|3)``
   arrays, CSR structures, ``scipy.sparse`` adjacencies),
2. reveal labels for 10% of the vertices (the paper's protocol),
3. compile an embed plan once with ``graph.plan(K)`` and sweep every
   backend in the ``repro.backends`` registry over it — repeated embeds
   skip validation, index building and allocation, and all agree,
4. classify the unlabelled vertices from the embedding,
5. embed *out-of-sample* vertices with ``transform`` (no refit), and
6. stream edge batches through ``partial_fit`` and check the online
   embedding matches the batch one.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Graph, GraphEncoderEmbedding
from repro.backends import backend_capabilities, get_backend, list_backends
from repro.core.gee_parallel import shutdown_workers
from repro.eval.metrics import accuracy
from repro.graph import EdgeList, planted_partition, summarize
from repro.labels import mask_labels


def main() -> None:
    # 1. A 3-community planted-partition graph, wrapped in the Graph facade
    #    so every backend below shares one cached CSR adjacency.
    edges, truth = planted_partition(1500, 3, 0.05, 0.005, seed=0)
    graph = Graph.coerce(edges)
    info = summarize(edges)
    print("graph:", info.n_vertices, "vertices,", info.n_edges, "directed edges")

    # 2. Semi-supervised labels: keep 10% of the ground truth, hide the rest.
    labels = mask_labels(truth, observed_fraction=0.10, seed=0)
    print("labelled vertices:", int(np.sum(labels != -1)))

    # 3. Compile the embed plan for K=3 once — validated edge arrays, flat
    #    scatter indices, CSR/CSC views and a reusable output buffer — and
    #    sweep every registered backend over it.  The plan is cached on the
    #    Graph, so the whole sweep pays the label-independent work once.
    reference = get_backend("python").embed(graph, labels).embedding
    plan = graph.plan(3)
    print("\nregistered backends on one compiled plan (runtime and agreement):")
    for name in list_backends():
        caps = backend_capabilities(name)
        backend = get_backend(name, n_workers=2 if caps.supports_n_workers else None)
        result = backend.embed_with_plan(plan, labels)
        delta = float(np.abs(result.embedding - reference).max())
        tag = "parallel" if caps.parallel else "serial  "
        print(
            f"  {name:18s} [{tag}] {result.total_seconds*1e3:8.1f} ms   "
            f"max|dZ| = {delta:.2e}"
        )

    # 4. The estimator API: nearest-class-centroid classification of the
    #    unlabelled vertices.
    model = GraphEncoderEmbedding(method="vectorized", normalize=True).fit(graph, labels)
    predictions = model.predict()
    unlabelled = labels == -1
    acc = accuracy(truth[unlabelled], predictions[unlabelled])
    print(f"\nclassification accuracy on the {int(unlabelled.sum())} unlabelled vertices: {acc:.3f}")

    # 5. Out-of-sample vertices: three new vertices attach to the graph and
    #    are embedded from their incident edges alone — no refit.
    n = graph.n_vertices
    new_src = np.array([n, n, n + 1, n + 2, n + 2])
    new_dst = np.array([0, 1, 510, 1001, 1002])
    new_edges = EdgeList(new_src, new_dst, n_vertices=n + 3)
    Z_new = model.transform(new_edges)
    print("out-of-sample embedding shape:", Z_new.shape)

    # 6. Streaming: feed the same edge list in 10 batches; the online
    #    embedding matches the batch fit up to floating-point rounding.
    stream = GraphEncoderEmbedding(3)
    for i, ids in enumerate(np.array_split(np.arange(edges.n_edges), 10)):
        batch = EdgeList(edges.src[ids], edges.dst[ids], None, edges.n_vertices)
        stream.partial_fit(batch, labels=labels if i == 0 else None)
    batch_fit = GraphEncoderEmbedding(method="vectorized").fit(graph, labels)
    drift = float(np.abs(stream.embedding_ - batch_fit.embedding_).max())
    print(f"streamed vs batch embedding: max|dZ| = {drift:.2e}")

    shutdown_workers()


if __name__ == "__main__":
    main()
