#!/usr/bin/env python
"""Reproduce the paper's evaluation end-to-end (Table I and Figures 2–4).

This is the scripted form of the benchmark harness: it runs every
experiment driver at a configurable scale, prints the measured tables next
to the paper's published numbers, and renders the two figures as ASCII
plots.  It is the command used to populate EXPERIMENTS.md.

Run with (roughly a minute at the default scale)::

    python examples/scaling_study.py
    python examples/scaling_study.py --scale-multiplier 4 --repeats 3
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.eval import experiments
from repro.eval.reporting import ascii_line_plot, format_markdown_table
from repro.graph.datasets import DEFAULT_SCALE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale-multiplier", type=float, default=1.0,
                        help="multiply the default 1/1600 dataset shrink factor")
    parser.add_argument("--repeats", type=int, default=1, help="timing repeats per cell")
    parser.add_argument("--skip-python", action="store_true",
                        help="skip the slow pure-Python reference column")
    parser.add_argument("--max-cores", type=int, default=None,
                        help="cap the strong-scaling sweep")
    args = parser.parse_args()
    scale = DEFAULT_SCALE * args.scale_multiplier

    print("=" * 78)
    print("Table I — runtime (seconds) on the scaled stand-in graphs")
    print("=" * 78)
    rows = experiments.table1(
        scale=scale, repeats=args.repeats, include_python=not args.skip_python
    )
    print(format_markdown_table(
        rows,
        ["graph", "n", "s", "gee-python", "numba-serial", "ligra-serial", "ligra-parallel",
         "speedup_vs_numba", "paper_speedup_vs_numba"],
    ))

    print("\n" + "=" * 78)
    print("Figure 2 — Friendster stand-in, normalised to the compiled serial baseline")
    print("=" * 78)
    print(format_markdown_table(experiments.figure2(
        scale=scale, repeats=args.repeats, include_python=not args.skip_python
    )))

    print("\n" + "=" * 78)
    print("Figure 3 — strong scaling (measured locally + paper-machine model)")
    print("=" * 78)
    fig3 = experiments.figure3(scale=scale, repeats=args.repeats, max_cores=args.max_cores)
    print(format_markdown_table(fig3["measured"], ["cores", "runtime_s", "speedup"]))
    print()
    print(ascii_line_plot(
        {
            "measured": [(m["cores"], m["speedup"]) for m in fig3["measured"]],
            "model (paper machine)": [(m["cores"], m["speedup"]) for m in fig3["model"]],
        },
        xlabel="cores", ylabel="speedup", title="speedup vs cores",
    ))

    print("\n" + "=" * 78)
    print("Figure 4 — runtime vs edges on Erdős–Rényi graphs (log–log)")
    print("=" * 78)
    fig4 = experiments.figure4(
        log2_edges=range(13, 20), repeats=args.repeats, include_python=not args.skip_python
    )
    print(format_markdown_table(fig4))
    series = {
        name: [
            (row["n_edges"], row[name])
            for row in fig4
            if isinstance(row[name], float) and not np.isnan(row[name])
        ]
        for name in experiments.TABLE1_COLUMNS
    }
    print()
    print(ascii_line_plot(series, logx=True, logy=True,
                          xlabel="edges", ylabel="runtime (s)", title="runtime vs edges"))

    print("\n" + "=" * 78)
    print("Ablations")
    print("=" * 78)
    print(format_markdown_table([experiments.ablation_atomics(scale=scale, repeats=args.repeats)]))
    print()
    print(format_markdown_table(experiments.ablation_projection_init()))

    from repro.core.gee_parallel import shutdown_workers

    shutdown_workers()


if __name__ == "__main__":
    main()
