#!/usr/bin/env python
"""Semi-supervised vertex classification on a noisy multi-community graph.

The motivating applications in the paper's introduction (connectome
analysis, cybersecurity, community detection) are all vertex-inference
problems: given a graph and labels for a few vertices, infer the rest.
This example builds a stochastic block model with six unequal, noisy
communities (plus an overlay of random "noise" edges so no method gets a
clean separation for free), reveals a varying fraction of labels, and
compares three ways of labelling the remaining vertices:

* GEE embedding + nearest class centroid (the library's estimator API),
* GEE with the normalised-Laplacian variant,
* plain label propagation (a no-embedding baseline).

Run with::

    python examples/vertex_classification.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphEncoderEmbedding
from repro.core.validation import UNKNOWN_LABEL
from repro.eval.metrics import accuracy
from repro.eval.reporting import format_markdown_table
from repro.graph import EdgeList, erdos_renyi, stochastic_block_model
from repro.labels import mask_labels, propagate_labels

N_CLASSES = 6
BLOCK_SIZES = [500, 400, 350, 300, 250, 200]
P_IN, P_OUT = 0.04, 0.003
NOISE_EDGES = 8000


def build_graph(seed: int = 3):
    """Unequal-block SBM with an Erdős–Rényi noise overlay."""
    B = np.full((N_CLASSES, N_CLASSES), P_OUT)
    np.fill_diagonal(B, P_IN)
    edges, truth = stochastic_block_model(BLOCK_SIZES, B, seed=seed)
    noise = erdos_renyi(edges.n_vertices, NOISE_EDGES, seed=seed + 1, undirected=True)
    merged = EdgeList(
        np.concatenate([edges.src, noise.src]),
        np.concatenate([edges.dst, noise.dst]),
        None,
        edges.n_vertices,
    )
    return merged, truth


def main() -> None:
    edges, truth = build_graph()
    print(
        f"noisy SBM: {edges.n_vertices} vertices, {edges.n_edges} directed edges, "
        f"max degree {int(edges.out_degrees().max())}, {N_CLASSES} planted classes\n"
    )

    rows = []
    for observed_fraction in (0.02, 0.05, 0.10, 0.25):
        labels = mask_labels(truth, observed_fraction, seed=2)
        unlabelled = labels == UNKNOWN_LABEL

        gee = GraphEncoderEmbedding(method="parallel", normalize=True, n_workers=4).fit(
            edges, labels
        )
        gee_acc = accuracy(truth[unlabelled], gee.predict()[unlabelled])

        lap = GraphEncoderEmbedding(
            method="vectorized", laplacian=True, normalize=True
        ).fit(edges, labels)
        lap_acc = accuracy(truth[unlabelled], lap.predict()[unlabelled])

        propagated = propagate_labels(edges, labels, n_classes=N_CLASSES)
        prop_known = propagated != UNKNOWN_LABEL
        prop_acc = accuracy(
            truth[unlabelled & prop_known], propagated[unlabelled & prop_known]
        )

        rows.append(
            {
                "observed labels": f"{observed_fraction:.0%}",
                "GEE (adjacency)": round(gee_acc, 3),
                "GEE (Laplacian)": round(lap_acc, 3),
                "label propagation": round(prop_acc, 3),
                "embed time (ms)": round(gee.timings_["total"] * 1e3, 1),
            }
        )

    print("accuracy on unlabelled vertices:\n")
    print(format_markdown_table(rows))

    from repro.core.gee_parallel import shutdown_workers

    shutdown_workers()


if __name__ == "__main__":
    main()
