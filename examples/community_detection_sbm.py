#!/usr/bin/env python
"""Unsupervised community detection with GEE (the paper's §II use case).

The label vector GEE consumes "may be derived from unsupervised clustering,
such as by running the Leiden community detection algorithm".  This example
compares three unsupervised pipelines on a stochastic block model:

* GEE's own refinement loop (random labels → embed → k-means → re-embed),
* Leiden-style modularity communities used directly,
* Leiden communities used as the *warm start* of the GEE refinement loop,
* adjacency spectral embedding + k-means (the classical baseline GEE is
  meant to approximate at a fraction of the cost).

Run with::

    python examples/community_detection_sbm.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import adjacency_spectral_embedding
from repro.core import gee_unsupervised
from repro.eval.metrics import adjusted_rand_index, best_match_accuracy
from repro.graph import planted_partition
from repro.labels import kmeans, leiden_communities

N_VERTICES = 1200
N_BLOCKS = 4
P_IN, P_OUT = 0.06, 0.004


def report(name: str, labels: np.ndarray, truth: np.ndarray, seconds: float) -> None:
    ari = adjusted_rand_index(truth, labels)
    acc = best_match_accuracy(truth, labels)
    k = int(labels.max()) + 1
    print(f"  {name:38s} communities={k:3d}  ARI={ari:5.3f}  matched-accuracy={acc:5.3f}  ({seconds*1e3:.0f} ms)")


def main() -> None:
    edges, truth = planted_partition(N_VERTICES, N_BLOCKS, P_IN, P_OUT, seed=7)
    print(
        f"planted partition: {N_VERTICES} vertices, {edges.n_edges} directed edges, "
        f"{N_BLOCKS} blocks (p_in={P_IN}, p_out={P_OUT})\n"
    )

    # 1. GEE refinement from a random start.
    t0 = time.perf_counter()
    refined = gee_unsupervised(edges, N_BLOCKS, seed=0)
    report("GEE refinement (random start)", refined.labels, truth, time.perf_counter() - t0)
    print(f"      converged={refined.converged} after {refined.n_iterations} iterations")

    # 2. Leiden-style modularity communities on their own.
    t0 = time.perf_counter()
    communities = leiden_communities(edges, seed=0)
    report("Leiden-style modularity", communities.labels, truth, time.perf_counter() - t0)
    print(f"      modularity={communities.modularity:.3f}")

    # 3. Leiden as warm start for GEE refinement (communities capped to K).
    t0 = time.perf_counter()
    warm = np.minimum(communities.labels, N_BLOCKS - 1)
    warm_refined = gee_unsupervised(edges, N_BLOCKS, initial_labels=warm, seed=0)
    report("GEE refinement (Leiden warm start)", warm_refined.labels, truth, time.perf_counter() - t0)

    # 4. Spectral baseline: ASE + spherical k-means.
    t0 = time.perf_counter()
    Z = adjacency_spectral_embedding(edges, N_BLOCKS, seed=0)
    norms = np.linalg.norm(Z, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    spectral = kmeans(Z / norms, N_BLOCKS, seed=0).labels
    report("adjacency spectral embedding + k-means", spectral, truth, time.perf_counter() - t0)


if __name__ == "__main__":
    main()
