#!/usr/bin/env python
"""Dynamic graphs: keep an embedding live while the graph mutates.

The scenario: a community-structured graph under continuous churn — edges
arrive and depart every step, and a slice of vertices slowly migrates
between communities.  Instead of re-fitting from scratch per version, the
dynamic-graph subsystem maintains the embedding in O(Δ):

1. generate a drift schedule with ``temporal_drift`` (arrivals, removals
   and community drift, all replayable),
2. wrap the initial graph in a ``DynamicGraph`` and attach an
   ``IncrementalEmbedding``,
3. per batch: stage the mutations, ``commit()`` (one atomic, versioned
   delta), ``update()`` (scatter-patch of the raw per-class sums + touched
   row renormalisation),
4. verify against a cold re-fit — identical to 1e-10 at every version,
5. take a copy-on-write ``snapshot()`` mid-stream and show it stays
   frozen while commits continue, and
6. track drifting communities with ``gee_unsupervised``, which carries its
   converged labels across versions (warm starts instead of cold random
   initialisation).

Run with::

    python examples/streaming_drift.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DynamicGraph, GraphEncoderEmbedding, IncrementalEmbedding
from repro.core import gee_unsupervised
from repro.graph import Graph, temporal_drift

N, E, K = 3000, 40_000, 6


def main() -> None:
    # 1. A replayable churn schedule: ~1% of edges turn over per batch and
    #    0.5% of vertices drift to another community.
    scenario = temporal_drift(
        N, E, K,
        n_batches=10,
        arrival_rate=0.005,
        removal_rate=0.005,
        drift_fraction=0.005,
        weighted=True,
        seed=7,
    )
    labels = scenario.labels

    # 2. The live pipeline: versioned graph + incrementally-maintained
    #    embedding (any backend declaring supports_incremental works).
    dyn = DynamicGraph(scenario.initial)
    inc = IncrementalEmbedding(dyn, labels, n_classes=K, backend="vectorized")
    print(f"v0: {dyn!r}")

    # 5. A reader takes a snapshot now; commits below never disturb it.
    snap = dyn.snapshot()

    # 3./4. Replay the schedule; after every version, compare against what
    #        a from-scratch fit on the mutated graph would produce.
    t_commit = t_update = t_refit = 0.0
    for batch in scenario.batches:
        if batch.n_removed:
            dyn.remove_edges(batch.remove_src, batch.remove_dst)
        dyn.add_edges(batch.add.src, batch.add.dst, batch.add.weights)
        t0 = time.perf_counter()
        dyn.commit()
        t1 = time.perf_counter()
        report = inc.update()
        t2 = time.perf_counter()
        fresh = GraphEncoderEmbedding(K).fit(Graph(dyn.graph.edges.copy()), labels)
        t3 = time.perf_counter()
        t_commit += t1 - t0
        t_update += t2 - t1
        t_refit += t3 - t2
        err = np.abs(inc.embedding - fresh.embedding_).max()
        assert err <= 1e-10, err
        print(
            f"v{dyn.version}: Δ={report.patched_edges} edges patched, "
            f"staleness {inc.staleness:.2%}, |inc - refit| = {err:.1e}"
        )
    # The commit (building the next version's arrays) is paid by any
    # strategy that wants the mutated graph; the embedding *maintenance* is
    # where O(Δ) beats O(E), and the gap widens with graph size.
    print(
        f"embedding maintenance {t_update * 1e3:.1f} ms vs refit "
        f"{t_refit * 1e3:.1f} ms ({t_refit / t_update:.0f}x) over "
        f"{scenario.n_batches} versions (+{t_commit * 1e3:.1f} ms commits)"
    )
    assert snap.n_edges == scenario.initial.n_edges  # frozen view

    # 6. Unsupervised tracking of the drifted communities: the second call
    #    warm-starts from the first call's converged labels.
    first = gee_unsupervised(dyn, K, seed=0)
    second = gee_unsupervised(dyn, K, seed=0)  # carried state: ~1 iteration
    print(
        f"refinement: cold {first.n_iterations} iterations, "
        f"warm {second.n_iterations} (state carried across versions)"
    )


if __name__ == "__main__":
    main()
