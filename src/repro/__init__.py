"""repro — Edge-Parallel Graph Encoder Embedding (GEE-Ligra), in Python.

A reproduction of "Edge-Parallel Graph Encoder Embedding" (IPPS 2024):
the One-Hot Graph Encoder Embedding algorithm, a Ligra-like shared-memory
graph engine, and the parallel GEE implementations built on top of it,
together with the substrates (graph generators, shared-memory process
parallelism, label sources, metrics) and the benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro import GraphEncoderEmbedding
    from repro.graph import planted_partition
    from repro.labels import mask_labels

    edges, truth = planted_partition(1000, 5, 0.05, 0.005, seed=0)
    y = mask_labels(truth, 0.1, seed=0)
    model = GraphEncoderEmbedding(method="parallel", n_workers=4).fit(edges, y)
    Z = model.embedding_

Execution strategies live in the :mod:`repro.backends` registry
(``list_backends()`` / ``get_backend()``); graph inputs of any shape
(edge arrays, CSR, ``scipy.sparse``) are accepted everywhere through the
:class:`repro.graph.Graph` facade.
"""

from .backends import GEEBackend, get_backend, list_backends, register_backend
from .core import (
    EmbeddingResult,
    GraphEncoderEmbedding,
    gee_laplacian,
    gee_ligra,
    gee_parallel,
    gee_python,
    gee_unsupervised,
    gee_vectorized,
)
from .graph import ChunkedEdgeSource, CSRGraph, EdgeList, Graph, as_graph
from .ligra import LigraEngine, VertexSubset
from .shard import ShardedGraph
from .stream import DynamicGraph, IncrementalEmbedding, MutationLog, SegmentedEdgeStore

# Importing repro.obs arms REPRO_TRACE=path tracing (a no-op otherwise).
from . import obs  # noqa: E402  (after the public API so obs can't shadow it)

__version__ = "1.4.0"

__all__ = [
    "GraphEncoderEmbedding",
    "EmbeddingResult",
    "gee_python",
    "gee_vectorized",
    "gee_ligra",
    "gee_parallel",
    "gee_laplacian",
    "gee_unsupervised",
    "EdgeList",
    "CSRGraph",
    "Graph",
    "as_graph",
    "ChunkedEdgeSource",
    "DynamicGraph",
    "IncrementalEmbedding",
    "MutationLog",
    "SegmentedEdgeStore",
    "ShardedGraph",
    "GEEBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    "LigraEngine",
    "VertexSubset",
    "__version__",
]
