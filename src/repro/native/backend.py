"""The ``native`` backend: the JIT kernel tier behind the standard protocol.

Registered **conditionally**: when :func:`~repro.native.availability.native_available`
is false (numba absent/broken, or ``REPRO_DISABLE_NATIVE`` set) the backend
simply never enters the registry — ``list_backends()`` omits it,
``backend="auto"`` never considers it, and resolving ``"native"`` raises a
ValueError carrying :func:`~repro.native.availability.native_status` instead
of an ImportError.  This keeps every registry-wide behavioural probe (the
capability-contract analysis rule instantiates each registered backend)
honest: nothing registered is ever unconstructible.

The backend covers the full protocol surface: plan-based embeds through the
block-parallel fused kernel, chunked plans through the serial streaming
kernels, O(Δ) incremental patches, and owner-range sharded execution
(``n_shards`` option) with the one-sided segment kernel per shard.
"""

from __future__ import annotations

import numpy as np

from ..backends.registry import BackendCapabilities, GEEBackend, register_backend
from ..parallel import effective_worker_count
from .api import gee_native_chunked, gee_native_with_plan, patch_sums_native
from .availability import native_available, native_status

__all__ = ["NativeGEEBackend", "NATIVE_CAPABILITIES"]

#: Declared capabilities of the native tier (module-level so discovery
#: helpers and docs can describe the backend even where it is unregistered).
NATIVE_CAPABILITIES = BackendCapabilities(
    supports_n_workers=True,
    parallel=True,
    deterministic=True,
    supports_chunked=True,
    supports_incremental=True,
    supports_layout=True,
    supports_sharding=True,
    description=(
        "numba-JIT parallel segment-sum kernels: prange over disjoint row "
        "blocks, GIL-free, no O(E) temporaries (n_shards option)"
    ),
)


class NativeGEEBackend(GEEBackend):
    """JIT-compiled block-parallel segment-sum execution.

    Options
    -------
    n_shards:
        When set, run the owner-range sharded path (``graph.shard(n)``)
        with the native one-sided segment kernel per shard instead of the
        single-pool fused pass.
    force_shadow:
        Pin the pure-NumPy shadow kernels even where numba is available —
        the equivalence-test hook (shadow results must match JIT results
        exactly; see ``docs/native.md``).
    """

    _OPTIONS = {"n_shards": None, "force_shadow": False}

    # Explicit (not via register_backend) so the class carries its name and
    # capabilities even in processes where registration is skipped.
    name = "native"
    capabilities = NATIVE_CAPABILITIES

    def __init__(self, *, n_workers=None, **options):
        super().__init__(n_workers=n_workers, **options)
        if not native_available() and not self.force_shadow:
            raise RuntimeError(
                f"the native backend is unavailable: {native_status()} "
                "(pass force_shadow=True to run the pure-NumPy shadow "
                "kernels through the same code paths)"
            )

    # ------------------------------------------------------------------ #
    # Embedding protocol
    # ------------------------------------------------------------------ #
    def _resolved_shards(self, n_vertices: int) -> int:
        requested = self.n_shards
        if requested is None:
            requested = effective_worker_count(None)
        return max(1, min(int(requested), max(1, int(n_vertices))))

    def _embed(self, graph, labels, n_classes):
        if self.n_shards is not None:
            sharded = graph.shard(self._resolved_shards(graph.n_vertices))
            return sharded.embed(
                labels,
                n_classes,
                n_workers=self.n_workers,
                kernel="shadow" if self.force_shadow else "native",
            )
        from ..core.validation import infer_n_classes

        k = infer_n_classes(labels) if n_classes is None else int(n_classes)
        plan = graph.plan(k, layout="sorted")
        return gee_native_with_plan(
            plan, labels, n_workers=self.n_workers, force_shadow=self.force_shadow
        )

    def _embed_with_plan(self, plan, labels):
        if self.n_shards is not None:
            graph = plan.graph
            sharded = graph.shard(self._resolved_shards(graph.n_vertices))
            return sharded.embed(
                labels,
                plan.n_classes,
                n_workers=self.n_workers,
                kernel="shadow" if self.force_shadow else "native",
            )
        return gee_native_with_plan(
            plan, labels, n_workers=self.n_workers, force_shadow=self.force_shadow
        )

    def _embed_with_chunked_plan(self, plan, labels):
        return gee_native_chunked(plan, labels, force_shadow=self.force_shadow)

    def _patch_sums(
        self,
        S_flat: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        delta_w: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
    ) -> None:
        patch_sums_native(
            S_flat,
            src,
            dst,
            delta_w,
            labels,
            n_classes,
            force_shadow=self.force_shadow,
        )


def register_native_backend() -> bool:
    """Install :class:`NativeGEEBackend` in the registry when available.

    Returns whether registration happened.  Called once from
    :mod:`repro.backends` at import; safe to call again (re-registration is
    skipped, not raised, so forced-availability tests can exercise it).
    """
    if not native_available():
        return False
    from ..backends.registry import _REGISTRY

    if "native" in _REGISTRY:  # pragma: no cover - double-import guard
        return True
    register_backend("native", capabilities=NATIVE_CAPABILITIES)(NativeGEEBackend)
    return True
