"""Kernel dispatch: JIT implementation when available, shadow otherwise.

The single resolution point between the two tiers.  :func:`get_kernel`
returns the numba implementation of a named kernel when the tier is
available (importing/compiling lazily, once per process) and the
same-signature pure-NumPy shadow otherwise, so call sites never branch on
availability themselves.

:data:`NATIVE_KERNEL_NAMES` is the authoritative kernel inventory — the
``native-parity`` analysis rule walks it and asserts every name resolves
to a shadow (always) and to a JIT implementation (when numba is present),
and cross-checks the inventory against the ``@njit`` definitions in
:mod:`repro.native.kernels` at the AST level.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from . import shadow
from .availability import native_available

__all__ = [
    "NATIVE_KERNEL_NAMES",
    "get_kernel",
    "kernel_pair",
    "using_native",
]

#: Every kernel of the native tier, by name.  Each name is both a function
#: in :mod:`repro.native.kernels` (``@njit``) and one in
#: :mod:`repro.native.shadow` (pure NumPy), with identical signatures.
NATIVE_KERNEL_NAMES: Tuple[str, ...] = (
    "segment_sum_blocks",
    "segment_accumulate",
    "accumulate_edges_scaled",
    "patch_sums",
    "flat_scatter_add",
)

#: Lazily-imported kernels module (``None`` = not yet tried, ``False`` =
#: tried and unavailable).
_KERNELS_MODULE = None


def _jit_module():
    """The :mod:`repro.native.kernels` module, or ``None`` when absent.

    Import failure is cached: a broken numba degrades to the shadows for
    the life of the process rather than re-raising per call.
    """
    global _KERNELS_MODULE
    if _KERNELS_MODULE is None:
        if not native_available():
            _KERNELS_MODULE = False
        else:
            try:
                from . import kernels

                _KERNELS_MODULE = kernels
            except ImportError:  # pragma: no cover - forced-available probes
                _KERNELS_MODULE = False
    return _KERNELS_MODULE or None


def get_kernel(name: str, *, force_shadow: bool = False) -> Callable:
    """The callable implementing kernel ``name`` in this process.

    JIT when the tier is available (and ``force_shadow`` is off), shadow
    otherwise.  ``force_shadow=True`` is the equivalence-test hook: it
    pins the NumPy implementation even where numba is installed.
    """
    if name not in NATIVE_KERNEL_NAMES:
        raise KeyError(
            f"unknown native kernel {name!r}; known kernels: "
            f"{list(NATIVE_KERNEL_NAMES)}"
        )
    if not force_shadow:
        module = _jit_module()
        if module is not None:
            return getattr(module, name)
    return getattr(shadow, name)


def kernel_pair(name: str) -> Dict[str, Optional[Callable]]:
    """Both implementations of ``name``: ``{"native": ..., "shadow": ...}``.

    ``native`` is ``None`` when the JIT tier is absent.  Consumed by the
    ``native-parity`` rule's live registry check.
    """
    if name not in NATIVE_KERNEL_NAMES:
        raise KeyError(
            f"unknown native kernel {name!r}; known kernels: "
            f"{list(NATIVE_KERNEL_NAMES)}"
        )
    module = _jit_module()
    return {
        "native": None if module is None else getattr(module, name, None),
        "shadow": getattr(shadow, name),
    }


def using_native() -> bool:
    """Whether :func:`get_kernel` currently resolves to JIT kernels."""
    return _jit_module() is not None
