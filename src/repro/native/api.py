"""Plan-path entry points of the native kernel tier.

The functional layer between the dispatcher (:mod:`repro.native.dispatch`)
and the registered ``native`` backend: each function consumes a compiled
:class:`~repro.core.plan.EmbedPlan` / :class:`~repro.core.plan.ChunkedPlan`
exactly like the vectorized plan kernels do — compile-once layout reuse,
reused output buffers, lazy projections — and runs the edge pass through
:func:`~repro.native.dispatch.get_kernel`, so every function here works
(via the shadows) even where numba is absent.  ``force_shadow=True`` pins
the NumPy implementations; the equivalence tests sweep both.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..core.gee_vectorized import class_rescale
from ..core.projection import projection_from_scales, projection_scales
from ..core.result import EmbeddingResult
from .dispatch import get_kernel, using_native

__all__ = [
    "gee_native_with_plan",
    "gee_native_chunked",
    "patch_sums_native",
    "set_native_threads",
]

#: Dummy weight array for unit-weight graphs: the JIT kernels take no
#: ``None`` (numba cannot type it), so weightless calls pass this with
#: ``has_weights=False`` and the branch never reads it.
_EMPTY_WEIGHTS = np.empty(0, dtype=np.float64)


def set_native_threads(n_workers: Optional[int]) -> Optional[int]:
    """Pin numba's thread count for the ``prange`` kernels; returns it.

    ``None`` leaves numba's default (all cores) untouched and returns
    ``None``.  Clamped to the layout-time maximum
    (``numba.config.NUMBA_NUM_THREADS`` — raising above it is an error in
    numba).  A no-op returning ``None`` when the JIT tier is absent: the
    shadows are single-threaded NumPy.
    """
    if n_workers is None or not using_native():
        return None
    from numba import config, set_num_threads

    workers = max(1, min(int(n_workers), int(config.NUMBA_NUM_THREADS)))
    set_num_threads(workers)
    return workers


def gee_native_with_plan(
    plan,
    labels: np.ndarray,
    *,
    n_workers: Optional[int] = None,
    force_shadow: bool = False,
) -> EmbeddingResult:
    """GEE through a plan's fused layout with the native segment-sum kernel.

    The native counterpart of
    :func:`~repro.core.gee_vectorized.gee_fused_with_plan`: one
    block-parallel pass over the compiled ``2E`` incidences with zeroing
    folded in (``zero_first``), then the column rescale.  Layout-preserving
    plans (``layout="none"``) re-plan as ``"sorted"`` through the facade's
    per-layout plan cache — the native kernel is block-structured by
    design, and the facade makes the switch a one-time compile.

    Returns a view of the plan's reused output buffer (the standard plan
    contract; ``result.detached()`` copies one out).
    """
    if plan.layout == "none":
        plan = plan.graph.plan(plan.n_classes, layout="sorted")
    y = plan.validate_labels(labels)
    k = plan.n_classes
    fused = plan.fused

    t0 = time.perf_counter()
    workers = set_native_threads(n_workers)
    kernel = get_kernel("segment_sum_blocks", force_shadow=force_shadow)
    t1 = time.perf_counter()

    Z = plan.output_matrix()
    weights = fused.weights
    kernel(
        Z.reshape(-1),
        fused.owner_flat,
        fused.partner,
        _EMPTY_WEIGHTS if weights is None else weights,
        weights is not None,
        y,
        fused.flat_cuts,
        fused.edge_cuts,
        True,
    )
    class_rescale(Z, y, k)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(
            y, projection_scales(y, k), k
        ),
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-native",
        n_workers=workers or 1,
        buffer_view=True,
        layout=fused.layout,
    )


def gee_native_chunked(
    plan, labels: np.ndarray, *, force_shadow: bool = False
) -> EmbeddingResult:
    """Out-of-core GEE on a :class:`~repro.core.plan.ChunkedPlan`, natively.

    Streams the plan's source chunk by chunk through the serial JIT
    kernels: sorted-incidence plans run the one-sided raw-sum accumulate
    (rescaled once at the end), layout-preserving plans the two-sided
    scaled edge kernel.  Temporaries stay O(chunk) — the per-chunk
    ``owner*K`` flat components are the same compile the vectorized
    streaming path pays.
    """
    y = plan.validate_labels(labels)
    k = plan.n_classes
    sorted_layout = getattr(plan, "layout", "none") == "sorted"

    t0 = time.perf_counter()
    scales = None if sorted_layout else projection_scales(y, k)
    t1 = time.perf_counter()

    Z_flat = plan.zeroed_output()
    if sorted_layout:
        kernel = get_kernel("segment_accumulate", force_shadow=force_shadow)
        for owner, partner, w in plan.source.iter_chunks():
            kernel(Z_flat, owner * k, partner, w, True, y)
    else:
        kernel = get_kernel("accumulate_edges_scaled", force_shadow=force_shadow)
        for src, dst, w in plan.source.iter_chunks():
            kernel(Z_flat, src, dst, w, y, scales, k)
    Z = Z_flat.reshape(plan.n_vertices, k)
    if sorted_layout:
        class_rescale(Z, y, k)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(
            y, projection_scales(y, k) if scales is None else scales, k
        ),
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-native",
        n_workers=1,
        buffer_view=True,
        layout=getattr(plan, "layout", "none"),
    )


def patch_sums_native(
    S_flat: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    delta_w: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    *,
    force_shadow: bool = False,
) -> None:
    """O(Δ) incremental patch through the native delta kernel, in place.

    The incremental protocol of the ``native`` backend: a single serial
    loop over the signed delta edges (a JIT delta loop beats any parallel
    dispatch at realistic Δ sizes, and stays deterministic).
    """
    kernel = get_kernel("patch_sums", force_shadow=force_shadow)
    kernel(
        S_flat,
        np.ascontiguousarray(src),
        np.ascontiguousarray(dst),
        np.ascontiguousarray(delta_w, dtype=np.float64),
        labels,
        int(n_classes),
    )
