"""Availability probe for the numba-JIT native kernel tier.

The native tier is strictly optional: numba is an *extra*, never a hard
dependency.  Everything that consumes the tier asks this module first —
:func:`native_available` — and degrades to the pure-NumPy shadow kernels
(or hides the ``native`` backend from the registry entirely) when the
answer is no.  Importing :mod:`repro.native` must therefore never raise,
no matter what state numba (or its LLVM toolchain) is in.

Three ways the tier is absent, all reported by :func:`native_status`:

* numba is not installed (``ModuleNotFoundError``);
* numba imports but is broken (any other exception during import — a
  mismatched llvmlite is the classic case);
* the user disabled it with ``REPRO_DISABLE_NATIVE=1`` (any non-empty
  value other than ``0``/``false``/``no``/``off``/``""`` disables).

The probe runs once per process and is cached; the environment variable
is read at first probe time, so flipping it mid-process has no effect
(tests that need both states run subprocesses — see
``tests/native/test_absence.py``).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

__all__ = [
    "DISABLE_ENV_VAR",
    "native_available",
    "native_status",
    "numba_version",
    "reset_probe_cache",
]

#: Environment variable that force-disables the native tier.
DISABLE_ENV_VAR = "REPRO_DISABLE_NATIVE"

#: Values of :data:`DISABLE_ENV_VAR` that do NOT disable (everything else
#: non-empty does).
_FALSY = frozenset({"", "0", "false", "no", "off"})

#: Cached probe result: ``(available, status, numba_version)``.
_PROBE: Optional[Tuple[bool, str, Optional[str]]] = None


def _probe() -> Tuple[bool, str, Optional[str]]:
    flag = os.environ.get(DISABLE_ENV_VAR, "")
    if flag.strip().lower() not in _FALSY:
        return (
            False,
            f"disabled via {DISABLE_ENV_VAR}={flag!r}",
            None,
        )
    try:
        import numba
    except ModuleNotFoundError:
        return (
            False,
            "numba is not installed (pip install numba to enable the "
            "native kernel tier)",
            None,
        )
    except Exception as exc:  # pragma: no cover - broken toolchain
        # A numba that imports but explodes (llvmlite mismatch, broken
        # LLVM) must degrade exactly like an absent one.
        return (False, f"numba import failed: {type(exc).__name__}: {exc}", None)
    version = getattr(numba, "__version__", "unknown")
    return (True, f"available (numba {version})", version)


def native_available() -> bool:
    """Whether the numba-JIT kernel tier can run in this process."""
    global _PROBE
    if _PROBE is None:
        _PROBE = _probe()
    return _PROBE[0]


def native_status() -> str:
    """One-line human-readable availability status (always defined)."""
    global _PROBE
    if _PROBE is None:
        _PROBE = _probe()
    return _PROBE[1]


def numba_version() -> Optional[str]:
    """The probed numba version string, or ``None`` when unavailable."""
    global _PROBE
    if _PROBE is None:
        _PROBE = _probe()
    return _PROBE[2]


def reset_probe_cache() -> None:
    """Drop the cached probe so the next query re-reads the environment.

    Test plumbing only: backend *registration* happens once at import of
    :mod:`repro.backends` and is not re-run by resetting this cache.
    """
    global _PROBE
    _PROBE = None
