"""repro.native — the optional numba-JIT kernel tier.

A set of loop-nest kernels compiled below the NumPy floor: the fused
segment-sum edge pass as a ``prange`` over disjoint row blocks, the
streaming/per-shard one-sided accumulate, the O(Δ) incremental patch and
the flat scatter primitive — all GIL-free, deterministic, and free of the
O(E) temporaries the vectorized tier allocates per call.

Strictly optional: numba is never a hard dependency.  Importing this
package never raises; :func:`native_available` reports whether the JIT
tier can run (``REPRO_DISABLE_NATIVE=1`` force-disables it), and every
kernel has a pure-NumPy *shadow* of identical name, signature and
semantics (:mod:`repro.native.shadow`) that :func:`get_kernel` falls back
to — so code written against this package runs anywhere, and the full
conformance suite exercises the tier without numba installed.

Quick use::

    from repro.native import native_available
    from repro.backends import get_backend, list_backends

    if "native" in list_backends():        # registered only when available
        result = get_backend("native").embed(graph, labels, n_classes)

See ``docs/native.md`` for the shadow-kernel equivalence contract and the
bandwidth methodology of ``benchmarks/bench_native.py``.
"""

from .api import (
    gee_native_chunked,
    gee_native_with_plan,
    patch_sums_native,
    set_native_threads,
)
from .availability import (
    DISABLE_ENV_VAR,
    native_available,
    native_status,
    numba_version,
)
from .backend import (
    NATIVE_CAPABILITIES,
    NativeGEEBackend,
    register_native_backend,
)
from .dispatch import NATIVE_KERNEL_NAMES, get_kernel, kernel_pair, using_native

__all__ = [
    "DISABLE_ENV_VAR",
    "NATIVE_CAPABILITIES",
    "NATIVE_KERNEL_NAMES",
    "NativeGEEBackend",
    "gee_native_chunked",
    "gee_native_with_plan",
    "get_kernel",
    "kernel_pair",
    "native_available",
    "native_status",
    "numba_version",
    "patch_sums_native",
    "register_native_backend",
    "set_native_threads",
    "using_native",
]
