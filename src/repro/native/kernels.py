"""The numba-JIT kernels of the native tier.

Importable **only** when :func:`repro.native.availability.native_available`
is true — everything else goes through :func:`repro.native.dispatch.get_kernel`,
which falls back to the pure-NumPy shadows in :mod:`repro.native.shadow`.
Every kernel here has a same-named shadow with the identical signature;
the ``native-parity`` analysis rule enforces the pairing statically, so
the contract holds even in environments that cannot import this module.

Design notes shared by all kernels:

* **No O(E) temporaries.**  Each kernel is a single loop nest over the
  incidence/edge arrays the plan already holds; the only writes are into
  the caller's output buffer.  This is the whole point of the tier — the
  vectorized kernels pay O(2E) gather/compaction temporaries per call.
* **Deterministic parallelism.**  The one parallel kernel
  (:func:`segment_sum_blocks`) uses ``prange`` over *row blocks*: block
  ``b`` writes only the disjoint output window
  ``flat_cuts[b]:flat_cuts[b+1]`` and processes its incidences in fixed
  array order, so results are bit-identical across runs and thread counts.
* **No ``None`` arguments.**  Optional weights are passed as a dummy
  array plus a ``has_weights`` flag (numba specialises the branch away).
* **``nogil`` everywhere** so shard/pool threads overlap for real, and
  ``cache=True`` so the JIT cost is paid once per machine
  (``NUMBA_CACHE_DIR`` relocates the cache; CI persists it).

Labels use the repo-wide convention: ``-1`` (``UNKNOWN_LABEL``) marks an
unlabelled vertex and its contributions are skipped.
"""

from __future__ import annotations

from ..analysis.annotations import hot_path
from .availability import native_available, native_status

if not native_available():  # pragma: no cover - guarded by dispatch
    raise ImportError(
        f"repro.native.kernels requires the JIT tier: {native_status()}"
    )

from numba import njit, prange  # noqa: E402


@hot_path(reason="fused segment-sum edge pass of the native tier")
@njit(parallel=True, nogil=True, cache=True)
def segment_sum_blocks(
    out_flat,
    owner_flat,
    partner,
    weights,
    has_weights,
    labels,
    flat_cuts,
    edge_cuts,
    zero_first,
):
    """Block-parallel fused segment sum over ``2E`` permuted incidences.

    One ``prange`` iteration per row block: zero the block's output window
    (when ``zero_first``), then accumulate every incidence of the block —
    ``out[owner_flat[i] + labels[partner[i]]] += w_i`` for known labels.
    Windows are disjoint by construction of the
    :class:`~repro.core.plan.FusedLayout` cuts, so there are no races and
    no atomics, and the in-block order is fixed, so the result is
    deterministic for any thread count.
    """
    n_blocks = flat_cuts.shape[0] - 1
    for b in prange(n_blocks):
        base = flat_cuts[b]
        top = flat_cuts[b + 1]
        if zero_first:
            for j in range(base, top):
                out_flat[j] = 0.0
        for i in range(edge_cuts[b], edge_cuts[b + 1]):
            c = labels[partner[i]]
            if c < 0:
                continue
            if has_weights:
                out_flat[owner_flat[i] + c] += weights[i]
            else:
                out_flat[owner_flat[i] + c] += 1.0


@hot_path(reason="streaming/per-shard one-sided segment accumulate")
@njit(nogil=True, cache=True)
def segment_accumulate(out_flat, owner_flat, partner, weights, has_weights, labels):
    """One-sided raw-sum accumulate over pre-flattened owner components.

    ``out[owner_flat[i] + labels[partner[i]]] += w_i`` for known labels;
    always ``+=`` (a row may straddle chunk boundaries in the streaming
    path, and shard partials compose by addition).
    """
    for i in range(owner_flat.shape[0]):
        c = labels[partner[i]]
        if c < 0:
            continue
        if has_weights:
            out_flat[owner_flat[i] + c] += weights[i]
        else:
            out_flat[owner_flat[i] + c] += 1.0


@hot_path(reason="native chunked arrival-order edge pass")
@njit(nogil=True, cache=True)
def accumulate_edges_scaled(Z_flat, src, dst, weights, labels, scales, n_classes):
    """Two-sided scaled edge pass over one arrival-order edge batch.

    ``Z[u, Y[v]] += scale[v]·w`` and ``Z[v, Y[u]] += scale[u]·w`` per
    edge, unknown labels skipped — the per-chunk kernel of the native
    out-of-core path on layout-preserving sources.
    """
    for i in range(src.shape[0]):
        u = src[i]
        v = dst[i]
        w = weights[i]
        cv = labels[v]
        if cv >= 0:
            Z_flat[u * n_classes + cv] += scales[v] * w
        cu = labels[u]
        if cu >= 0:
            Z_flat[v * n_classes + cu] += scales[u] * w


@hot_path(reason="native O(Δ) incremental patch kernel")
@njit(nogil=True, cache=True)
def patch_sums(S_flat, src, dst, delta_w, labels, n_classes):
    """O(Δ) incremental patch of flat raw per-class sums, in place.

    ``S[u, Y[v]] += Δw`` and ``S[v, Y[u]] += Δw`` per signed edge — the
    unit-scale two-sided delta kernel behind the native backend's
    ``supports_incremental`` capability.
    """
    for i in range(src.shape[0]):
        u = src[i]
        v = dst[i]
        w = delta_w[i]
        cv = labels[v]
        if cv >= 0:
            S_flat[u * n_classes + cv] += w
        cu = labels[u]
        if cu >= 0:
            S_flat[v * n_classes + cu] += w


@hot_path(reason="native flat scatter primitive (shard-routed patches)")
@njit(nogil=True, cache=True)
def flat_scatter_add(out_flat, flat, weights):
    """``out_flat[flat[i]] += weights[i]`` with duplicates summed in order."""
    for i in range(flat.shape[0]):
        out_flat[flat[i]] += weights[i]
