"""Pure-NumPy shadow implementations of every native kernel.

The shadow-kernel equivalence contract (see ``docs/native.md``): for every
JIT kernel in :mod:`repro.native.kernels` this module defines a function of
the **same name and signature** computing the same sums with NumPy
primitives.  The shadows serve three purposes:

* they make the whole native tier testable in environments without numba
  (the full conformance matrix runs against the shadows);
* they are the documented semantics of each JIT kernel — the numba source
  is a loop-nest transliteration of the shadow, and the ``native-parity``
  analysis rule asserts the name-for-name pairing never drifts;
* :func:`repro.native.dispatch.get_kernel` falls back to them when the JIT
  tier is unavailable, so code written against the dispatcher runs
  anywhere.

Shadows and JIT kernels agree to floating-point summation order: the JIT
loops accumulate per incidence in array order, the shadows through
``np.bincount`` over the same order — both sum each output slot's
contributions in increasing incidence position, so results match the
vectorized reference within the repo-wide 1e-10 gate (and are typically
bit-identical).

These functions reuse the vectorized hot-path kernels rather than
re-deriving them; the per-call temporaries here are the same O(2E)
gather/compaction arrays those kernels already allocate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.gee_vectorized import (
    _block_scatter,
    accumulate_edges_vectorized,
    patch_sums_vectorized,
    scatter_add,
)
from ..core.validation import UNKNOWN_LABEL

__all__ = [
    "segment_sum_blocks",
    "segment_accumulate",
    "accumulate_edges_scaled",
    "patch_sums",
    "flat_scatter_add",
]


def segment_sum_blocks(
    out_flat: np.ndarray,
    owner_flat: np.ndarray,
    partner: np.ndarray,
    weights: np.ndarray,
    has_weights: bool,
    labels: np.ndarray,
    flat_cuts: np.ndarray,
    edge_cuts: np.ndarray,
    zero_first: bool,
) -> None:
    """Block-partitioned fused segment sum over ``2E`` incidences.

    The shadow of the tentpole ``prange`` kernel: for every incidence ``i``
    in block ``b`` (``edge_cuts[b] <= i < edge_cuts[b+1]``) with a known
    partner label, ``out_flat[owner_flat[i] + labels[partner[i]]] += w_i``;
    block ``b`` writes only the window ``flat_cuts[b]:flat_cuts[b+1]``.
    ``zero_first`` folds the output zeroing into the pass (block-assign
    instead of accumulate).  Serves both fused layouts — the layout
    compiler expresses "sorted" and "blocked" as the same block-partitioned
    incidence arrays, only the within-block order differs.

    ``weights`` is always an array (numba kernels take no ``None``); it is
    consulted only when ``has_weights`` is true.
    """
    yp = labels[partner]
    known = yp != UNKNOWN_LABEL
    w: Optional[np.ndarray]
    if bool(np.all(known)):
        flat = owner_flat + yp
        w = weights if has_weights else None
    else:
        # Zero-weight unknown partners instead of compacting: compaction
        # would shift incidences across the block boundaries the JIT
        # kernel's disjoint output windows depend on.
        w = known.astype(np.float64) if not has_weights else weights * known
        flat = owner_flat + np.maximum(yp, 0)
    _block_scatter(out_flat, flat, w, flat_cuts, edge_cuts, accumulate=not zero_first)


def segment_accumulate(
    out_flat: np.ndarray,
    owner_flat: np.ndarray,
    partner: np.ndarray,
    weights: np.ndarray,
    has_weights: bool,
    labels: np.ndarray,
) -> None:
    """One-sided raw-sum accumulate: ``out[owner_flat[i] + Y[partner[i]]] += w``.

    The streaming / per-shard sibling of :func:`segment_sum_blocks`:
    always accumulates (``+=``), carries no block structure, and takes
    pre-multiplied ``owner*K`` flat components — the shape the sorted
    chunked incidence sources and the shard plans already hold.
    """
    yp = labels[partner]
    known = yp != UNKNOWN_LABEL
    if not np.any(known):
        return
    flat = owner_flat[known] + yp[known]
    scatter_add(out_flat, flat, weights[known] if has_weights else None)


def accumulate_edges_scaled(
    Z_flat: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    scales: np.ndarray,
    n_classes: int,
) -> None:
    """Two-sided scaled edge pass over one arrival-order edge batch.

    ``Z[u, Y[v]] += scale[v]·w`` and ``Z[v, Y[u]] += scale[u]·w`` per edge
    — the chunk kernel of the native arrival-order streaming path, shadowed
    by the shared vectorized edge kernel so both tiers accumulate identical
    per-chunk contributions.
    """
    accumulate_edges_vectorized(Z_flat, src, dst, weights, labels, scales, n_classes)


def patch_sums(
    S_flat: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    delta_w: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
) -> None:
    """O(Δ) incremental patch: the unit-scale two-sided delta kernel.

    ``S[u, Y[v]] += Δw`` and ``S[v, Y[u]] += Δw`` per signed edge — what
    :class:`~repro.stream.IncrementalEmbedding` runs through the ``native``
    backend's incremental protocol.
    """
    patch_sums_vectorized(S_flat, src, dst, delta_w, labels, n_classes)


def flat_scatter_add(
    out_flat: np.ndarray, flat: np.ndarray, weights: np.ndarray
) -> None:
    """``out_flat[flat[i]] += weights[i]`` with duplicates summed.

    The primitive behind the shard-routed patch path (flat indices are
    precomputed there); shadowed by the fill-ratio-adaptive
    :func:`~repro.core.gee_vectorized.scatter_add`.
    """
    scatter_add(out_flat, flat, weights)
