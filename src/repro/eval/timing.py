"""Timing utilities for the experiment harness.

Follows the optimisation-guide workflow: measure before comparing, repeat
measurements and keep the minimum (least-noise estimate of the true cost),
and keep the harness code out of the timed region.

Measurements ride the :mod:`repro.obs` span substrate: each timed region
is a :class:`repro.obs.Span` (same ``perf_counter`` clock), so when tracing
is enabled harness timings land in the exported timeline as
``timer/<label>`` spans for free.  With tracing off a span measures but
records nothing, so the public API and its overhead are unchanged.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List

from ..obs import Span

__all__ = ["Timer", "time_callable", "TimingRecord"]


@dataclass
class TimingRecord:
    """Repeated-measurement record for one timed target."""

    label: str
    samples: List[float] = field(default_factory=list)

    @property
    def best(self) -> float:
        """Minimum observed time (the conventional benchmark statistic)."""
        return min(self.samples) if self.samples else float("nan")

    @property
    def mean(self) -> float:
        """Mean observed time."""
        return sum(self.samples) / len(self.samples) if self.samples else float("nan")

    @property
    def n_samples(self) -> int:
        return len(self.samples)


class Timer:
    """Accumulates named wall-clock measurements.

    >>> timer = Timer()
    >>> with timer.measure("edge_pass"):
    ...     pass
    >>> timer.records["edge_pass"].n_samples
    1
    """

    def __init__(self) -> None:
        self.records: Dict[str, TimingRecord] = {}

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager timing one region under ``label``."""
        record = self.records.setdefault(label, TimingRecord(label))
        span = Span(f"timer/{label}").begin()
        try:
            yield
        finally:
            span.finish()
            record.samples.append(span.duration)

    def best(self, label: str) -> float:
        """Best (minimum) time recorded for ``label``."""
        return self.records[label].best


def time_callable(
    fn: Callable[[], object],
    *,
    repeats: int = 3,
    warmup: int = 0,
    disable_gc: bool = True,
) -> TimingRecord:
    """Time ``fn()`` ``repeats`` times and return the record.

    ``warmup`` un-timed calls absorb one-off costs (imports, allocator
    growth, forked-worker start-up) so they do not pollute the comparison.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    label = getattr(fn, "__name__", "callable")
    record = TimingRecord(label=label)
    for _ in range(warmup):
        fn()
    was_enabled = gc.isenabled()
    if disable_gc:
        gc.disable()
    try:
        for _ in range(repeats):
            span = Span(f"timer/{label}").begin()
            fn()
            span.finish()
            record.samples.append(span.duration)
    finally:
        if disable_gc and was_enabled:
            gc.enable()
    return record
