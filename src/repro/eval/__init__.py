"""Evaluation harness: metrics, timing, machine model, experiment drivers."""

from .machine_model import PAPER_MACHINE, MachineModel, fit_p_half
from .metrics import (
    accuracy,
    adjusted_rand_index,
    best_match_accuracy,
    confusion_matrix,
    normalized_mutual_information,
    within_between_separation,
)
from .reporting import ascii_line_plot, format_csv, format_markdown_table
from .timing import Timer, TimingRecord, time_callable

__all__ = [
    "accuracy",
    "confusion_matrix",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "best_match_accuracy",
    "within_between_separation",
    "Timer",
    "TimingRecord",
    "time_callable",
    "MachineModel",
    "PAPER_MACHINE",
    "fit_p_half",
    "format_markdown_table",
    "format_csv",
    "ascii_line_plot",
]
