"""Evaluation metrics for embeddings and clusterings.

Implemented from scratch (no scikit-learn offline): classification
accuracy, adjusted Rand index, normalised mutual information, and simple
embedding-separation diagnostics used by the quality tests (E8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import comb

__all__ = [
    "accuracy",
    "confusion_matrix",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "best_match_accuracy",
    "within_between_separation",
]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must have the same shape")
    if y_true.size == 0:
        return 1.0
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Contingency table of true (rows) versus predicted (columns) labels."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must have the same shape")
    if y_true.size == 0:
        return np.zeros((0, 0), dtype=np.int64)
    t_classes, t_inv = np.unique(y_true, return_inverse=True)
    p_classes, p_inv = np.unique(y_pred, return_inverse=True)
    # One fused bincount over the flattened table — same flat-index scatter
    # idiom as the embedding kernels, and much faster than np.add.at.
    table = np.bincount(
        t_inv * p_classes.size + p_inv,
        minlength=t_classes.size * p_classes.size,
    )
    return table.reshape(t_classes.size, p_classes.size).astype(np.int64, copy=False)


def adjusted_rand_index(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Adjusted Rand index between two partitions (1 = identical, ~0 = random)."""
    table = confusion_matrix(y_true, y_pred)
    n = table.sum()
    if n <= 1:
        return 1.0
    sum_comb_c = comb(table.sum(axis=1), 2).sum()
    sum_comb_k = comb(table.sum(axis=0), 2).sum()
    sum_comb = comb(table, 2).sum()
    total = comb(n, 2)
    expected = sum_comb_c * sum_comb_k / total
    max_index = 0.5 * (sum_comb_c + sum_comb_k)
    denom = max_index - expected
    if denom == 0:
        return 1.0
    return float((sum_comb - expected) / denom)


def _entropy(counts: np.ndarray) -> float:
    p = counts[counts > 0].astype(np.float64)
    p /= p.sum()
    return float(-np.sum(p * np.log(p)))


def normalized_mutual_information(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """NMI with arithmetic-mean normalisation (1 = identical partitions)."""
    table = confusion_matrix(y_true, y_pred).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 1.0
    h_true = _entropy(table.sum(axis=1))
    h_pred = _entropy(table.sum(axis=0))
    if h_true == 0 and h_pred == 0:
        return 1.0
    joint = table / n
    outer = np.outer(table.sum(axis=1) / n, table.sum(axis=0) / n)
    nz = joint > 0
    mi = float(np.sum(joint[nz] * np.log(joint[nz] / outer[nz])))
    denom = 0.5 * (h_true + h_pred)
    if denom == 0:
        return 1.0
    return float(mi / denom)


def best_match_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Accuracy after optimally matching predicted clusters to true classes.

    Uses the Hungarian algorithm on the contingency table, so cluster ids
    that are permutations of the true ids score 1.0.
    """
    from scipy.optimize import linear_sum_assignment

    table = confusion_matrix(y_true, y_pred)
    if table.size == 0:
        return 1.0
    rows, cols = linear_sum_assignment(-table)
    matched = table[rows, cols].sum()
    return float(matched / table.sum())


def within_between_separation(
    embedding: np.ndarray, labels: np.ndarray, *, sample: Optional[int] = None, seed: int = 0
) -> float:
    """Ratio of mean between-class distance to mean within-class distance.

    Values well above 1 indicate the embedding separates the classes.  For
    large graphs a random vertex sample bounds the quadratic pair cost.
    """
    Z = np.asarray(embedding, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64)
    if Z.shape[0] != y.shape[0]:
        raise ValueError("embedding and labels must agree on the number of vertices")
    idx = np.arange(Z.shape[0])
    if sample is not None and sample < idx.size:
        rng = np.random.default_rng(seed)
        idx = rng.choice(idx, size=sample, replace=False)
    Zs, ys = Z[idx], y[idx]
    dists = np.sqrt(
        np.maximum(
            np.sum(Zs**2, axis=1)[:, None] - 2 * Zs @ Zs.T + np.sum(Zs**2, axis=1)[None, :],
            0.0,
        )
    )
    same = ys[:, None] == ys[None, :]
    off_diag = ~np.eye(len(idx), dtype=bool)
    within = dists[same & off_diag]
    between = dists[~same]
    if within.size == 0 or between.size == 0:
        return float("nan")
    mean_within = float(within.mean())
    if mean_within == 0:
        return float("inf")
    return float(between.mean() / mean_within)
