"""Experiment drivers that regenerate the paper's tables and figures.

Each public function corresponds to one artefact of the paper's evaluation
(DESIGN.md §4) and returns plain dictionaries / lists that the benchmark
harness, the examples and EXPERIMENTS.md all consume:

* :func:`table1`   — Table I: runtimes of the four implementations on the
  six graph stand-ins, plus the three speedup columns.
* :func:`figure2`  — Figure 2: Friendster runtimes normalised to the
  compiled-serial baseline.
* :func:`figure3`  — Figure 3: strong scaling of the parallel implementation
  (measured on the local machine, extrapolated to the paper's 24 cores with
  the calibrated machine model).
* :func:`figure4`  — Figure 4: runtime versus the number of Erdős–Rényi
  edges, log–log, for every implementation.
* :func:`ablation_atomics` — the paper's atomics-on/off observation.
* :func:`ablation_projection_init` — the O(nK) versus O(s) phase split
  discussed in §III.

Everything is scaled down by default (the stand-ins are ~1600× smaller than
the originals); pass a larger ``scale`` to stress bigger inputs.

Run from the command line::

    python -m repro.eval.experiments table1
    python -m repro.eval.experiments figure3 --max-cores 8
    python -m repro.eval.experiments all
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backends import backend_capabilities, get_backend
from ..graph.datasets import DEFAULT_SCALE, generate_labels, load, paper_table1_datasets
from ..graph.facade import Graph
from ..graph.generators import erdos_renyi
from .machine_model import PAPER_MACHINE, MachineModel
from .reporting import ascii_line_plot, format_markdown_table
from .timing import time_callable

__all__ = [
    "IMPLEMENTATIONS",
    "run_implementation",
    "table1",
    "figure2",
    "figure3",
    "figure4",
    "ablation_atomics",
    "ablation_projection_init",
    "main",
]

#: Paper column name -> registered backend name (see repro.backends).  Every
#: implementation consumes the shared Graph facade, whose CSR view is forced
#: outside the timed region — Ligra's input is a loaded graph, and graph
#: loading is not part of the paper's timed region.
#:
#: ``scipy-sparse`` is an extra (non-paper) Table I reference column: the
#: whole edge pass as one ``(A + Aᵀ)·W`` CSR matmul through the ``sparse``
#: backend — a C-speed serial point showing what a generic sparse-linear-
#: algebra stack achieves without the paper's formulation.  It sits beside
#: "numba-serial" conceptually but is not part of ``TABLE1_COLUMNS`` (the
#: paper's own four columns, which the speedup ratios are defined over);
#: pass ``extra_columns=("scipy-sparse",)`` to :func:`table1` to measure it.
IMPLEMENTATIONS: Dict[str, str] = {
    "gee-python": "python",
    "numba-serial": "vectorized",
    "scipy-sparse": "sparse",
    "ligra-serial": "ligra-vectorized",
    "ligra-parallel": "parallel",
}

#: Paper Table I columns, in order.
TABLE1_COLUMNS = ["gee-python", "numba-serial", "ligra-serial", "ligra-parallel"]


def _prepare_graph(edges) -> Graph:
    """Coerce to a Graph and force the CSR views outside any timed region."""
    graph = Graph.coerce(edges)
    graph.csr.in_indptr  # build out- and in-adjacency now
    return graph


def run_implementation(
    name: str,
    graph,
    labels: np.ndarray,
    n_classes: int,
    *,
    repeats: int = 1,
    n_workers: Optional[int] = None,
    warmup: Optional[int] = None,
) -> float:
    """Best-of-``repeats`` runtime (seconds) of one implementation.

    ``graph`` is any graph-like input; its CSR views are forced before
    timing starts.  The parallel implementation gets one untimed warm-up
    call by default so that forking the worker pool and copying the graph
    into shared memory (one-time costs, the analogue of Ligra starting its
    thread pool and loading the graph) are excluded — the same treatment
    every implementation gets for its own one-time costs.
    """
    backend_name = IMPLEMENTATIONS[name]
    workers = n_workers if backend_capabilities(backend_name).supports_n_workers else None
    backend = get_backend(backend_name, n_workers=workers)
    graph = _prepare_graph(graph)
    if warmup is None:
        warmup = 1 if name == "ligra-parallel" else 0
    record = time_callable(
        lambda: backend.embed(graph, labels, n_classes),
        repeats=repeats,
        warmup=warmup,
    )
    return record.best


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
def table1(
    *,
    scale: float = DEFAULT_SCALE,
    n_classes: int = 50,
    labelled_fraction: float = 0.10,
    seed: int = 0,
    repeats: int = 1,
    n_workers: Optional[int] = None,
    include_python: bool = True,
    datasets: Optional[Sequence[str]] = None,
    extra_columns: Sequence[str] = (),
) -> List[Dict[str, object]]:
    """Regenerate Table I on the scaled stand-in graphs.

    Returns one row per graph with the measured runtime of every
    implementation, the three speedup columns the paper reports, and the
    paper's own speedups for reference.  ``extra_columns`` names additional
    :data:`IMPLEMENTATIONS` columns to measure alongside the paper's four
    (e.g. ``("scipy-sparse",)`` for the C-speed sparse-matmul reference).
    """
    rows: List[Dict[str, object]] = []
    pairs = (
        paper_table1_datasets(scale=scale, seed=seed)
        if datasets is None
        else [load(name, scale=scale, seed=seed) for name in datasets]
    )
    for edges, spec in pairs:
        y = generate_labels(
            edges.n_vertices, n_classes, labelled_fraction=labelled_fraction, seed=seed
        )
        graph = _prepare_graph(edges)
        row: Dict[str, object] = {
            "graph": spec.name,
            "paper_graph": spec.paper_name,
            "n": edges.n_vertices,
            "s": edges.n_edges,
        }
        columns = TABLE1_COLUMNS if include_python else TABLE1_COLUMNS[1:]
        for name in (*columns, *extra_columns):
            row[name] = run_implementation(
                name, graph, y, n_classes, repeats=repeats, n_workers=n_workers
            )
        if not include_python:
            row["gee-python"] = float("nan")
        parallel = float(row["ligra-parallel"])  # type: ignore[arg-type]
        row["speedup_vs_python"] = (
            float(row["gee-python"]) / parallel if include_python and parallel > 0 else float("nan")
        )
        row["speedup_vs_numba"] = (
            float(row["numba-serial"]) / parallel if parallel > 0 else float("nan")
        )
        row["speedup_vs_ligra_serial"] = (
            float(row["ligra-serial"]) / parallel if parallel > 0 else float("nan")
        )
        row["paper_speedup_vs_python"] = spec.paper_runtime_python / spec.paper_runtime_ligra_parallel
        row["paper_speedup_vs_numba"] = spec.paper_runtime_numba / spec.paper_runtime_ligra_parallel
        row["paper_speedup_vs_ligra_serial"] = (
            spec.paper_runtime_ligra_serial / spec.paper_runtime_ligra_parallel
        )
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Figure 2
# --------------------------------------------------------------------------- #
def figure2(
    *,
    scale: float = DEFAULT_SCALE,
    n_classes: int = 50,
    labelled_fraction: float = 0.10,
    seed: int = 0,
    repeats: int = 1,
    n_workers: Optional[int] = None,
    dataset: str = "friendster-sim",
    include_python: bool = True,
) -> List[Dict[str, object]]:
    """Figure 2: runtimes on the Friendster stand-in, normalised to the
    compiled-serial ("Numba") baseline."""
    edges, spec = load(dataset, scale=scale, seed=seed)
    y = generate_labels(
        edges.n_vertices, n_classes, labelled_fraction=labelled_fraction, seed=seed
    )
    graph = _prepare_graph(edges)
    columns = TABLE1_COLUMNS if include_python else TABLE1_COLUMNS[1:]
    runtimes = {
        name: run_implementation(
            name, graph, y, n_classes, repeats=repeats, n_workers=n_workers
        )
        for name in columns
    }
    base = runtimes["numba-serial"]
    paper_runtimes = {
        "gee-python": spec.paper_runtime_python,
        "numba-serial": spec.paper_runtime_numba,
        "ligra-serial": spec.paper_runtime_ligra_serial,
        "ligra-parallel": spec.paper_runtime_ligra_parallel,
    }
    rows = []
    for name in TABLE1_COLUMNS:
        measured = runtimes.get(name, float("nan"))
        rows.append(
            {
                "implementation": name,
                "runtime_s": measured,
                "normalized_to_numba": measured / base if base > 0 else float("nan"),
                "paper_normalized": paper_runtimes[name] / paper_runtimes["numba-serial"],
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 3
# --------------------------------------------------------------------------- #
def figure3(
    *,
    scale: float = DEFAULT_SCALE,
    n_classes: int = 50,
    labelled_fraction: float = 0.10,
    seed: int = 0,
    repeats: int = 1,
    dataset: str = "friendster-sim",
    max_cores: Optional[int] = None,
    model: MachineModel = PAPER_MACHINE,
) -> Dict[str, object]:
    """Figure 3: strong-scaling speedup of the parallel implementation.

    Measures the process-parallel GEE at 1..max_cores workers on the local
    machine and evaluates the calibrated machine model at 1..24 cores (the
    paper's axis).  The measured series shows real parallel behaviour in
    this environment; the model series reproduces the published curve's
    shape.
    """
    edges, spec = load(dataset, scale=scale, seed=seed)
    y = generate_labels(
        edges.n_vertices, n_classes, labelled_fraction=labelled_fraction, seed=seed
    )
    available = os.cpu_count() or 1
    top = min(available, max_cores) if max_cores else available
    core_counts = sorted({1, 2, 4, *range(6, top + 1, 2), top})
    core_counts = [c for c in core_counts if c <= top]

    graph = _prepare_graph(edges)
    measured: List[Dict[str, float]] = []
    serial_time = None
    for cores in core_counts:
        backend = get_backend("parallel", n_workers=cores)
        record = time_callable(
            lambda b=backend: b.embed(graph, y, n_classes),
            repeats=repeats,
            warmup=1,
        )
        runtime = record.best
        if cores == 1:
            serial_time = runtime
        measured.append({"cores": cores, "runtime_s": runtime})
    assert serial_time is not None
    for entry in measured:
        entry["speedup"] = serial_time / entry["runtime_s"] if entry["runtime_s"] > 0 else float("nan")

    paper_edges = spec.paper_s
    model_series = [
        {"cores": p, "speedup": model.speedup(paper_edges, p)} for p in range(1, model.n_cores + 1)
    ]
    return {
        "dataset": spec.name,
        "n": edges.n_vertices,
        "s": edges.n_edges,
        "measured": measured,
        "model": model_series,
        "paper_speedup_24_cores": 77.23 / 6.42,
    }


# --------------------------------------------------------------------------- #
# Figure 4
# --------------------------------------------------------------------------- #
def figure4(
    *,
    log2_edges: Sequence[int] = tuple(range(13, 21)),
    n_classes: int = 50,
    labelled_fraction: float = 0.10,
    seed: int = 0,
    repeats: int = 1,
    n_workers: Optional[int] = None,
    average_degree: int = 16,
    include_python: bool = True,
    python_edge_cap: int = 1 << 19,
) -> List[Dict[str, object]]:
    """Figure 4: runtime versus the number of edges on Erdős–Rényi graphs.

    The paper sweeps 2^13–2^29 edges; the default range here stops at 2^20
    so the pure-Python baseline stays tractable (it is additionally capped
    at ``python_edge_cap`` edges, larger points report NaN for it).  Pass a
    wider ``log2_edges`` to push the compiled/parallel implementations
    further — their cost stays linear.
    """
    rows: List[Dict[str, object]] = []
    for exponent in log2_edges:
        n_edges = 1 << int(exponent)
        n_vertices = max(16, n_edges // average_degree)
        edges = erdos_renyi(n_vertices, n_edges, seed=seed)
        y = generate_labels(
            edges.n_vertices, n_classes, labelled_fraction=labelled_fraction, seed=seed
        )
        graph = _prepare_graph(edges)
        row: Dict[str, object] = {
            "log2_edges": int(exponent),
            "n_edges": n_edges,
            "n_vertices": edges.n_vertices,
        }
        for name in TABLE1_COLUMNS:
            if name == "gee-python" and (not include_python or n_edges > python_edge_cap):
                row[name] = float("nan")
                continue
            row[name] = run_implementation(
                name, graph, y, n_classes, repeats=repeats, n_workers=n_workers
            )
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------------- #
def ablation_atomics(
    *,
    scale: float = DEFAULT_SCALE,
    n_classes: int = 50,
    labelled_fraction: float = 0.10,
    seed: int = 0,
    repeats: int = 1,
    dataset: str = "orkut-sim",
    n_workers: Optional[int] = None,
) -> Dict[str, object]:
    """Atomics on versus off (paper §IV: "no appreciable difference").

    Runs the thread-scheduled Ligra formulation with lock-striped atomic
    adds and with plain unsafe adds, and reports both runtimes plus the
    maximum absolute deviation of the unsafe embedding from the safe one.
    """
    edges, spec = load(dataset, scale=scale, seed=seed)
    y = generate_labels(
        edges.n_vertices, n_classes, labelled_fraction=labelled_fraction, seed=seed
    )
    graph = _prepare_graph(edges)
    safe = get_backend("ligra-threads", n_workers=n_workers, atomic=True)
    unsafe = get_backend("ligra-threads", n_workers=n_workers, atomic=False)
    res_atomic = safe.embed(graph, y, n_classes)
    res_unsafe = unsafe.embed(graph, y, n_classes)
    t_atomic = time_callable(lambda: safe.embed(graph, y, n_classes), repeats=repeats).best
    t_unsafe = time_callable(lambda: unsafe.embed(graph, y, n_classes), repeats=repeats).best
    deviation = float(np.max(np.abs(res_atomic.embedding - res_unsafe.embedding)))
    return {
        "dataset": spec.name,
        "runtime_atomics_on_s": t_atomic,
        "runtime_atomics_off_s": t_unsafe,
        "relative_difference": (t_atomic - t_unsafe) / t_unsafe if t_unsafe > 0 else float("nan"),
        "max_abs_embedding_deviation": deviation,
    }


def ablation_projection_init(
    *,
    n_classes: int = 50,
    seed: int = 0,
    n_vertices: int = 200_000,
    sparse_degree: int = 2,
    dense_degree: int = 32,
) -> List[Dict[str, object]]:
    """The §III observation: the O(nK) projection initialisation dominates
    only when the graph has many vertices and a very low average degree."""
    rows = []
    for label, degree in (("sparse", sparse_degree), ("dense", dense_degree)):
        edges = erdos_renyi(n_vertices, n_vertices * degree, seed=seed)
        y = generate_labels(edges.n_vertices, n_classes, seed=seed)
        result = get_backend("vectorized").embed(edges, y, n_classes)
        proj = result.timings["projection"]
        edge_pass = result.timings["edge_pass"]
        rows.append(
            {
                "regime": label,
                "n_vertices": edges.n_vertices,
                "n_edges": edges.n_edges,
                "avg_degree": degree,
                "projection_s": proj,
                "edge_pass_s": edge_pass,
                "projection_fraction": proj / (proj + edge_pass) if proj + edge_pass > 0 else float("nan"),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Command-line interface
# --------------------------------------------------------------------------- #
def _print_table1(args) -> None:
    extra = ("scipy-sparse",) if getattr(args, "with_sparse", False) else ()
    rows = table1(
        scale=args.scale,
        repeats=args.repeats,
        include_python=not args.skip_python,
        n_workers=args.workers,
        extra_columns=extra,
    )
    cols = ["graph", "n", "s", *TABLE1_COLUMNS, *extra, "speedup_vs_python", "speedup_vs_numba", "speedup_vs_ligra_serial"]
    print("Table I (measured, scaled stand-ins)\n")
    print(format_markdown_table(rows, cols))


def _print_figure2(args) -> None:
    rows = figure2(scale=args.scale, repeats=args.repeats, include_python=not args.skip_python, n_workers=args.workers)
    print("Figure 2 (Friendster stand-in, normalised to the compiled serial baseline)\n")
    print(format_markdown_table(rows))


def _print_figure3(args) -> None:
    data = figure3(scale=args.scale, repeats=args.repeats, max_cores=args.max_cores)
    print(f"Figure 3 (strong scaling on {data['dataset']}, s={data['s']})\n")
    print(format_markdown_table(data["measured"], ["cores", "runtime_s", "speedup"]))
    series = {
        "measured": [(m["cores"], m["speedup"]) for m in data["measured"]],
        "model(paper machine)": [(m["cores"], m["speedup"]) for m in data["model"]],
    }
    print()
    print(ascii_line_plot(series, xlabel="cores", ylabel="speedup", title="speedup vs cores"))


def _print_figure4(args) -> None:
    rows = figure4(
        log2_edges=range(args.min_log2, args.max_log2 + 1),
        repeats=args.repeats,
        include_python=not args.skip_python,
        n_workers=args.workers,
    )
    print("Figure 4 (runtime vs edges, Erdős–Rényi)\n")
    print(format_markdown_table(rows))
    series = {
        name: [
            (row["n_edges"], row[name])
            for row in rows
            if isinstance(row[name], float) and not np.isnan(row[name])
        ]
        for name in TABLE1_COLUMNS
    }
    print()
    print(
        ascii_line_plot(
            series, logx=True, logy=True, xlabel="edges", ylabel="runtime (s)", title="runtime vs edges"
        )
    )


def _print_ablations(args) -> None:
    print("Ablation: atomics on/off\n")
    print(format_markdown_table([ablation_atomics(scale=args.scale, repeats=args.repeats)]))
    print("\nAblation: projection-init fraction\n")
    print(format_markdown_table(ablation_projection_init()))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.eval.experiments``)."""
    parser = argparse.ArgumentParser(description="Regenerate the paper's tables and figures")
    parser.add_argument(
        "experiment",
        choices=["table1", "figure2", "figure3", "figure4", "ablations", "all"],
        help="which artefact to regenerate",
    )
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE, help="graph shrink factor")
    parser.add_argument("--repeats", type=int, default=1, help="timing repeats (best is reported)")
    parser.add_argument("--workers", type=int, default=None, help="workers for parallel runs")
    parser.add_argument("--max-cores", type=int, default=None, help="cap for the scaling sweep")
    parser.add_argument("--min-log2", type=int, default=13, help="figure4: smallest log2(edges)")
    parser.add_argument("--max-log2", type=int, default=19, help="figure4: largest log2(edges)")
    parser.add_argument("--skip-python", action="store_true", help="skip the pure-Python baseline")
    parser.add_argument(
        "--with-sparse",
        action="store_true",
        help="table1: add the scipy-sparse (A+A^T)W matmul reference column",
    )
    args = parser.parse_args(argv)

    dispatch = {
        "table1": _print_table1,
        "figure2": _print_figure2,
        "figure3": _print_figure3,
        "figure4": _print_figure4,
        "ablations": _print_ablations,
    }
    if args.experiment == "all":
        for name in ["table1", "figure2", "figure3", "figure4", "ablations"]:
            dispatch[name](args)
            print("\n" + "=" * 78 + "\n")
    else:
        dispatch[args.experiment](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
