"""Analytical machine model for the paper's 24-core testbed.

The paper measures strong scaling on a 24-core Xeon 8259CL and observes an
11× speedup at 24 cores, attributing the sub-linear tail to the workload
being memory-bound ("two fused-multiply adds per edge and two memory
writes, one of which is likely to miss", §IV).  This environment has a
different core count and a very different software stack, so Figure 3's
x-axis cannot be swept natively.  The roofline-style model here regenerates
the *shape* of that curve from first principles, and is calibrated so the
headline point (≈11× at 24 cores) matches the paper.

Model
-----
Per-edge work splits into a compute term that scales with cores and a
memory term limited by a bandwidth that saturates as cores are added::

    T(p) = max( C_edge · s / p,  M_edge · s / B(p) ) + T_serial
    B(p) = B_max · p / (p + p_half)        (saturating bandwidth)

``p_half`` is the core count at which half the peak bandwidth is reached —
the single knob controlling how quickly the memory system saturates.  The
defaults reproduce the paper's measured points within a few percent and are
also used to extrapolate measured local runs out to 24 cores in Figure 3's
"model" series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

__all__ = ["MachineModel", "PAPER_MACHINE", "fit_p_half"]


@dataclass(frozen=True)
class MachineModel:
    """Roofline-style cost model of a shared-memory machine running GEE.

    Attributes
    ----------
    n_cores:
        Physical core count of the modelled machine.
    compute_per_edge:
        Seconds of per-core compute per edge (the two fused multiply-adds
        plus loop overhead).
    bytes_per_edge:
        Main-memory traffic per edge in bytes: reading the edge endpoints
        and weight, the label/scale of both endpoints, and one likely-miss
        write to ``Z`` (§IV).
    peak_bandwidth:
        Effective saturated memory bandwidth in bytes/second for this access
        pattern (random writes into ``Z`` miss the cache, so this is far
        below the machine's streaming bandwidth).
    bandwidth_half_cores:
        ``p_half`` of the saturating-bandwidth curve.
    serial_fraction:
        Fraction of the single-core runtime that does not parallelise
        (projection init, frontier setup, reduction).
    """

    n_cores: int = 24
    compute_per_edge: float = 4.2e-8
    bytes_per_edge: float = 40.0
    peak_bandwidth: float = 1.2e10
    bandwidth_half_cores: float = 3.0
    serial_fraction: float = 0.005

    def bandwidth(self, p: float) -> float:
        """Effective memory bandwidth with ``p`` active cores."""
        if p <= 0:
            raise ValueError("core count must be positive")
        return self.peak_bandwidth * p / (p + self.bandwidth_half_cores)

    def runtime(self, n_edges: int, p: int = 1) -> float:
        """Predicted runtime in seconds for an ``n_edges`` edge pass."""
        if n_edges < 0:
            raise ValueError("n_edges must be non-negative")
        if p <= 0:
            raise ValueError("core count must be positive")
        compute = self.compute_per_edge * n_edges / p
        memory = self.bytes_per_edge * n_edges / self.bandwidth(p)
        serial = self.serial_fraction * (
            self.compute_per_edge + self.bytes_per_edge / self.peak_bandwidth
        ) * n_edges
        return max(compute, memory) + serial

    def speedup(self, n_edges: int, p: int) -> float:
        """Predicted strong-scaling speedup at ``p`` cores."""
        return self.runtime(n_edges, 1) / self.runtime(n_edges, p)

    def speedup_curve(self, n_edges: int, cores: Iterable[int]) -> Dict[int, float]:
        """Speedups for a list of core counts (Figure 3's model series)."""
        return {int(p): self.speedup(n_edges, int(p)) for p in cores}

    def scaled(self, measured_serial: float, n_edges: int) -> "MachineModel":
        """Return a copy rescaled so the 1-core prediction matches a
        measured serial runtime (used to overlay the model on local runs)."""
        predicted = self.runtime(n_edges, 1)
        if predicted <= 0 or measured_serial <= 0:
            return self
        factor = measured_serial / predicted
        return MachineModel(
            n_cores=self.n_cores,
            compute_per_edge=self.compute_per_edge * factor,
            bytes_per_edge=self.bytes_per_edge * factor,
            peak_bandwidth=self.peak_bandwidth,
            bandwidth_half_cores=self.bandwidth_half_cores,
            serial_fraction=self.serial_fraction,
        )


#: Model parameterised for the paper's Xeon 8259CL node; its 24-core speedup
#: on a Friendster-sized edge pass is ≈11×, matching Figure 3's endpoint.
PAPER_MACHINE = MachineModel()


def fit_p_half(
    cores: List[int], speedups: List[float], n_edges: int, base: MachineModel = PAPER_MACHINE
) -> MachineModel:
    """Fit the bandwidth-saturation knee to measured (cores, speedup) points.

    A one-dimensional grid search over ``p_half``; coarse but robust, and
    enough to overlay a calibrated model on locally measured scaling data.
    """
    if len(cores) != len(speedups) or not cores:
        raise ValueError("cores and speedups must be equal-length, non-empty lists")
    candidates = np.linspace(0.2, 20.0, 200)
    best_model = base
    best_err = float("inf")
    for p_half in candidates:
        model = MachineModel(
            n_cores=base.n_cores,
            compute_per_edge=base.compute_per_edge,
            bytes_per_edge=base.bytes_per_edge,
            peak_bandwidth=base.peak_bandwidth,
            bandwidth_half_cores=float(p_half),
            serial_fraction=base.serial_fraction,
        )
        err = 0.0
        for p, s in zip(cores, speedups):
            err += (model.speedup(n_edges, p) - s) ** 2
        if err < best_err:
            best_err = err
            best_model = model
    return best_model
