"""Report formatting: markdown tables, CSV and ASCII plots.

The experiment drivers return plain data structures; this module turns them
into the artefacts recorded in EXPERIMENTS.md — a markdown table per paper
table, and an ASCII log–log plot per paper figure (matplotlib is not
available offline, so figures are rendered as text).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_markdown_table", "format_csv", "ascii_line_plot", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Human-friendly number formatting for report cells."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 1e-3:
        return f"{value:.{digits}g}"
    return f"{value:.{digits}g}"


def format_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    float_digits: int = 4,
) -> str:
    """Render a list of dict rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c, "")
            if isinstance(v, float):
                cells.append(format_float(v, float_digits))
            else:
                cells.append(str(v))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_csv(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render rows as CSV text (no quoting of embedded commas by design —
    the experiment outputs never contain commas)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(str(row.get(c, "")) for c in columns))
    return "\n".join(lines)


def ascii_line_plot(
    series: Dict[str, List[tuple]],
    *,
    width: int = 70,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Plot one or more (x, y) series as ASCII art.

    ``series`` maps a label to a list of ``(x, y)`` points.  Each series is
    drawn with its own marker character.  Intended for quick inspection of
    the figure-shaped experiments in a terminal / text log.
    """
    markers = "ox+*#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts if y is not None]
    if not points:
        return "(no data)"

    def tx(x: float) -> float:
        return math.log10(x) if logx and x > 0 else float(x)

    def ty(y: float) -> float:
        return math.log10(y) if logy and y > 0 else float(y)

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1
    if ymax == ymin:
        ymax = ymin + 1

    grid = [[" "] * width for _ in range(height)]
    for si, (label, pts) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for x, y in pts:
            if y is None:
                continue
            col = int(round((tx(x) - xmin) / (xmax - xmin) * (width - 1)))
            row = int(round((ty(y) - ymin) / (ymax - ymin) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    axis_note = []
    if xlabel:
        axis_note.append(f"x: {xlabel}" + (" (log10)" if logx else ""))
    if ylabel:
        axis_note.append(f"y: {ylabel}" + (" (log10)" if logy else ""))
    if axis_note:
        lines.append("  ".join(axis_note))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={label}" for i, label in enumerate(series.keys())
    )
    lines.append("legend: " + legend)
    lines.append(
        f"x range [{format_float(min(x for x,_ in points))}, {format_float(max(x for x,_ in points))}]  "
        f"y range [{format_float(min(y for _,y in points))}, {format_float(max(y for _,y in points))}]"
    )
    return "\n".join(lines)
