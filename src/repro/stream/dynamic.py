"""The :class:`DynamicGraph`: a mutation-logged, versioned graph.

Production graphs mutate continuously; the paper's one-pass embedding only
ever sees a frozen edge list.  ``DynamicGraph`` bridges the two worlds with
three ideas:

* **staged mutation batches** — :meth:`add_edges`, :meth:`remove_edges`,
  :meth:`update_weights` and :meth:`add_vertices` stage work; one
  :meth:`commit` applies the whole batch atomically and returns the
  normalised :class:`~repro.stream.mutations.MutationDelta`;
* **copy-on-write versions** — every commit builds *new* edge arrays and a
  *new* :class:`~repro.graph.facade.Graph` facade; the previous version's
  arrays are never touched, so a :meth:`snapshot` taken by a reader stays a
  consistent view no matter how many batches writers commit afterwards;
* **a mutation log** — recent deltas are kept so incremental consumers
  (:class:`~repro.stream.incremental.IncrementalEmbedding`,
  ``GraphEncoderEmbedding.update``) can catch up in O(Δ) from whatever
  version they last saw.

Append-only commits (only ``add_edges``, no vertex growth) take a fast
path: each cached :class:`~repro.core.plan.EmbedPlan` of the previous
version is *extended* into the new version's cache — a copy-on-write plan
whose already-validated edge arrays and compiled ``u*K``/``v*K`` flat-index
components are the old ones plus the appended Δ — instead of being thrown
away and recompiled (the old version's plans stay untouched for its
snapshot readers).  A full refresh after a string of appends therefore pays
no validation or index-building cost, which is what makes the
churn-triggered exact re-embeds of the incremental engine cheap.

Removal semantics on multigraphs are exact-multiplicity: requesting
``(u, v)`` once removes *one* instance even when the pair is duplicated
(see :func:`~repro.stream.mutations.match_edge_instances`); requesting more
instances than exist raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..graph.edgelist import EdgeList
from ..graph.facade import Graph, GraphLike
from ..graph.io import ChunkedEdgeSource
from ..obs import metrics as obs_metrics
from .mutations import (
    MutationDelta,
    MutationLog,
    as_endpoint_arrays,
    match_edge_instances,
    normalise_weight_array,
)

__all__ = ["DynamicGraph", "Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """A versioned, immutable view of a :class:`DynamicGraph`.

    Copy-on-write makes this O(1): the snapshot holds the version's
    :class:`~repro.graph.facade.Graph` (whose arrays no later commit ever
    mutates), so readers embed, plan and iterate against it while writers
    keep committing batches.
    """

    version: int
    graph: Graph

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    @property
    def edges(self) -> EdgeList:
        return self.graph.edges


class DynamicGraph:
    """A graph under continuous mutation, with versioned snapshots.

    Parameters
    ----------
    graph:
        Any graph-like input (see :meth:`repro.graph.facade.Graph.coerce`);
        adopted as version 0.  A :class:`~repro.graph.facade.Graph` is
        adopted directly, keeping its cached views and compiled plans.
        The underlying arrays are treated as immutable from this point on
        (copy-on-write needs that; pass a copy if you intend to keep
        mutating them in place).
    max_log:
        Bound on retained :class:`~repro.stream.mutations.MutationDelta`
        history (``None`` keeps everything).  Readers older than the kept
        history fall back to a full refresh.
    store:
        Optional :class:`~repro.stream.segments.SegmentedEdgeStore` (or a
        path to create one at) mirroring the edge set on disk.  Append-only
        commits append one immutable segment; structural commits rewrite.
        :meth:`chunked_source` then streams from disk, so refreshes can run
        out-of-core.
    """

    def __init__(
        self,
        graph: GraphLike,
        *,
        max_log: Optional[int] = None,
        store=None,
    ) -> None:
        self._graph = Graph.coerce(graph)
        self.version = 0
        self.log = MutationLog(max_entries=max_log)
        #: Warm-start state carried across versions by ``gee_unsupervised``
        #: (a ``(version, labels)`` pair; see repro.core.refinement).
        self.refinement_state: Optional[Tuple[int, np.ndarray]] = None
        self._staged_add: List[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]] = []
        self._staged_remove: List[Tuple[np.ndarray, np.ndarray]] = []
        self._staged_update: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._staged_vertices = 0
        if store is not None:
            from .segments import SegmentedEdgeStore

            if not isinstance(store, SegmentedEdgeStore):
                store = SegmentedEdgeStore.create(store, self._graph.edges)
            elif store.n_edges != self._graph.n_edges:
                raise ValueError(
                    "attached store does not match the graph "
                    f"({store.n_edges} stored edges vs {self._graph.n_edges})"
                )
        self.store = store

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The current version's :class:`~repro.graph.facade.Graph` facade."""
        return self._graph

    @property
    def n_vertices(self) -> int:
        return self._graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self._graph.n_edges

    def snapshot(self) -> Snapshot:
        """A consistent, immutable view of the current version (O(1))."""
        return Snapshot(version=self.version, graph=self._graph)

    def plan(self, n_classes: int, **kwargs):
        """The current version's compiled plan (see :meth:`Graph.plan`)."""
        return self._graph.plan(n_classes, **kwargs)

    def chunked_source(
        self,
        *,
        chunk_edges: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> ChunkedEdgeSource:
        """A bounded-memory edge stream over the current version.

        Backed by the attached segmented store when one is present (the
        edges then stream from disk, never materialised); otherwise a
        re-blocked view of the in-memory arrays.
        """
        if self.store is not None:
            return self.store.source(
                chunk_edges=chunk_edges, memory_budget_bytes=memory_budget_bytes
            )
        return ChunkedEdgeSource.from_edgelist(
            self._graph.edges,
            chunk_edges=chunk_edges,
            memory_budget_bytes=memory_budget_bytes,
        )

    # ------------------------------------------------------------------ #
    # Write side: staging
    # ------------------------------------------------------------------ #
    @property
    def n_staged(self) -> int:
        """Number of staged operations awaiting :meth:`commit`."""
        return (
            sum(s.size for s, _, _ in self._staged_add)
            + sum(s.size for s, _ in self._staged_remove)
            + sum(s.size for s, _, _ in self._staged_update)
            + (1 if self._staged_vertices else 0)
        )

    def add_edges(self, src, dst, weights=None) -> "DynamicGraph":
        """Stage new directed edges (duplicates create additional instances).

        Endpoints must lie inside the vertex set the commit will have —
        stage :meth:`add_vertices` first for genuinely new vertices
        (endpoint validation happens at commit time, against
        ``n_vertices + staged growth``).
        """
        s, d = as_endpoint_arrays(src, dst)
        w = normalise_weight_array(weights, s.size)
        if s.size:
            self._staged_add.append((s, d, w))
        return self

    def remove_edges(self, src, dst) -> "DynamicGraph":
        """Stage removal of edge instances, with exact multiplicity.

        Each requested ``(src, dst)`` occurrence removes exactly one stored
        instance (the earliest by edge position not already claimed by this
        batch); a duplicated edge requested once keeps its other copies.
        Requests addressing more instances than the graph holds make
        :meth:`commit` raise
        :class:`~repro.stream.mutations.MissingEdgeError`.
        """
        s, d = as_endpoint_arrays(src, dst)
        if s.size:
            self._staged_remove.append((s, d))
        return self

    def update_weights(self, src, dst, weights) -> "DynamicGraph":
        """Stage new weights for existing edge instances.

        Instance matching follows the same exact-multiplicity rule as
        :meth:`remove_edges`; updates are matched against the edges that
        survive this batch's removals.
        """
        s, d = as_endpoint_arrays(src, dst)
        w = normalise_weight_array(weights, s.size)
        if w is None:
            raise ValueError("update_weights requires a weight array")
        if s.size:
            self._staged_update.append((s, d, w))
        return self

    def add_vertices(self, count: int) -> "DynamicGraph":
        """Stage growth of the vertex set by ``count`` fresh ids."""
        count = int(count)
        if count < 0:
            raise ValueError("count must be non-negative")
        self._staged_vertices += count
        return self

    def discard_staged(self) -> None:
        """Drop every staged operation without committing."""
        self._staged_add.clear()
        self._staged_remove.clear()
        self._staged_update.clear()
        self._staged_vertices = 0

    # ------------------------------------------------------------------ #
    # Commit
    # ------------------------------------------------------------------ #
    def commit(self) -> Optional[MutationDelta]:
        """Apply the staged batch atomically; bump the version.

        Returns the committed :class:`~repro.stream.mutations.MutationDelta`
        (also appended to :attr:`log`), or ``None`` when nothing was staged.
        Readers holding earlier snapshots are unaffected: the new version is
        built from new arrays (copy-on-write).
        """
        if (
            not self._staged_add
            and not self._staged_remove
            and not self._staged_update
            and self._staged_vertices == 0
        ):
            return None
        # Staged call groups collapsing into this one atomic delta.
        obs_metrics.count(
            "dynamic.coalesced_mutations",
            len(self._staged_add)
            + len(self._staged_remove)
            + len(self._staged_update)
            + (1 if self._staged_vertices else 0),
        )
        old_graph = self._graph
        edges = old_graph.edges
        n_before = int(edges.n_vertices)
        n_after = n_before + self._staged_vertices

        # --- removals: match exact instances against the current edges --- #
        if self._staged_remove:
            rem_src = np.concatenate([s for s, _ in self._staged_remove])
            rem_dst = np.concatenate([d for _, d in self._staged_remove])
            removed_pos = match_edge_instances(
                edges.src, edges.dst, rem_src, rem_dst, n_before
            )
        else:
            rem_src = rem_dst = removed_pos = np.empty(0, dtype=np.int64)
        removed_w = edges.effective_weights()[removed_pos]

        keep = np.ones(edges.n_edges, dtype=bool)
        keep[removed_pos] = False

        # --- weight updates: matched against the surviving instances ----- #
        if self._staged_update:
            upd_src = np.concatenate([s for s, _, _ in self._staged_update])
            upd_dst = np.concatenate([d for _, d, _ in self._staged_update])
            upd_new_w = np.concatenate([w for _, _, w in self._staged_update])
            survivors = np.flatnonzero(keep)
            upd_local = match_edge_instances(
                edges.src[survivors], edges.dst[survivors], upd_src, upd_dst, n_before
            )
            upd_pos = survivors[upd_local]
            upd_old_w = edges.effective_weights()[upd_pos]
        else:
            upd_src = upd_dst = upd_pos = np.empty(0, dtype=np.int64)
            upd_new_w = upd_old_w = np.empty(0, dtype=np.float64)

        # --- additions --------------------------------------------------- #
        if self._staged_add:
            add_src = np.concatenate([s for s, _, _ in self._staged_add])
            add_dst = np.concatenate([d for _, d, _ in self._staged_add])
            if any(w is not None for _, _, w in self._staged_add):
                add_w = np.concatenate(
                    [
                        w if w is not None else np.ones(s.size, dtype=np.float64)
                        for s, _, w in self._staged_add
                    ]
                )
                add_weighted = True
            else:
                add_w = np.ones(add_src.size, dtype=np.float64)
                add_weighted = False
            if add_src.size and max(add_src.max(), add_dst.max()) >= n_after:
                raise ValueError(
                    f"added edges reference vertex "
                    f"{int(max(add_src.max(), add_dst.max()))} outside the "
                    f"committed vertex set [0, {n_after}); stage add_vertices "
                    "first to grow the graph"
                )
        else:
            add_src = add_dst = np.empty(0, dtype=np.int64)
            add_w = np.empty(0, dtype=np.float64)
            add_weighted = False

        # --- build the next version's arrays (copy-on-write) ------------- #
        weighted = edges.is_weighted or add_weighted or upd_pos.size > 0
        if removed_pos.size or upd_pos.size:
            old_w = edges.effective_weights()
            if upd_pos.size:
                old_w = old_w.copy()
                old_w[upd_pos] = upd_new_w
            new_src = np.concatenate((edges.src[keep], add_src))
            new_dst = np.concatenate((edges.dst[keep], add_dst))
            new_w = np.concatenate((old_w[keep], add_w)) if weighted else None
        else:
            new_src = np.concatenate((edges.src, add_src))
            new_dst = np.concatenate((edges.dst, add_dst))
            new_w = (
                np.concatenate((edges.effective_weights(), add_w)) if weighted else None
            )

        delta = MutationDelta(
            version=self.version + 1,
            n_vertices_before=n_before,
            n_vertices_after=n_after,
            added_src=add_src,
            added_dst=add_dst,
            added_weights=add_w,
            removed_src=rem_src,
            removed_dst=rem_dst,
            removed_weights=removed_w,
            updated_src=upd_src,
            updated_dst=upd_dst,
            updated_old_weights=upd_old_w,
            updated_new_weights=upd_new_w,
        )

        new_graph = Graph(EdgeList(new_src, new_dst, new_w, n_after))
        new_graph._fingerprint_mode = old_graph._fingerprint_mode
        if delta.append_only and not (add_weighted and not edges.is_weighted):
            self._carry_plans(old_graph, new_graph, add_src, add_dst, add_w)

        if self.store is not None:
            if delta.append_only and self.store.weighted == weighted:
                self.store.append(EdgeList(add_src, add_dst, add_w if weighted else None, n_after))
            else:
                self.store.rewrite(new_graph.edges)

        self._graph = new_graph
        self.version += 1
        self.log.append(delta)
        self.discard_staged()
        return delta

    @staticmethod
    def _carry_plans(
        old_graph: Graph,
        new_graph: Graph,
        add_src: np.ndarray,
        add_dst: np.ndarray,
        add_w: np.ndarray,
    ) -> None:
        """Seed the new version's plan cache from the old one, copy-on-write.

        Only full :class:`~repro.core.plan.EmbedPlan` objects carry (chunked
        plans pin the old version's source and are simply dropped); each is
        *extended* — a new plan whose compiled artifacts are the old ones
        plus the Δ appended edges, re-fingerprinted against the new arrays
        — so the first refresh on the new version pays no validation or
        index-compilation cost.  The old version's plans are left in place
        untouched: snapshot readers of that version keep embedding exactly
        the edge set they saw.
        """
        from ..core.plan import EmbedPlan

        carried = {
            key: plan
            for key, plan in old_graph._plans.items()
            if isinstance(plan, EmbedPlan)
        }
        if not carried:
            return
        fingerprint = new_graph.edge_data_fingerprint()
        for key, plan in carried.items():
            new_graph._plans[key] = plan.extended(
                add_src, add_dst, add_w, graph=new_graph, fingerprint=fingerprint
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        staged = f", staged={self.n_staged}" if self.n_staged else ""
        return (
            f"DynamicGraph(v{self.version}, n={self.n_vertices}, "
            f"s={self.n_edges}{staged})"
        )
