"""Dynamic-graph subsystem: mutation logs, O(Δ) embedding maintenance.

The static pipeline embeds a frozen edge list; this package keeps an
embedding *live* while the graph mutates underneath it:

* :class:`DynamicGraph` — a versioned graph with staged mutation batches
  (``add_edges`` / ``remove_edges`` / ``update_weights`` / ``add_vertices``),
  copy-on-write snapshots for readers and a bounded
  :class:`~repro.stream.mutations.MutationLog`;
* :class:`IncrementalEmbedding` — maintains the GEE embedding under
  committed batches in O(Δ) by scatter-patching persisted raw per-class
  sums through a backend's ``patch_sums`` kernel (the
  ``supports_incremental`` capability), with churn-triggered exact full
  refreshes through the compiled-plan path;
* :class:`SegmentedEdgeStore` — append-only on-disk segments so mutated
  graphs larger than memory keep streaming through the out-of-core engine.

Quick start::

    from repro import DynamicGraph, IncrementalEmbedding

    dyn = DynamicGraph(edges)
    inc = IncrementalEmbedding(dyn, labels, n_classes=K)
    dyn.add_edges([0, 5], [7, 2]).remove_edges([3], [4])
    dyn.commit()
    inc.update()            # O(Δ): patches only the touched rows
    Z = inc.embedding
"""

from .dynamic import DynamicGraph, Snapshot
from .incremental import IncrementalEmbedding, UpdateReport
from .mutations import MissingEdgeError, MutationDelta, MutationLog
from .segments import SegmentedEdgeSource, SegmentedEdgeStore

__all__ = [
    "DynamicGraph",
    "Snapshot",
    "IncrementalEmbedding",
    "UpdateReport",
    "MutationDelta",
    "MutationLog",
    "MissingEdgeError",
    "SegmentedEdgeStore",
    "SegmentedEdgeSource",
]
