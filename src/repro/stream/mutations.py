"""Mutation primitives of the dynamic-graph subsystem.

A :class:`~repro.stream.dynamic.DynamicGraph` turns every committed batch of
staged operations into one immutable :class:`MutationDelta` — the normal
form the rest of the subsystem consumes:

* the *graph layer* applies it to produce the next copy-on-write version;
* the *embedding layer* (:class:`~repro.stream.incremental.IncrementalEmbedding`,
  ``GraphEncoderEmbedding.update``) reads :meth:`MutationDelta.patch_edges`,
  a signed ``(src, dst, Δw)`` triple whose scatter into the raw per-class
  sums is the whole O(Δ) maintenance step;
* the :class:`MutationLog` keeps the recent deltas so late readers can
  catch up from the version they last saw (or learn that history was
  truncated and a full refresh is needed).

Instance matching
-----------------
Removals and weight updates address edge *instances*, not ``(src, dst)``
keys: the edge lists are directed multigraphs (Erdős–Rényi sampling with
replacement, symmetrised unions, ...), so one pair may occur many times.
:func:`match_edge_instances` resolves each requested occurrence to a
*distinct* edge position — requesting ``(u, v)`` once on a graph holding the
edge twice matches exactly one instance (the earliest by edge position), and
requesting it twice matches both.  This is what makes the removal patch
subtract exactly the requested multiplicity instead of every duplicate at
once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "MutationDelta",
    "MutationLog",
    "MissingEdgeError",
    "match_edge_instances",
]


class MissingEdgeError(ValueError):
    """A removal / weight update addressed more instances than the graph holds."""


def _as_vertex_array(values, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(np.asarray(values, dtype=np.int64).ravel())
    if arr.size and arr.min() < 0:
        raise ValueError(f"{name} vertex ids must be non-negative")
    return arr


def match_edge_instances(
    src: np.ndarray,
    dst: np.ndarray,
    req_src: np.ndarray,
    req_dst: np.ndarray,
    n_vertices: int,
) -> np.ndarray:
    """Resolve requested ``(src, dst)`` occurrences to distinct edge positions.

    Returns an array of edge positions, aligned with the request order: the
    ``i``-th requested occurrence maps to position ``out[i]``.  The ``r``-th
    occurrence of a pair in the request matches the ``r``-th instance of that
    pair in the edge arrays (instances ordered by edge position), so each
    requested occurrence consumes exactly one distinct instance — a
    multigraph with a duplicated edge loses one copy per request, never both.

    Raises :class:`MissingEdgeError` when a requested pair does not exist or
    its requested multiplicity exceeds the stored multiplicity.
    """
    if req_src.shape != req_dst.shape:
        raise ValueError("request src and dst must have the same length")
    if req_src.size == 0:
        return np.empty(0, dtype=np.int64)
    if req_src.size and (
        max(req_src.max(), req_dst.max()) >= n_vertices
        or min(req_src.min(), req_dst.min()) < 0
    ):
        raise ValueError(
            f"requested endpoints must lie in [0, {n_vertices}); got ids up to "
            f"{int(max(req_src.max(), req_dst.max()))}"
        )
    n = int(n_vertices)
    ekey = src * n + dst
    rkey = req_src * n + req_dst
    # Restrict to candidate edges (keys that appear in the request) before
    # sorting: one O(E log R) membership scan instead of an O(E log E)
    # argsort of the whole edge array — the difference between a commit
    # costing ~Δ and a commit costing a full re-sort per batch.
    req_keys = np.unique(rkey)
    idx = np.searchsorted(req_keys, ekey)
    idx[idx == req_keys.size] = 0
    candidates = np.flatnonzero(req_keys[idx] == ekey)
    ckey = ekey[candidates]
    order = np.argsort(ckey, kind="stable")  # stable: instances stay position-ordered
    sorted_keys = ckey[order]
    rorder = np.argsort(rkey, kind="stable")
    rsorted = rkey[rorder]
    # Occurrence rank of each request within its run of equal keys.
    run_start = np.searchsorted(rsorted, rsorted, side="left")
    occurrence = np.arange(rsorted.size, dtype=np.int64) - run_start
    lo = np.searchsorted(sorted_keys, rsorted, side="left")
    hi = np.searchsorted(sorted_keys, rsorted, side="right")
    available = hi - lo
    short = occurrence >= available
    if np.any(short):
        bad = int(np.flatnonzero(short)[0])
        pair = (int(rsorted[bad] // n), int(rsorted[bad] % n))
        raise MissingEdgeError(
            f"edge {pair} requested with multiplicity "
            f"{int(np.sum(rsorted == rsorted[bad]))} but the graph holds "
            f"{int(available[bad])} instance(s); removals/updates must not "
            "exceed the stored multiplicity"
        )
    positions = candidates[order[lo + occurrence]]
    out = np.empty(rkey.size, dtype=np.int64)
    out[rorder] = positions
    return out


@dataclass(frozen=True)
class MutationDelta:
    """One committed batch of graph mutations, in normal form.

    ``version`` is the graph version *after* the batch applied.  The removed
    and updated arrays record the exact instances touched (with the weights
    they carried), so the delta is self-contained: consumers never need the
    pre-mutation graph to compute their patch.
    """

    version: int
    n_vertices_before: int
    n_vertices_after: int
    added_src: np.ndarray
    added_dst: np.ndarray
    added_weights: np.ndarray
    removed_src: np.ndarray
    removed_dst: np.ndarray
    removed_weights: np.ndarray
    updated_src: np.ndarray
    updated_dst: np.ndarray
    updated_old_weights: np.ndarray
    updated_new_weights: np.ndarray

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_added(self) -> int:
        return int(self.added_src.size)

    @property
    def n_removed(self) -> int:
        return int(self.removed_src.size)

    @property
    def n_updated(self) -> int:
        return int(self.updated_src.size)

    @property
    def n_new_vertices(self) -> int:
        return self.n_vertices_after - self.n_vertices_before

    @property
    def append_only(self) -> bool:
        """Whether the batch only appended edges over the existing vertex set.

        Append-only batches are the fast path everywhere: cached
        :class:`~repro.core.plan.EmbedPlan` objects are patched in place
        instead of recompiled, and segmented on-disk stores gain one new
        segment instead of a rewrite.
        """
        return (
            self.n_removed == 0 and self.n_updated == 0 and self.n_new_vertices == 0
        )

    @property
    def n_patch_edges(self) -> int:
        """Number of signed edges in :meth:`patch_edges` (the O(Δ) work)."""
        return self.n_added + self.n_removed + self.n_updated

    def patch_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The batch as one signed edge set ``(src, dst, Δw)``.

        Scattering ``Δw`` with the GEE edge-pass kernel updates the raw
        per-class sums exactly: additions contribute ``+w``, removals ``-w``
        (the weight the removed instance actually carried) and weight
        updates ``new − old``.
        """
        src = np.concatenate((self.added_src, self.removed_src, self.updated_src))
        dst = np.concatenate((self.added_dst, self.removed_dst, self.updated_dst))
        dw = np.concatenate(
            (
                self.added_weights,
                -self.removed_weights,
                self.updated_new_weights - self.updated_old_weights,
            )
        )
        return src, dst, dw

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutationDelta(v{self.version}: +{self.n_added} edges, "
            f"-{self.n_removed}, ~{self.n_updated}, "
            f"+{self.n_new_vertices} vertices)"
        )


@dataclass
class MutationLog:
    """Bounded history of committed :class:`MutationDelta` batches.

    The log is how late readers catch up: :meth:`since` returns the
    contiguous run of deltas after a version, or ``None`` when the requested
    history has been truncated (the reader must then fall back to a full
    refresh against the current snapshot).  ``max_entries`` bounds the
    memory the log pins; ``None`` keeps everything.
    """

    max_entries: Optional[int] = None
    _entries: List[MutationDelta] = field(default_factory=list, repr=False)

    def append(self, delta: MutationDelta) -> None:
        if self._entries and delta.version != self._entries[-1].version + 1:
            raise ValueError(
                f"non-consecutive delta version {delta.version} appended after "
                f"{self._entries[-1].version}"
            )
        self._entries.append(delta)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            del self._entries[: len(self._entries) - self.max_entries]

    def since(self, version: int) -> Optional[List[MutationDelta]]:
        """Deltas with ``delta.version > version``, oldest first.

        Returns ``None`` when the log no longer covers that range (entries
        were truncated) — the caller cannot replay and must refresh.
        """
        if not self._entries or version >= self._entries[-1].version:
            return []
        wanted_first = version + 1
        if self._entries[0].version > wanted_first:
            return None
        offset = wanted_first - self._entries[0].version
        return list(self._entries[offset:])

    @property
    def latest_version(self) -> Optional[int]:
        return self._entries[-1].version if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


def normalise_weight_array(
    weights, n_edges: int, name: str = "weights"
) -> Optional[np.ndarray]:
    """Coerce an optional weight argument to a float64 array of ``n_edges``."""
    if weights is None:
        return None
    arr = np.ascontiguousarray(np.asarray(weights, dtype=np.float64).ravel())
    if arr.size != n_edges:
        raise ValueError(f"{name} length {arr.size} does not match edge count {n_edges}")
    return arr


def as_endpoint_arrays(src, dst) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce paired endpoint arguments to equal-length int64 arrays."""
    s = _as_vertex_array(src, "src")
    d = _as_vertex_array(dst, "dst")
    if s.shape != d.shape:
        raise ValueError(
            f"src and dst must have the same length, got {s.size} and {d.size}"
        )
    return s, d
