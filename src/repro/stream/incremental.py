"""O(Δ) maintenance of a live GEE embedding under graph mutations.

The supervised embedding is linear in the *raw* per-class edge sums::

    S[u, c] = Σ_{(u,v) or (v,u) incident, Y[v]=c} w        Z = S · diag(1/n_c)

so a committed mutation batch only moves ``S`` by its signed edge delta:
every added edge scatter-adds ``+w`` into the rows of its endpoints, every
removed instance ``-w`` (the weight it actually carried) and every weight
update ``new − old``.  :class:`IncrementalEmbedding` persists ``S`` across
versions of a :class:`~repro.stream.dynamic.DynamicGraph` and, per
:meth:`update`, replays the mutation log through a backend patch kernel
(see :meth:`repro.backends.GEEBackend.patch_sums`) and renormalises only
the rows the batch touched — O(Δ) work per batch against the O(E) of a
re-fit.

Floating-point drift from long add/subtract chains is bounded by *exact
full refreshes*: a refresh re-embeds the current version through the
backend's compiled-plan path and replaces ``S`` wholesale.  Refreshes
trigger on an update-count schedule (``refresh_every``), on cumulative
churn (``churn_threshold``, the staleness accounting), when the mutation
log no longer covers the versions missed, or on demand — and because
append-only commits patch the cached :class:`~repro.core.plan.EmbedPlan`
in place, a refresh after a string of appends pays no validation or
index-compilation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..analysis.annotations import hot_path
from ..obs import metrics as obs_metrics
from ..obs import record_event, trace
from ..core.validation import (
    UNKNOWN_LABEL,
    class_counts,
    inverse_class_counts,
    validate_labels,
)
from .dynamic import DynamicGraph

__all__ = ["IncrementalEmbedding", "UpdateReport"]


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`IncrementalEmbedding.update` call actually did."""

    version_from: int
    version_to: int
    n_deltas: int
    patched_edges: int
    refreshed: bool
    refresh_reason: Optional[str] = None

    @property
    def incremental(self) -> bool:
        """Whether the update ran the O(Δ) patch path (no full re-embed)."""
        return not self.refreshed and self.n_deltas > 0


class IncrementalEmbedding:
    """A live GEE embedding maintained in O(Δ) per mutation batch.

    Parameters
    ----------
    dynamic:
        The :class:`~repro.stream.dynamic.DynamicGraph` to track.
    labels:
        Label vector over the current vertex set (``-1`` = unknown).  May be
        omitted with ``n_classes`` for a fully-unlabelled start.
    n_classes:
        Embedding dimensionality ``K`` (inferred from ``labels`` if omitted).
    backend:
        A backend name or instance whose capabilities declare
        ``supports_incremental`` (``vectorized``, ``sparse``, ``parallel``).
        Full refreshes and O(Δ) patches both run through it.
    refresh_every:
        Run an exact full re-embed every this many :meth:`update` calls
        (``None`` disables the schedule; churn can still trigger one).
    churn_threshold:
        Trigger a full refresh when the signed edges patched since the last
        refresh exceed this fraction of the current edge count — both a
        float-drift bound and a perf valve (beyond roughly half the edge
        count the patch does more memory traffic than a fresh pass).
    chunk_edges / memory_budget_bytes:
        Run full refreshes through the out-of-core chunked path with this
        blocking, streaming from the dynamic graph's segmented store when
        one is attached (the O(Δ) patches are unaffected — they only touch
        the delta).
    """

    def __init__(
        self,
        dynamic: DynamicGraph,
        labels: Optional[np.ndarray] = None,
        n_classes: Optional[int] = None,
        *,
        backend: Union[str, object] = "vectorized",
        refresh_every: Optional[int] = None,
        churn_threshold: float = 0.5,
        chunk_edges: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        from ..backends import get_backend

        if not isinstance(dynamic, DynamicGraph):
            raise TypeError(
                f"IncrementalEmbedding tracks a DynamicGraph, got {type(dynamic)!r}"
            )
        self._dynamic = dynamic
        self._backend = get_backend(backend)
        caps = type(self._backend).capabilities
        if not caps.supports_incremental:
            from ..backends import backend_capabilities, list_backends

            raise ValueError(
                f"backend {type(self._backend).name!r} does not support "
                "incremental maintenance; incremental-capable backends: "
                f"{[n for n in list_backends() if backend_capabilities(n).supports_incremental]}"
            )
        if refresh_every is not None and refresh_every <= 0:
            raise ValueError("refresh_every must be positive (or None)")
        if not 0 < churn_threshold:
            raise ValueError("churn_threshold must be positive")
        if (chunk_edges is not None or memory_budget_bytes is not None) and not (
            caps.supports_chunked
        ):  # pragma: no cover - every incremental backend is also chunk-capable
            raise ValueError(
                f"backend {type(self._backend).name!r} cannot run chunked refreshes"
            )
        self.refresh_every = refresh_every
        self.churn_threshold = float(churn_threshold)
        self._chunk_edges = chunk_edges
        self._memory_budget_bytes = memory_budget_bytes

        n = dynamic.n_vertices
        if labels is None:
            if n_classes is None:
                raise ValueError("provide labels and/or n_classes")
            self._y = np.full(n, UNKNOWN_LABEL, dtype=np.int64)
            self._k = int(n_classes)
            if self._k <= 0:
                raise ValueError("n_classes must be positive")
        else:
            self._y, self._k = validate_labels(labels, n, n_classes)
            self._y = self._y.copy()

        self.n_updates = 0
        self.n_patch_updates = 0
        self.n_refreshes = 0
        self._updates_since_refresh = 0
        self._churn_since_refresh = 0
        self._S: Optional[np.ndarray] = None
        self._Z: Optional[np.ndarray] = None
        self._counts = np.zeros(self._k, dtype=np.float64)
        self._version = dynamic.version
        self.refresh()

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    @property
    def embedding(self) -> np.ndarray:
        """The maintained ``(n, K)`` embedding ``Z`` (a live buffer).

        The array is updated in place by :meth:`update` / :meth:`refresh`;
        copy it to keep a frozen version.
        """
        assert self._Z is not None
        return self._Z

    @property
    def raw_sums(self) -> np.ndarray:
        """The persisted raw per-class sums ``S`` (``Z = S·diag(1/n_c)``)."""
        assert self._S is not None
        return self._S

    @property
    def labels(self) -> np.ndarray:
        return self._y

    @property
    def n_classes(self) -> int:
        return self._k

    @property
    def version(self) -> int:
        """The :class:`DynamicGraph` version the embedding is current for."""
        return self._version

    @property
    def backend(self):
        return self._backend

    @property
    def stale(self) -> bool:
        """Whether the tracked graph has committed past this embedding."""
        return self._dynamic.version > self._version

    @property
    def churn_since_refresh(self) -> int:
        """Signed edges patched since the last exact full re-embed."""
        return self._churn_since_refresh

    @property
    def staleness(self) -> float:
        """Accumulated churn as a fraction of the current edge count."""
        return self._churn_since_refresh / max(1, self._dynamic.n_edges)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Exact full re-embed of the current version (resets drift/churn).

        Runs through the backend's compiled-plan path — append-only commits
        patched the cached plan in place, so this pays no validation or
        index-building cost — or through a fresh chunked plan streaming the
        attached store when the embedding was configured out-of-core.
        """
        graph = self._dynamic.graph
        k = self._k
        if self._chunk_edges is not None or self._memory_budget_bytes is not None:
            from ..core.plan import ChunkedPlan

            source = self._dynamic.chunked_source(
                chunk_edges=self._chunk_edges,
                memory_budget_bytes=self._memory_budget_bytes,
            )
            plan = ChunkedPlan(source, k)
        else:
            plan = graph.plan(k)
        with trace(
            "incremental.refresh",
            version=self._dynamic.version,
            n_edges=self._dynamic.n_edges,
        ):
            result = self._backend.embed_with_plan(plan, self._y)
        counts = class_counts(self._y, k).astype(np.float64)
        # Z is exactly the fresh-fit embedding; S recovers the raw sums the
        # subsequent patches maintain (Z·n_c inverts the kernel's 1/n_c
        # scale up to one rounding).
        self._Z = np.array(result.embedding, dtype=np.float64, copy=True)
        self._S = self._Z * counts[None, :]
        self._counts = counts
        self._version = self._dynamic.version
        self.n_refreshes += 1
        self._updates_since_refresh = 0
        self._churn_since_refresh = 0

    @hot_path(reason="O(Δ) live-embedding maintenance; the dynamic-graph fast path")
    def update(
        self,
        labels: Optional[np.ndarray] = None,
        *,
        force_refresh: bool = False,
    ) -> UpdateReport:
        """Catch up with every batch committed since the last update.

        Replays the mutation log from :attr:`version` to the tracked
        graph's current version: one backend patch over the concatenated
        signed deltas, then renormalisation of only the touched rows
        (plus any class column whose member count changed).  Falls back to
        an exact full refresh when the refresh schedule or the churn
        threshold says so, when the log no longer covers the missed
        versions, or on ``force_refresh=True``.

        Parameters
        ----------
        labels:
            Full label vector for the *current* vertex set, required when
            vertices were added and should arrive labelled.  Labels of
            already-embedded vertices must not change (their edges were
            accumulated under the old labels); new vertices default to
            unknown.
        """
        version_from = self._version
        deltas = self._dynamic.log.since(version_from)
        # The log must account for every version committed since the last
        # update; fewer deltas than the version gap (including an empty or
        # fully-trimmed log) means history was truncated and the state can
        # only catch up through a full refresh.
        if deltas is None or len(deltas) < self._dynamic.version - version_from:
            deltas, truncated = [], True
        else:
            truncated = False
        if not deltas and labels is None and not force_refresh and not truncated:
            return UpdateReport(version_from, version_from, 0, 0, False)

        n_after = self._dynamic.n_vertices
        y_new = self._merge_labels(labels, n_after)
        patched = sum(d.n_patch_edges for d in deltas)

        reason = None
        if truncated:
            reason = "log-truncated"
        elif force_refresh:
            reason = "forced"
        elif (
            self.refresh_every is not None
            and self._updates_since_refresh + 1 >= self.refresh_every
        ):
            reason = "refresh-every"
        elif (
            self._churn_since_refresh + patched
            > self.churn_threshold * max(1, self._dynamic.n_edges)
        ):
            reason = "churn-threshold"

        old_counts = self._counts
        self._y = y_new

        if reason is not None:
            obs_metrics.count("incremental.refresh_triggers")
            obs_metrics.count(f"incremental.refresh_triggers.{reason}")
            record_event("incremental.refresh_decision", reason=reason)
            self.refresh()
            self.n_updates += 1
            return UpdateReport(
                version_from, self._version, len(deltas), patched, True, reason
            )

        self._grow_state(n_after)
        assert self._S is not None and self._Z is not None
        k = self._k
        counts = class_counts(y_new, k).astype(np.float64)
        if patched:
            parts = [d.patch_edges() for d in deltas]
            src = np.concatenate([p[0] for p in parts])
            dst = np.concatenate([p[1] for p in parts])
            dw = np.concatenate([p[2] for p in parts])
            with trace("incremental.patch", delta_edges=patched, n_deltas=len(deltas)):
                self._backend.patch_sums(self._S.reshape(-1), src, dst, dw, y_new, k)
            # repro: ignore[hot-path-alloc] O(Δ) touched-row set, not O(E)
            rows = np.unique(np.concatenate((src, dst)))
        else:
            rows = np.empty(0, dtype=np.int64)

        # Renormalise: Z = S·diag(1/n_c), recomputed only where it moved —
        # the rows the patch touched, plus any whole column whose class
        # count changed (newly-labelled vertices rescale their class).
        inv = inverse_class_counts(counts)
        if rows.size:
            self._Z[rows] = self._S[rows] * inv[None, :]
        changed_cols = np.flatnonzero(counts != old_counts)
        for c in changed_cols:
            self._Z[:, c] = self._S[:, c] * inv[c]
        self._counts = counts

        self._version = self._dynamic.version
        self.n_updates += 1
        self.n_patch_updates += 1
        self._updates_since_refresh += 1
        self._churn_since_refresh += patched
        return UpdateReport(
            version_from, self._version, len(deltas), patched, False, None
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _merge_labels(self, labels: Optional[np.ndarray], n_after: int) -> np.ndarray:
        n_old = self._y.shape[0]
        if labels is None:
            if n_after == n_old:
                return self._y
            grown = np.full(n_after, UNKNOWN_LABEL, dtype=np.int64)
            grown[:n_old] = self._y
            return grown
        y_new, k = validate_labels(labels, n_after, self._k)
        if k != self._k:  # pragma: no cover - validate_labels pins k
            raise ValueError("label vector implies a different n_classes")
        if np.any(y_new[:n_old] != self._y):
            offending = np.flatnonzero(y_new[:n_old] != self._y)
            raise ValueError(
                "labels of already-embedded vertices must not change (their "
                "edges were accumulated under the old labels); offending "
                f"vertices: {offending[:10].tolist()}"
            )
        return y_new.copy()

    def _grow_state(self, n_after: int) -> None:
        assert self._S is not None and self._Z is not None
        n_old = self._S.shape[0]
        if n_after == n_old:
            return
        grown_S = np.zeros((n_after, self._k), dtype=np.float64)
        grown_S[:n_old] = self._S
        grown_Z = np.zeros((n_after, self._k), dtype=np.float64)
        grown_Z[:n_old] = self._Z
        self._S = grown_S
        self._Z = grown_Z

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalEmbedding(v{self._version}, n={self._y.shape[0]}, "
            f"K={self._k}, backend={type(self._backend).name!r}, "
            f"updates={self.n_updates}, refreshes={self.n_refreshes})"
        )
