"""Append-only segmented edge store: out-of-core persistence for dynamic graphs.

The chunked store of :mod:`repro.graph.io` is immutable — ideal for a
frozen graph, wrong for one that grows every few seconds.  The segmented
store keeps the immutability *per segment*: a directory of chunked stores
(``seg-00000/``, ``seg-00001/``, ...) whose concatenation is the edge set.
An append-only :meth:`~repro.stream.dynamic.DynamicGraph.commit` then costs
one new segment of Δ edges (the existing segments' bytes are never
rewritten), while structural mutations (removals, weight updates) fall back
to a single-segment rewrite.

:class:`SegmentedEdgeSource` exposes the whole store through the standard
:class:`~repro.graph.io.ChunkedEdgeSource` contract — every chunk-capable
backend, :class:`~repro.core.plan.ChunkedPlan` and ``save_chunked`` consume
it unchanged — with each segment's columns memory-mapped read-only, so a
refresh over a larger-than-RAM mutated graph streams from disk exactly like
the static out-of-core path does.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from ..graph.edgelist import EdgeList
from ..graph.io import ChunkedEdgeSource, PathLike, save_chunked

__all__ = ["SegmentedEdgeStore", "SegmentedEdgeSource"]

_META_FILENAME = "meta.json"
_STORE_FORMAT = "repro-edges-segmented-v1"


class SegmentedEdgeStore:
    """A directory of immutable edge segments with an append-only fast path."""

    def __init__(
        self,
        path: Path,
        n_vertices: int,
        weighted: bool,
        segments: List[str],
    ) -> None:
        self.path = Path(path)
        self.n_vertices = int(n_vertices)
        self.weighted = bool(weighted)
        self._segments = list(segments)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, path: PathLike, edges: EdgeList) -> "SegmentedEdgeStore":
        """Create a store at ``path`` holding ``edges`` as its first segment."""
        path = Path(path)
        if (path / _META_FILENAME).exists():
            raise FileExistsError(f"{path} already holds a segmented edge store")
        path.mkdir(parents=True, exist_ok=True)
        store = cls(path, edges.n_vertices, edges.is_weighted, [])
        store._write_segment(edges)
        store._write_meta()
        return store

    @classmethod
    def open(cls, path: PathLike) -> "SegmentedEdgeStore":
        """Open an existing segmented store."""
        path = Path(path)
        meta_path = path / _META_FILENAME
        if not meta_path.is_file():
            raise FileNotFoundError(
                f"{path} is not a segmented edge store (missing {_META_FILENAME})"
            )
        with meta_path.open("r", encoding="utf-8") as fh:
            meta = json.load(fh)
        if meta.get("format") != _STORE_FORMAT:
            raise ValueError(
                f"{path}: unsupported store format {meta.get('format')!r} "
                f"(expected {_STORE_FORMAT!r})"
            )
        return cls(path, meta["n_vertices"], meta["weighted"], meta["segments"])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def n_edges(self) -> int:
        return sum(np.load(self.path / seg / "src.npy", mmap_mode="r").size
                   for seg in self._segments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentedEdgeStore(path={str(self.path)!r}, n={self.n_vertices}, "
            f"segments={self.n_segments}, "
            f"{'weighted' if self.weighted else 'unweighted'})"
        )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append(self, edges: EdgeList) -> None:
        """Append one immutable segment of new edges (the fast path).

        ``edges.n_vertices`` may exceed the store's current count (vertex
        growth); the weightedness must match — a weighted batch landing on
        an unweighted store needs :meth:`rewrite` (the existing segments
        would otherwise disagree on the weight column).
        """
        if edges.is_weighted != self.weighted:
            raise ValueError(
                "segment weightedness must match the store "
                f"(store {'weighted' if self.weighted else 'unweighted'}, "
                f"segment {'weighted' if edges.is_weighted else 'unweighted'}); "
                "use rewrite() to change the store's weight column"
            )
        self.n_vertices = max(self.n_vertices, int(edges.n_vertices))
        self._write_segment(edges)
        self._write_meta()

    def rewrite(self, edges: EdgeList) -> None:
        """Replace the whole store with one fresh segment (structural commits)."""
        for seg in self._segments:
            shutil.rmtree(self.path / seg, ignore_errors=True)
        self._segments = []
        self.n_vertices = int(edges.n_vertices)
        self.weighted = edges.is_weighted
        self._write_segment(edges)
        self._write_meta()

    def _write_segment(self, edges: EdgeList) -> None:
        name = f"seg-{len(self._segments):05d}"
        save_chunked(edges, self.path / name)
        self._segments.append(name)

    def _write_meta(self) -> None:
        meta = {
            "format": _STORE_FORMAT,
            "n_vertices": int(self.n_vertices),
            "weighted": bool(self.weighted),
            "segments": list(self._segments),
        }
        with (self.path / _META_FILENAME).open("w", encoding="utf-8") as fh:
            json.dump(meta, fh, indent=2)
            fh.write("\n")

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def source(
        self,
        *,
        chunk_edges: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> "SegmentedEdgeSource":
        """Memory-map every segment as one bounded-memory edge stream."""
        parts = []
        for seg in self._segments:
            seg_path = self.path / seg
            src = np.load(seg_path / "src.npy", mmap_mode="r")
            dst = np.load(seg_path / "dst.npy", mmap_mode="r")
            w = (
                np.load(seg_path / "weights.npy", mmap_mode="r")
                if self.weighted
                else None
            )
            parts.append((src, dst, w))
        return SegmentedEdgeSource(
            parts,
            self.n_vertices,
            weighted=self.weighted,
            chunk_edges=chunk_edges,
            memory_budget_bytes=memory_budget_bytes,
            path=self.path,
        )


class SegmentedEdgeSource(ChunkedEdgeSource):
    """A :class:`ChunkedEdgeSource` over the virtual concatenation of segments.

    Chunks are addressed in global edge coordinates; a chunk spanning a
    segment boundary is assembled from the pieces (an O(chunk) copy — the
    same bound every chunk already pays for its unit-weight block).  The
    backing columns stay memory-mapped per segment; nothing is ever
    materialised whole.
    """

    def __init__(
        self,
        parts: List[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]],
        n_vertices: int,
        *,
        weighted: bool,
        chunk_edges: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        path: Optional[Path] = None,
    ) -> None:
        # Deliberately skip ChunkedEdgeSource.__init__: there is no single
        # (src, dst, w) triple — the columns live per segment.
        self._parts = parts
        self._weighted = bool(weighted)
        self._sizes = np.array([p[0].size for p in parts], dtype=np.int64)
        self._offsets = np.concatenate(([0], np.cumsum(self._sizes)))
        self.n_vertices = int(n_vertices)
        if self.n_vertices <= 0:
            raise ValueError("SegmentedEdgeSource requires at least one vertex")
        self.path = path
        self.memory_budget_bytes = (
            None if memory_budget_bytes is None else int(memory_budget_bytes)
        )
        self.chunk_edges = self._resolve_chunk_edges(
            self.memory_budget_bytes, chunk_edges
        )

    # ------------------------------------------------------------------ #
    # Basic protocol overrides
    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        return int(self._offsets[-1])

    @property
    def is_weighted(self) -> bool:
        return self._weighted

    @property
    def src(self) -> np.ndarray:
        raise NotImplementedError(
            "a SegmentedEdgeSource has no single backing column; iterate "
            "chunks or materialise with to_edgelist()"
        )

    dst = src
    weights = src

    def reblocked(
        self,
        *,
        memory_budget_bytes: Optional[int] = None,
        chunk_edges: Optional[int] = None,
    ) -> "SegmentedEdgeSource":
        return SegmentedEdgeSource(
            self._parts,
            self.n_vertices,
            weighted=self._weighted,
            memory_budget_bytes=memory_budget_bytes,
            chunk_edges=chunk_edges,
            path=self.path,
        )

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def _gather(self, lo: int, hi: int, column: int) -> np.ndarray:
        """Assemble the global ``[lo, hi)`` slice of one column."""
        dtype = np.float64 if column == 2 else np.int64
        first = int(np.searchsorted(self._offsets, lo, side="right") - 1)
        pieces = []
        pos = lo
        for i in range(first, len(self._parts)):
            if pos >= hi:
                break
            seg_lo = pos - int(self._offsets[i])
            seg_hi = min(hi, int(self._offsets[i + 1])) - int(self._offsets[i])
            arr = self._parts[i][column]
            if arr is None:  # unweighted segment
                pieces.append(np.ones(seg_hi - seg_lo, dtype=np.float64))
            else:
                pieces.append(np.asarray(arr[seg_lo:seg_hi], dtype=dtype))
            pos = int(self._offsets[i]) + seg_hi
        if not pieces:
            return np.empty(0, dtype=dtype)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def iter_chunks(self, chunk_lo: int = 0, chunk_hi: Optional[int] = None):
        bounds = self.chunk_bounds()[chunk_lo:chunk_hi]
        n = self.n_vertices
        for lo, hi in bounds:
            src = self._gather(lo, hi, 0)
            dst = self._gather(lo, hi, 1)
            if src.size and (
                min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n
            ):
                raise ValueError(
                    f"edge chunk [{lo}:{hi}) holds endpoint ids outside "
                    f"[0, {n}); the store's meta.json n_vertices is wrong "
                    "or the edge data is corrupt"
                )
            if self._weighted:
                w = self._gather(lo, hi, 2)
            else:
                w = np.ones(src.size, dtype=np.float64)
            yield src, dst, w

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def to_edgelist(self) -> EdgeList:
        s = self.n_edges
        return EdgeList(
            self._gather(0, s, 0).copy(),
            self._gather(0, s, 1).copy(),
            self._gather(0, s, 2).copy() if self._weighted else None,
            self.n_vertices,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentedEdgeSource(n={self.n_vertices}, s={self.n_edges}, "
            f"segments={len(self._parts)}, chunk_edges={self.chunk_edges})"
        )
