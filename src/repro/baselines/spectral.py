"""Spectral embedding baselines (ASE / LSE).

The GEE line of work positions the encoder embedding as a fast alternative
to adjacency / Laplacian spectral embedding, to which it converges
asymptotically (paper §I–II).  These baselines compute the spectral
embeddings with sparse eigensolvers so the statistical comparison (E8 in
DESIGN.md) can be run: on stochastic block models both GEE and ASE should
recover the planted communities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..graph.edgelist import EdgeList

__all__ = ["adjacency_spectral_embedding", "laplacian_spectral_embedding"]


def _adjacency_matrix(edges: EdgeList) -> sp.csr_matrix:
    w = edges.effective_weights()
    n = edges.n_vertices
    A = sp.coo_matrix((w, (edges.src, edges.dst)), shape=(n, n))
    return A.tocsr()


def adjacency_spectral_embedding(
    edges: EdgeList,
    n_components: int,
    *,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Adjacency spectral embedding (ASE).

    Returns ``U_d |S_d|^{1/2}`` from the truncated SVD of the (symmetrised)
    adjacency matrix — the standard ASE estimator for random dot product
    graphs.
    """
    if n_components <= 0:
        raise ValueError("n_components must be positive")
    A = _adjacency_matrix(edges)
    A = (A + A.T) * 0.5
    n = A.shape[0]
    k = min(n_components, max(1, n - 2))
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    try:
        vals, vecs = spla.eigsh(A.astype(np.float64), k=k, which="LM", v0=v0)
    except Exception:
        # Dense fallback for tiny or pathological matrices.
        dense = A.toarray().astype(np.float64)
        all_vals, all_vecs = np.linalg.eigh(dense)
        order = np.argsort(np.abs(all_vals))[::-1][:k]
        vals, vecs = all_vals[order], all_vecs[:, order]
    order = np.argsort(np.abs(vals))[::-1]
    vals, vecs = vals[order], vecs[:, order]
    emb = vecs * np.sqrt(np.abs(vals))[None, :]
    if emb.shape[1] < n_components:
        emb = np.pad(emb, ((0, 0), (0, n_components - emb.shape[1])))
    return emb


def laplacian_spectral_embedding(
    edges: EdgeList,
    n_components: int,
    *,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Laplacian spectral embedding (LSE) from ``D^{-1/2} A D^{-1/2}``."""
    if n_components <= 0:
        raise ValueError("n_components must be positive")
    A = _adjacency_matrix(edges)
    A = (A + A.T) * 0.5
    deg = np.asarray(A.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-300)), 0.0)
    D = sp.diags(inv_sqrt)
    L = D @ A @ D
    n = A.shape[0]
    k = min(n_components, max(1, n - 2))
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    try:
        vals, vecs = spla.eigsh(L.tocsr().astype(np.float64), k=k, which="LM", v0=v0)
    except Exception:
        dense = L.toarray().astype(np.float64)
        all_vals, all_vecs = np.linalg.eigh(dense)
        order = np.argsort(np.abs(all_vals))[::-1][:k]
        vals, vecs = all_vals[order], all_vecs[:, order]
    order = np.argsort(np.abs(vals))[::-1]
    vals, vecs = vals[order], vecs[:, order]
    emb = vecs * np.sqrt(np.abs(vals))[None, :]
    if emb.shape[1] < n_components:
        emb = np.pad(emb, ((0, 0), (0, n_components - emb.shape[1])))
    return emb
