"""Reference baselines GEE is compared against (spectral embeddings)."""

from .spectral import adjacency_spectral_embedding, laplacian_spectral_embedding

__all__ = ["adjacency_spectral_embedding", "laplacian_spectral_embedding"]
