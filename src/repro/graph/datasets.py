"""Scaled-down stand-ins for the graphs used in the paper's Table I.

The paper evaluates on six SNAP / network-repository graphs ranging from
6.8 M to 1.8 B edges (Twitch, soc-Pokec, soc-LiveJournal, soc-orkut,
orkut-groups, Friendster).  Downloading or even holding those graphs is not
possible in this environment, so each one is replaced by a synthetic R-MAT
graph whose ``n : s`` ratio (average degree) matches the original and whose
heavy-tailed degree distribution matches the social-network character of the
originals.  A global ``scale`` parameter shrinks every graph by the same
factor so the *relative* sizes in Table I are preserved.

Use :func:`load` with a dataset name (``"twitch-sim"`` etc.) or
:func:`paper_table1_datasets` to get all six in the paper's row order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .edgelist import EdgeList
from .generators import erdos_renyi, rmat

__all__ = [
    "DatasetSpec",
    "PAPER_GRAPHS",
    "available_datasets",
    "load",
    "paper_table1_datasets",
    "generate_labels",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one paper graph and its synthetic stand-in.

    ``paper_n`` / ``paper_s`` record the sizes reported in Table I; the
    stand-in is generated with roughly ``paper_s * scale`` edges while
    keeping the original average degree.
    """

    name: str
    paper_name: str
    paper_n: int
    paper_s: int
    paper_runtime_python: float
    paper_runtime_numba: float
    paper_runtime_ligra_serial: float
    paper_runtime_ligra_parallel: float
    generator: str = "rmat"

    @property
    def paper_avg_degree(self) -> float:
        """Average (directed) degree of the original graph."""
        return self.paper_s / self.paper_n

    def scaled_sizes(self, scale: float) -> Tuple[int, int]:
        """Return (n, s) of the stand-in graph for a given scale factor."""
        s = max(64, int(round(self.paper_s * scale)))
        n = max(16, int(round(self.paper_n * scale)))
        return n, s


# Sizes and runtimes exactly as printed in Table I of the paper.
PAPER_GRAPHS: Dict[str, DatasetSpec] = {
    "twitch-sim": DatasetSpec(
        name="twitch-sim",
        paper_name="Twitch",
        paper_n=168_000,
        paper_s=6_800_000,
        paper_runtime_python=12.18,
        paper_runtime_numba=0.20,
        paper_runtime_ligra_serial=0.11,
        paper_runtime_ligra_parallel=0.013,
    ),
    "pokec-sim": DatasetSpec(
        name="pokec-sim",
        paper_name="soc-Pokec",
        paper_n=1_600_000,
        paper_s=30_000_000,
        paper_runtime_python=133.21,
        paper_runtime_numba=1.68,
        paper_runtime_ligra_serial=0.99,
        paper_runtime_ligra_parallel=0.12,
    ),
    "livejournal-sim": DatasetSpec(
        name="livejournal-sim",
        paper_name="soc-LiveJournal",
        paper_n=6_400_000,
        paper_s=69_000_000,
        paper_runtime_python=301.64,
        paper_runtime_numba=4.29,
        paper_runtime_ligra_serial=2.39,
        paper_runtime_ligra_parallel=0.39,
    ),
    "orkut-sim": DatasetSpec(
        name="orkut-sim",
        paper_name="soc-orkut",
        paper_n=3_000_000,
        paper_s=117_000_000,
        paper_runtime_python=499.83,
        paper_runtime_numba=4.48,
        paper_runtime_ligra_serial=2.97,
        paper_runtime_ligra_parallel=0.26,
    ),
    "orkut-groups-sim": DatasetSpec(
        name="orkut-groups-sim",
        paper_name="orkut-groups",
        paper_n=3_000_000,
        paper_s=327_000_000,
        paper_runtime_python=595.29,
        paper_runtime_numba=11.43,
        paper_runtime_ligra_serial=6.06,
        paper_runtime_ligra_parallel=2.36,
    ),
    "friendster-sim": DatasetSpec(
        name="friendster-sim",
        paper_name="Friendster",
        paper_n=65_000_000,
        paper_s=1_800_000_000,
        paper_runtime_python=3374.72,
        paper_runtime_numba=112.33,
        paper_runtime_ligra_serial=77.23,
        paper_runtime_ligra_parallel=6.42,
    ),
}

#: Default shrink factor: friendster-sim gets ~1.1M edges which keeps the
#: full Table I sweep runnable in seconds-to-minutes of pure Python.
DEFAULT_SCALE = 1.0 / 1600.0


def available_datasets() -> List[str]:
    """Names accepted by :func:`load`, in Table I row order."""
    return list(PAPER_GRAPHS.keys())


def load(
    name: str,
    *,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = 0,
) -> Tuple[EdgeList, DatasetSpec]:
    """Generate the stand-in graph for the named paper dataset.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (e.g. ``"friendster-sim"``).  The
        original SNAP names (``"Twitch"``, ``"Friendster"`` ...) are also
        accepted, case-insensitively.
    scale:
        Linear shrink factor applied to the paper's node and edge counts.
    seed:
        RNG seed for the generator (deterministic stand-ins by default).

    Returns
    -------
    (edges, spec)
    """
    key = name.lower()
    if key not in PAPER_GRAPHS:
        by_paper_name = {
            spec.paper_name.lower(): spec.name for spec in PAPER_GRAPHS.values()
        }
        if key in by_paper_name:
            key = by_paper_name[key]
        else:
            raise KeyError(
                f"unknown dataset {name!r}; available: {available_datasets()}"
            )
    spec = PAPER_GRAPHS[key]
    n, s = spec.scaled_sizes(scale)
    if spec.generator == "rmat":
        # Pick the R-MAT scale so 2**scale >= n, then trim edge_factor to hit
        # the target edge count.
        log_n = max(4, int(np.ceil(np.log2(n))))
        n_rmat = 1 << log_n
        edge_factor = max(1, int(round(s / n_rmat)))
        edges = rmat(log_n, edge_factor=edge_factor, seed=seed)
    else:
        edges = erdos_renyi(n, s, seed=seed)
    return edges, spec


def paper_table1_datasets(
    *, scale: float = DEFAULT_SCALE, seed: Optional[int] = 0
) -> List[Tuple[EdgeList, DatasetSpec]]:
    """All six Table I stand-ins in the paper's row order."""
    return [load(name, scale=scale, seed=seed) for name in available_datasets()]


def generate_labels(
    n_vertices: int,
    n_classes: int = 50,
    *,
    labelled_fraction: float = 0.10,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Reproduce the paper's label protocol.

    "We generated the Y labels uniformly at random from [0, K=50] for 10% of
    nodes, which were also selected uniformly at random" (§IV).  Unknown
    labels are encoded as ``-1`` (see DESIGN.md conventions).
    """
    if not 0.0 <= labelled_fraction <= 1.0:
        raise ValueError("labelled_fraction must be in [0, 1]")
    if n_classes <= 0:
        raise ValueError("n_classes must be positive")
    rng = np.random.default_rng(seed)
    y = np.full(n_vertices, -1, dtype=np.int64)
    n_labelled = int(round(labelled_fraction * n_vertices))
    if n_labelled > 0:
        chosen = rng.choice(n_vertices, size=n_labelled, replace=False)
        y[chosen] = rng.integers(0, n_classes, size=n_labelled)
    return y
