"""Edge-list graph representation.

The edge list is the representation GEE (Algorithm 1 of the paper) consumes
directly: an ``(s, 3)`` array of ``(source, destination, weight)`` triples.
It is deliberately minimal — a thin, validated wrapper around three NumPy
arrays — because the single-pass GEE kernel only ever streams over edges.

The heavier :class:`repro.graph.csr.CSRGraph` structure (used by the
Ligra-like engine, which walks per-vertex adjacency lists) is built from an
:class:`EdgeList` via :meth:`EdgeList.to_csr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["EdgeList"]


@dataclass
class EdgeList:
    """A weighted, directed edge list over vertices ``0 .. n_vertices-1``.

    Parameters
    ----------
    src:
        Integer array of edge sources, shape ``(s,)``.
    dst:
        Integer array of edge destinations, shape ``(s,)``.
    weights:
        Optional float array of edge weights, shape ``(s,)``.  ``None``
        means an unweighted graph (all weights treated as ``1.0``), matching
        the paper's "unweighted graphs have unit weights".
    n_vertices:
        Number of vertices.  If omitted it is inferred as
        ``max(src, dst) + 1`` (0 for an empty edge set).

    Notes
    -----
    * The structure is *directed*.  The paper treats an undirected graph as
      two symmetric directed graphs; use
      :func:`repro.graph.builders.symmetrize` for that.
    * Arrays are converted to contiguous ``int64`` / ``float64`` on
      construction so downstream kernels never pay conversion costs inside
      timed regions.
    """

    src: np.ndarray
    dst: np.ndarray
    weights: Optional[np.ndarray] = None
    n_vertices: Optional[int] = None
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(np.asarray(self.src, dtype=np.int64).ravel())
        self.dst = np.ascontiguousarray(np.asarray(self.dst, dtype=np.int64).ravel())
        if self.src.shape != self.dst.shape:
            raise ValueError(
                f"src and dst must have the same length, got {self.src.size} and {self.dst.size}"
            )
        if self.weights is not None:
            self.weights = np.ascontiguousarray(
                np.asarray(self.weights, dtype=np.float64).ravel()
            )
            if self.weights.shape != self.src.shape:
                raise ValueError(
                    f"weights length {self.weights.size} does not match edge count {self.src.size}"
                )
        inferred = 0
        if self.src.size:
            inferred = int(max(self.src.max(), self.dst.max())) + 1
        if self.n_vertices is None:
            self.n_vertices = inferred
        else:
            self.n_vertices = int(self.n_vertices)
            if self.n_vertices < inferred:
                raise ValueError(
                    f"n_vertices={self.n_vertices} is smaller than the largest "
                    f"endpoint + 1 ({inferred})"
                )
        if self.src.size and (self.src.min() < 0 or self.dst.min() < 0):
            raise ValueError("vertex ids must be non-negative")
        self._validated = True

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """Number of directed edges ``s``."""
        return int(self.src.size)

    @property
    def is_weighted(self) -> bool:
        """Whether an explicit weight array is attached."""
        return self.weights is not None

    def __len__(self) -> int:
        return self.n_edges

    def __iter__(self) -> Iterator[Tuple[int, int, float]]:
        w = self.effective_weights()
        for i in range(self.n_edges):
            yield int(self.src[i]), int(self.dst[i]), float(w[i])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        return (
            self.n_vertices == other.n_vertices
            and np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
            and np.array_equal(self.effective_weights(), other.effective_weights())
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted" if self.is_weighted else "unweighted"
        return f"EdgeList(n={self.n_vertices}, s={self.n_edges}, {kind})"

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def effective_weights(self) -> np.ndarray:
        """Return the weight array, materialising unit weights if needed."""
        if self.weights is not None:
            return self.weights
        return np.ones(self.n_edges, dtype=np.float64)

    def as_array(self) -> np.ndarray:
        """Return the paper's ``E ∈ R^{s×3}`` matrix ``[src, dst, weight]``."""
        out = np.empty((self.n_edges, 3), dtype=np.float64)
        out[:, 0] = self.src
        out[:, 1] = self.dst
        out[:, 2] = self.effective_weights()
        return out

    @classmethod
    def from_array(cls, E: np.ndarray, n_vertices: Optional[int] = None) -> "EdgeList":
        """Build an edge list from an ``(s, 2)`` or ``(s, 3)`` array.

        A two-column array is interpreted as an unweighted edge list.
        """
        E = np.asarray(E)
        if E.ndim != 2 or E.shape[1] not in (2, 3):
            raise ValueError(f"expected an (s, 2) or (s, 3) array, got shape {E.shape}")
        weights = E[:, 2].astype(np.float64) if E.shape[1] == 3 else None
        return cls(
            src=E[:, 0].astype(np.int64),
            dst=E[:, 1].astype(np.int64),
            weights=weights,
            n_vertices=n_vertices,
        )

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def copy(self) -> "EdgeList":
        """Deep copy of the edge list."""
        return EdgeList(
            src=self.src.copy(),
            dst=self.dst.copy(),
            weights=None if self.weights is None else self.weights.copy(),
            n_vertices=self.n_vertices,
        )

    def with_weights(self, weights: np.ndarray) -> "EdgeList":
        """Return a new edge list sharing topology but with new weights."""
        return EdgeList(self.src, self.dst, weights, self.n_vertices)

    def permute_edges(self, order: np.ndarray) -> "EdgeList":
        """Return a new edge list with edges reordered by ``order``.

        Edge order does not change GEE's output (addition is commutative up
        to floating-point rounding); tests use this to check order
        independence.
        """
        order = np.asarray(order, dtype=np.int64)
        if order.shape != (self.n_edges,):
            raise ValueError("order must be a permutation of range(n_edges)")
        return EdgeList(
            self.src[order],
            self.dst[order],
            None if self.weights is None else self.weights[order],
            self.n_vertices,
        )

    def reverse(self) -> "EdgeList":
        """Return the edge list with every edge direction flipped."""
        return EdgeList(
            self.dst.copy(),
            self.src.copy(),
            None if self.weights is None else self.weights.copy(),
            self.n_vertices,
        )

    def to_csr(self):
        """Convert to a :class:`repro.graph.csr.CSRGraph`."""
        from .csr import CSRGraph

        return CSRGraph.from_edgelist(self)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.bincount(self.src, minlength=self.n_vertices).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.bincount(self.dst, minlength=self.n_vertices).astype(np.int64)

    def has_self_loops(self) -> bool:
        """Whether any edge starts and ends at the same vertex."""
        return bool(np.any(self.src == self.dst))

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.effective_weights().sum())
