"""Structural graph properties computed directly on edge lists.

These helpers are used by the builders, the dataset registry (to report the
shape of the stand-in graphs) and tests.  Heavier frontier-based algorithms
(BFS, PageRank, ...) live in :mod:`repro.ligra.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .edgelist import EdgeList

__all__ = [
    "degree_statistics",
    "connected_components",
    "n_connected_components",
    "density",
    "is_symmetric",
    "GraphSummary",
    "summarize",
]


def degree_statistics(edges: EdgeList) -> Dict[str, float]:
    """Return min/mean/max/std of the out-degree distribution."""
    deg = edges.out_degrees()
    if deg.size == 0:
        return {"min": 0.0, "mean": 0.0, "max": 0.0, "std": 0.0}
    return {
        "min": float(deg.min()),
        "mean": float(deg.mean()),
        "max": float(deg.max()),
        "std": float(deg.std()),
    }


def connected_components(edges: EdgeList) -> np.ndarray:
    """Weakly connected component label of each vertex.

    Implemented with union-find (path halving + union by size) so it works
    on an edge list without materialising adjacency.  Labels are renumbered
    to ``0..c-1`` in order of first appearance.
    """
    n = edges.n_vertices
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in zip(edges.src.tolist(), edges.dst.tolist()):
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        if size[ru] < size[rv]:
            ru, rv = rv, ru
        parent[rv] = ru
        size[ru] += size[rv]

    roots = np.array([find(i) for i in range(n)], dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64)


def n_connected_components(edges: EdgeList) -> int:
    """Number of weakly connected components (isolated vertices count)."""
    if edges.n_vertices == 0:
        return 0
    return int(connected_components(edges).max()) + 1


def density(edges: EdgeList) -> float:
    """Directed edge density ``s / (n * (n - 1))``."""
    n = edges.n_vertices
    if n <= 1:
        return 0.0
    return edges.n_edges / (n * (n - 1))


def is_symmetric(edges: EdgeList) -> bool:
    """Whether every directed edge has a reciprocal edge (ignoring weights)."""
    if edges.n_edges == 0:
        return True
    n = edges.n_vertices
    fwd = np.unique(edges.src * n + edges.dst)
    rev = np.unique(edges.dst * n + edges.src)
    return fwd.size == rev.size and bool(np.array_equal(fwd, rev))


@dataclass(frozen=True)
class GraphSummary:
    """Compact structural description of a graph, used in reports."""

    n_vertices: int
    n_edges: int
    mean_degree: float
    max_degree: int
    n_components: int
    density: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for CSV / markdown emitters."""
        return {
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "mean_degree": self.mean_degree,
            "max_degree": self.max_degree,
            "n_components": self.n_components,
            "density": self.density,
        }


def summarize(edges: EdgeList, *, components: bool = True) -> GraphSummary:
    """Build a :class:`GraphSummary` for ``edges``.

    Component counting is O(s α(n)) but still the slowest part for large
    graphs; pass ``components=False`` to skip it (reported as ``-1``).
    """
    stats = degree_statistics(edges)
    ncomp = n_connected_components(edges) if components else -1
    return GraphSummary(
        n_vertices=edges.n_vertices,
        n_edges=edges.n_edges,
        mean_degree=stats["mean"],
        max_degree=int(stats["max"]),
        n_components=ncomp,
        density=density(edges),
    )
