"""Compressed sparse row (CSR) graph structure.

Ligra stores graphs as per-vertex adjacency arrays so that ``edgeMapDense``
can hand each vertex's edge list to one worker (paper §III).  This module
provides the equivalent structure: ``indptr`` / ``indices`` / ``weights``
arrays in the usual CSR layout, with both out-adjacency and (optionally)
in-adjacency views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .edgelist import EdgeList

__all__ = ["CSRGraph"]


@dataclass
class CSRGraph:
    """Directed graph in CSR form.

    Attributes
    ----------
    indptr:
        ``(n+1,)`` int64 array; out-edges of vertex ``u`` occupy slots
        ``indptr[u]:indptr[u+1]`` of ``indices`` / ``weights``.
    indices:
        ``(s,)`` int64 array of destination vertices.
    weights:
        ``(s,)`` float64 array of edge weights (unit weights if the source
        edge list was unweighted).
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    _in_indptr: Optional[np.ndarray] = None
    _in_indices: Optional[np.ndarray] = None
    _in_weights: Optional[np.ndarray] = None
    _in_edge_pos: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(np.asarray(self.indptr, dtype=np.int64))
        self.indices = np.ascontiguousarray(np.asarray(self.indices, dtype=np.int64))
        self.weights = np.ascontiguousarray(np.asarray(self.weights, dtype=np.float64))
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise ValueError("indptr must be a 1-D array of length n+1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at the number of edges")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.weights.size != self.indices.size:
            raise ValueError("weights and indices must have the same length")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edgelist(cls, edges: EdgeList) -> "CSRGraph":
        """Build a CSR graph from an :class:`EdgeList` (stable edge order
        within each vertex's adjacency list)."""
        n = edges.n_vertices
        w = edges.effective_weights()
        order = np.argsort(edges.src, kind="stable")
        src_sorted = edges.src[order]
        indices = edges.dst[order]
        weights = w[order]
        counts = np.bincount(src_sorted, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=indices, weights=weights)

    @classmethod
    def from_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray] = None,
        n_vertices: Optional[int] = None,
    ) -> "CSRGraph":
        """Convenience constructor from raw src/dst/weight arrays."""
        return cls.from_edgelist(EdgeList(src, dst, weights, n_vertices))

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Number of vertices ``n``."""
        return int(self.indptr.size - 1)

    @property
    def n_edges(self) -> int:
        """Number of directed edges ``s``."""
        return int(self.indices.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.n_vertices}, s={self.n_edges})"

    # ------------------------------------------------------------------ #
    # Adjacency access
    # ------------------------------------------------------------------ #
    def out_degree(self, u: int) -> int:
        """Out-degree of vertex ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def out_degrees(self) -> np.ndarray:
        """Out-degrees of all vertices."""
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        """Destinations of out-edges of ``u`` (a view, do not mutate)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Weights of out-edges of ``u`` (a view, do not mutate)."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def edge_slice(self, u: int) -> Tuple[int, int]:
        """Half-open slice ``(lo, hi)`` of vertex ``u``'s out-edges."""
        return int(self.indptr[u]), int(self.indptr[u + 1])

    def edge_sources(self) -> np.ndarray:
        """Expand ``indptr`` back to a per-edge source array."""
        return np.repeat(np.arange(self.n_vertices, dtype=np.int64), self.out_degrees())

    # ------------------------------------------------------------------ #
    # In-adjacency (transpose), built lazily
    # ------------------------------------------------------------------ #
    def _build_in_adjacency(self) -> None:
        src = self.edge_sources()
        dst = self.indices
        order = np.argsort(dst, kind="stable")
        counts = np.bincount(dst, minlength=self.n_vertices)
        indptr = np.zeros(self.n_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._in_indptr = indptr
        self._in_indices = src[order]
        self._in_weights = self.weights[order]
        self._in_edge_pos = order.astype(np.int64)

    @property
    def in_indptr(self) -> np.ndarray:
        """CSR indptr of the transposed (in-edge) adjacency."""
        if self._in_indptr is None:
            self._build_in_adjacency()
        return self._in_indptr  # type: ignore[return-value]

    @property
    def in_indices(self) -> np.ndarray:
        """CSR indices (edge sources) of the transposed adjacency."""
        if self._in_indices is None:
            self._build_in_adjacency()
        return self._in_indices  # type: ignore[return-value]

    @property
    def in_weights(self) -> np.ndarray:
        """Weights aligned with :attr:`in_indices`."""
        if self._in_weights is None:
            self._build_in_adjacency()
        return self._in_weights  # type: ignore[return-value]

    def in_degrees(self) -> np.ndarray:
        """In-degrees of all vertices."""
        return np.diff(self.in_indptr)

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of in-edges of ``v``."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_edgelist(self) -> EdgeList:
        """Convert back to an :class:`EdgeList` (grouped by source vertex)."""
        return EdgeList(
            src=self.edge_sources(),
            dst=self.indices.copy(),
            weights=self.weights.copy(),
            n_vertices=self.n_vertices,
        )

    def to_scipy(self):
        """Return the adjacency matrix as a ``scipy.sparse.csr_matrix``."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.weights, self.indices, self.indptr),
            shape=(self.n_vertices, self.n_vertices),
        )

    def transpose(self) -> "CSRGraph":
        """Return a new CSR graph with every edge reversed."""
        return CSRGraph(
            indptr=self.in_indptr.copy(),
            indices=self.in_indices.copy(),
            weights=self.in_weights.copy(),
        )
