"""Synthetic graph generators.

The paper evaluates on SNAP social graphs and on Erdős–Rényi graphs of
increasing size (Figure 4).  This module provides:

* :func:`erdos_renyi` — G(n, s) random multigraphs sampled by edge count,
  exactly what Figure 4 sweeps over powers-of-two edge counts.
* :func:`stochastic_block_model` — SBM graphs with planted communities; used
  to validate GEE's statistical behaviour (the original GEE paper's setting).
* :func:`rmat` — R-MAT / Kronecker-style skewed-degree graphs, the standard
  stand-in for social networks such as Pokec, LiveJournal, Orkut and
  Friendster.
* :func:`configuration_power_law` — degree-sequence graphs with a power-law
  tail, an alternative social-network stand-in.

All generators take an explicit ``seed`` (or :class:`numpy.random.Generator`)
and never touch global RNG state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .builders import deduplicate, remove_self_loops, symmetrize
from .edgelist import EdgeList

__all__ = [
    "erdos_renyi",
    "stochastic_block_model",
    "rmat",
    "configuration_power_law",
    "planted_partition",
    "star_graph",
    "path_graph",
    "complete_graph",
]

SeedLike = Union[None, int, np.random.Generator]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi(
    n_vertices: int,
    n_edges: int,
    *,
    weighted: bool = False,
    undirected: bool = False,
    seed: SeedLike = None,
) -> EdgeList:
    """Sample an Erdős–Rényi style random graph with a fixed edge count.

    Edges are sampled uniformly with replacement (a sparse multigraph), the
    same G(n, s)-by-edge-count convention used by the paper's Figure 4 sweep
    where the independent variable is ``log2(edges)``.

    Parameters
    ----------
    n_vertices, n_edges:
        Graph dimensions.  When ``undirected=True`` the returned edge list
        contains ``2 * n_edges`` directed edges (both directions).
    weighted:
        If true, attach uniform(0.5, 1.5) weights.
    """
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    if n_edges < 0:
        raise ValueError("n_edges must be non-negative")
    rng = _rng(seed)
    src = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    dst = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    weights = rng.uniform(0.5, 1.5, size=n_edges) if weighted else None
    edges = EdgeList(src, dst, weights, n_vertices)
    if undirected:
        edges = symmetrize(edges)
    return edges


def stochastic_block_model(
    block_sizes: Sequence[int],
    block_matrix: np.ndarray,
    *,
    seed: SeedLike = None,
    directed: bool = False,
    self_loops: bool = False,
) -> Tuple[EdgeList, np.ndarray]:
    """Sample a stochastic block model graph.

    Parameters
    ----------
    block_sizes:
        Number of vertices in each block; ``K = len(block_sizes)``.
    block_matrix:
        ``(K, K)`` matrix of edge probabilities between blocks.
    directed:
        If false (default), only the upper triangle of each block pair is
        sampled and the edge list is symmetrised.

    Returns
    -------
    (edges, labels):
        The sampled edge list and the ground-truth block label of each
        vertex (values ``0..K-1``).
    """
    block_sizes = [int(b) for b in block_sizes]
    if any(b <= 0 for b in block_sizes):
        raise ValueError("block sizes must be positive")
    B = np.asarray(block_matrix, dtype=np.float64)
    K = len(block_sizes)
    if B.shape != (K, K):
        raise ValueError(f"block_matrix must be ({K}, {K}), got {B.shape}")
    if np.any(B < 0) or np.any(B > 1):
        raise ValueError("block probabilities must lie in [0, 1]")
    rng = _rng(seed)
    n = sum(block_sizes)
    labels = np.repeat(np.arange(K, dtype=np.int64), block_sizes)
    offsets = np.concatenate([[0], np.cumsum(block_sizes)])

    srcs = []
    dsts = []
    for a in range(K):
        for b in range(K):
            if not directed and b < a:
                continue
            na, nb = block_sizes[a], block_sizes[b]
            p = B[a, b]
            if p <= 0:
                continue
            # Sample the number of edges binomially, then place them
            # uniformly; this is O(expected edges) instead of O(na*nb).
            if a == b and not directed:
                n_pairs = na * (na - 1) // 2 + (na if self_loops else 0)
            else:
                n_pairs = na * nb
            m = rng.binomial(n_pairs, p)
            if m == 0:
                continue
            u = rng.integers(0, na, size=m, dtype=np.int64) + offsets[a]
            v = rng.integers(0, nb, size=m, dtype=np.int64) + offsets[b]
            srcs.append(u)
            dsts.append(v)
    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    edges = EdgeList(src, dst, None, n)
    if not self_loops:
        edges = remove_self_loops(edges)
    edges = deduplicate(edges, combine="first")
    if not directed:
        edges = symmetrize(edges)
        edges = deduplicate(edges, combine="first")
    return edges, labels


def planted_partition(
    n_vertices: int,
    n_blocks: int,
    p_in: float,
    p_out: float,
    *,
    seed: SeedLike = None,
) -> Tuple[EdgeList, np.ndarray]:
    """Equal-sized-block SBM with within-probability ``p_in`` and
    between-probability ``p_out`` (the classic planted-partition model)."""
    if n_blocks <= 0 or n_vertices < n_blocks:
        raise ValueError("need at least one vertex per block")
    sizes = [n_vertices // n_blocks] * n_blocks
    for i in range(n_vertices % n_blocks):
        sizes[i] += 1
    B = np.full((n_blocks, n_blocks), p_out, dtype=np.float64)
    np.fill_diagonal(B, p_in)
    return stochastic_block_model(sizes, B, seed=seed)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    undirected: bool = False,
    weighted: bool = False,
) -> EdgeList:
    """Generate an R-MAT (recursive matrix / Kronecker) graph.

    ``n = 2**scale`` vertices and ``edge_factor * n`` directed edges with the
    Graph500 default partition probabilities.  R-MAT graphs have the heavy,
    skewed degree distributions of social networks, which is what makes them
    suitable stand-ins for the paper's SNAP graphs.
    """
    if scale <= 0 or scale > 30:
        raise ValueError("scale must be in 1..30")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("partition probabilities must be non-negative and sum to <= 1")
    rng = _rng(seed)
    n = 1 << scale
    m = int(edge_factor * n)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Vectorised recursive descent: at each of `scale` levels pick a quadrant
    # for every edge at once.
    ab = a + b
    abc = a + b + c
    for _ in range(scale):
        r = rng.random(m)
        right = (r >= a) & (r < ab) | (r >= abc)  # quadrants b and d set a dst bit
        lower = r >= ab  # quadrants c and d set a src bit
        src = (src << 1) | lower.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    # Permute vertex ids so degree is not correlated with id.
    perm = rng.permutation(n).astype(np.int64)
    src = perm[src]
    dst = perm[dst]
    weights = rng.uniform(0.5, 1.5, size=m) if weighted else None
    edges = EdgeList(src, dst, weights, n)
    if undirected:
        edges = symmetrize(edges)
    return edges


def configuration_power_law(
    n_vertices: int,
    *,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: SeedLike = None,
) -> EdgeList:
    """Directed configuration-model graph with power-law out-degrees.

    Each vertex draws an out-degree from a discrete power law with the given
    exponent, then its out-neighbours are chosen uniformly at random.  This
    produces the hub-dominated structure typical of follower networks.
    """
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1")
    if min_degree < 0:
        raise ValueError("min_degree must be non-negative")
    rng = _rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n_vertices)))
    degrees_support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    if degrees_support.size == 0:
        raise ValueError("empty degree support; check min/max degree")
    probs = degrees_support.clip(min=1) ** (-exponent)
    probs /= probs.sum()
    out_deg = rng.choice(
        degrees_support.astype(np.int64), size=n_vertices, p=probs
    )
    src = np.repeat(np.arange(n_vertices, dtype=np.int64), out_deg)
    dst = rng.integers(0, n_vertices, size=src.size, dtype=np.int64)
    return EdgeList(src, dst, None, n_vertices)


def star_graph(n_leaves: int) -> EdgeList:
    """Star: vertex 0 connected to every leaf, both directions."""
    if n_leaves < 0:
        raise ValueError("n_leaves must be non-negative")
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    hub = np.zeros(n_leaves, dtype=np.int64)
    return EdgeList(
        np.concatenate([hub, leaves]),
        np.concatenate([leaves, hub]),
        None,
        n_leaves + 1,
    )


def path_graph(n_vertices: int) -> EdgeList:
    """Undirected path 0-1-2-...-(n-1) stored as two directed edges each."""
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    a = np.arange(n_vertices - 1, dtype=np.int64)
    b = a + 1
    return EdgeList(
        np.concatenate([a, b]), np.concatenate([b, a]), None, n_vertices
    )


def complete_graph(n_vertices: int) -> EdgeList:
    """Complete directed graph without self loops."""
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    src, dst = np.meshgrid(
        np.arange(n_vertices, dtype=np.int64), np.arange(n_vertices, dtype=np.int64), indexing="ij"
    )
    mask = src != dst
    return EdgeList(src[mask], dst[mask], None, n_vertices)
