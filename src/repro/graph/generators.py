"""Synthetic graph generators.

The paper evaluates on SNAP social graphs and on Erdős–Rényi graphs of
increasing size (Figure 4).  This module provides:

* :func:`erdos_renyi` — G(n, s) random multigraphs sampled by edge count,
  exactly what Figure 4 sweeps over powers-of-two edge counts.
* :func:`stochastic_block_model` — SBM graphs with planted communities; used
  to validate GEE's statistical behaviour (the original GEE paper's setting).
* :func:`rmat` — R-MAT / Kronecker-style skewed-degree graphs, the standard
  stand-in for social networks such as Pokec, LiveJournal, Orkut and
  Friendster.
* :func:`configuration_power_law` — degree-sequence graphs with a power-law
  tail, an alternative social-network stand-in.

All generators take an explicit ``seed`` (or :class:`numpy.random.Generator`)
and never touch global RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .builders import deduplicate, remove_self_loops, symmetrize
from .edgelist import EdgeList

__all__ = [
    "erdos_renyi",
    "stochastic_block_model",
    "rmat",
    "configuration_power_law",
    "planted_partition",
    "star_graph",
    "path_graph",
    "complete_graph",
    "temporal_drift",
    "DriftBatch",
    "DriftScenario",
]

SeedLike = Union[None, int, np.random.Generator]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi(
    n_vertices: int,
    n_edges: int,
    *,
    weighted: bool = False,
    undirected: bool = False,
    seed: SeedLike = None,
) -> EdgeList:
    """Sample an Erdős–Rényi style random graph with a fixed edge count.

    Edges are sampled uniformly with replacement (a sparse multigraph), the
    same G(n, s)-by-edge-count convention used by the paper's Figure 4 sweep
    where the independent variable is ``log2(edges)``.

    Parameters
    ----------
    n_vertices, n_edges:
        Graph dimensions.  When ``undirected=True`` the returned edge list
        contains ``2 * n_edges`` directed edges (both directions).
    weighted:
        If true, attach uniform(0.5, 1.5) weights.
    """
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    if n_edges < 0:
        raise ValueError("n_edges must be non-negative")
    rng = _rng(seed)
    src = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    dst = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    weights = rng.uniform(0.5, 1.5, size=n_edges) if weighted else None
    edges = EdgeList(src, dst, weights, n_vertices)
    if undirected:
        edges = symmetrize(edges)
    return edges


def stochastic_block_model(
    block_sizes: Sequence[int],
    block_matrix: np.ndarray,
    *,
    seed: SeedLike = None,
    directed: bool = False,
    self_loops: bool = False,
) -> Tuple[EdgeList, np.ndarray]:
    """Sample a stochastic block model graph.

    Parameters
    ----------
    block_sizes:
        Number of vertices in each block; ``K = len(block_sizes)``.
    block_matrix:
        ``(K, K)`` matrix of edge probabilities between blocks.
    directed:
        If false (default), only the upper triangle of each block pair is
        sampled and the edge list is symmetrised.

    Returns
    -------
    (edges, labels):
        The sampled edge list and the ground-truth block label of each
        vertex (values ``0..K-1``).
    """
    block_sizes = [int(b) for b in block_sizes]
    if any(b <= 0 for b in block_sizes):
        raise ValueError("block sizes must be positive")
    B = np.asarray(block_matrix, dtype=np.float64)
    K = len(block_sizes)
    if B.shape != (K, K):
        raise ValueError(f"block_matrix must be ({K}, {K}), got {B.shape}")
    if np.any(B < 0) or np.any(B > 1):
        raise ValueError("block probabilities must lie in [0, 1]")
    rng = _rng(seed)
    n = sum(block_sizes)
    labels = np.repeat(np.arange(K, dtype=np.int64), block_sizes)
    offsets = np.concatenate([[0], np.cumsum(block_sizes)])

    srcs = []
    dsts = []
    for a in range(K):
        for b in range(K):
            if not directed and b < a:
                continue
            na, nb = block_sizes[a], block_sizes[b]
            p = B[a, b]
            if p <= 0:
                continue
            # Sample the number of edges binomially, then place them
            # uniformly; this is O(expected edges) instead of O(na*nb).
            if a == b and not directed:
                n_pairs = na * (na - 1) // 2 + (na if self_loops else 0)
            else:
                n_pairs = na * nb
            m = rng.binomial(n_pairs, p)
            if m == 0:
                continue
            u = rng.integers(0, na, size=m, dtype=np.int64) + offsets[a]
            v = rng.integers(0, nb, size=m, dtype=np.int64) + offsets[b]
            srcs.append(u)
            dsts.append(v)
    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    edges = EdgeList(src, dst, None, n)
    if not self_loops:
        edges = remove_self_loops(edges)
    edges = deduplicate(edges, combine="first")
    if not directed:
        edges = symmetrize(edges)
        edges = deduplicate(edges, combine="first")
    return edges, labels


def planted_partition(
    n_vertices: int,
    n_blocks: int,
    p_in: float,
    p_out: float,
    *,
    seed: SeedLike = None,
) -> Tuple[EdgeList, np.ndarray]:
    """Equal-sized-block SBM with within-probability ``p_in`` and
    between-probability ``p_out`` (the classic planted-partition model)."""
    if n_blocks <= 0 or n_vertices < n_blocks:
        raise ValueError("need at least one vertex per block")
    sizes = [n_vertices // n_blocks] * n_blocks
    for i in range(n_vertices % n_blocks):
        sizes[i] += 1
    B = np.full((n_blocks, n_blocks), p_out, dtype=np.float64)
    np.fill_diagonal(B, p_in)
    return stochastic_block_model(sizes, B, seed=seed)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    undirected: bool = False,
    weighted: bool = False,
) -> EdgeList:
    """Generate an R-MAT (recursive matrix / Kronecker) graph.

    ``n = 2**scale`` vertices and ``edge_factor * n`` directed edges with the
    Graph500 default partition probabilities.  R-MAT graphs have the heavy,
    skewed degree distributions of social networks, which is what makes them
    suitable stand-ins for the paper's SNAP graphs.
    """
    if scale <= 0 or scale > 30:
        raise ValueError("scale must be in 1..30")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("partition probabilities must be non-negative and sum to <= 1")
    rng = _rng(seed)
    n = 1 << scale
    m = int(edge_factor * n)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Vectorised recursive descent: at each of `scale` levels pick a quadrant
    # for every edge at once.
    ab = a + b
    abc = a + b + c
    for _ in range(scale):
        r = rng.random(m)
        right = (r >= a) & (r < ab) | (r >= abc)  # quadrants b and d set a dst bit
        lower = r >= ab  # quadrants c and d set a src bit
        src = (src << 1) | lower.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    # Permute vertex ids so degree is not correlated with id.
    perm = rng.permutation(n).astype(np.int64)
    src = perm[src]
    dst = perm[dst]
    weights = rng.uniform(0.5, 1.5, size=m) if weighted else None
    edges = EdgeList(src, dst, weights, n)
    if undirected:
        edges = symmetrize(edges)
    return edges


def configuration_power_law(
    n_vertices: int,
    *,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: SeedLike = None,
) -> EdgeList:
    """Directed configuration-model graph with power-law out-degrees.

    Each vertex draws an out-degree from a discrete power law with the given
    exponent, then its out-neighbours are chosen uniformly at random.  This
    produces the hub-dominated structure typical of follower networks.
    """
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1")
    if min_degree < 0:
        raise ValueError("min_degree must be non-negative")
    rng = _rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n_vertices)))
    degrees_support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    if degrees_support.size == 0:
        raise ValueError("empty degree support; check min/max degree")
    probs = degrees_support.clip(min=1) ** (-exponent)
    probs /= probs.sum()
    out_deg = rng.choice(
        degrees_support.astype(np.int64), size=n_vertices, p=probs
    )
    src = np.repeat(np.arange(n_vertices, dtype=np.int64), out_deg)
    dst = rng.integers(0, n_vertices, size=src.size, dtype=np.int64)
    return EdgeList(src, dst, None, n_vertices)


@dataclass(frozen=True)
class DriftBatch:
    """One step of a temporal-drift scenario.

    ``add`` holds the edges arriving this step; ``remove_src``/``remove_dst``
    name departing edge *instances* (sampled from edges that exist at this
    point of the schedule, so replaying the batches through
    ``DynamicGraph.remove_edges`` never addresses a missing edge);
    ``relabelled`` lists the vertices whose community changed just before
    the step's arrivals were sampled.
    """

    add: EdgeList
    remove_src: np.ndarray
    remove_dst: np.ndarray
    relabelled: np.ndarray

    @property
    def n_added(self) -> int:
        return self.add.n_edges

    @property
    def n_removed(self) -> int:
        return int(self.remove_src.size)


@dataclass(frozen=True)
class DriftScenario:
    """A reproducible mutation schedule over a community-structured graph."""

    initial: EdgeList
    labels: np.ndarray
    batches: List[DriftBatch]
    final_labels: np.ndarray

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    def total_churn(self) -> int:
        """Total edges added plus removed across every batch."""
        return sum(b.n_added + b.n_removed for b in self.batches)


def _community_edges(
    rng: np.random.Generator,
    labels: np.ndarray,
    m: int,
    *,
    within_fraction: float,
    weighted: bool,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Sample ``m`` edges whose endpoints respect the community structure."""
    n = labels.shape[0]
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    within = rng.random(m) < within_fraction
    if np.any(within):
        # Redirect the within-community edges' destinations to a uniform
        # member of the source's community (grouped member table, no loop).
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        starts = np.searchsorted(sorted_labels, labels[src[within]], side="left")
        ends = np.searchsorted(sorted_labels, labels[src[within]], side="right")
        pick = starts + (rng.random(int(within.sum())) * (ends - starts)).astype(
            np.int64
        )
        dst[within] = order[pick]
    w = rng.uniform(0.5, 1.5, size=m) if weighted else None
    return src, dst, w


def temporal_drift(
    n_vertices: int,
    n_edges: int,
    n_classes: int,
    *,
    n_batches: int = 10,
    arrival_rate: float = 0.01,
    removal_rate: float = 0.01,
    drift_fraction: float = 0.0,
    within_fraction: float = 0.85,
    weighted: bool = False,
    seed: SeedLike = None,
) -> DriftScenario:
    """Generate an edge-churn schedule over a community-structured graph.

    The stand-in for a production graph that never sits still: an initial
    graph whose edges mostly stay inside ``n_classes`` planted communities,
    followed by ``n_batches`` mutation steps.  Each step removes
    ``removal_rate × current_E`` uniformly-sampled existing edge instances,
    adds ``arrival_rate × current_E`` fresh community-respecting edges, and
    (with ``drift_fraction > 0``) first migrates that fraction of vertices
    to a random other community — subsequent arrivals follow the *new*
    membership, which is what slowly invalidates a stale embedding.

    The schedule is internally consistent: removals are sampled from the
    edge multiset as it stands at that step, so replaying the batches
    through :class:`~repro.stream.dynamic.DynamicGraph` (``remove_edges`` +
    ``add_edges`` + ``commit`` per batch) is always legal.  Used by
    ``benchmarks/bench_stream.py`` and ``examples/streaming_drift.py``.
    """
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    if n_classes <= 0 or n_classes > n_vertices:
        raise ValueError("need 1 <= n_classes <= n_vertices")
    if n_batches < 0:
        raise ValueError("n_batches must be non-negative")
    if arrival_rate < 0 or removal_rate < 0:
        raise ValueError("arrival_rate and removal_rate must be non-negative")
    if not 0 <= drift_fraction <= 1:
        raise ValueError("drift_fraction must be in [0, 1]")
    if not 0 <= within_fraction <= 1:
        raise ValueError("within_fraction must be in [0, 1]")
    rng = _rng(seed)
    labels = rng.integers(0, n_classes, size=n_vertices).astype(np.int64)
    src, dst, w = _community_edges(
        rng, labels, int(n_edges), within_fraction=within_fraction, weighted=weighted
    )
    initial = EdgeList(src.copy(), dst.copy(), None if w is None else w.copy(),
                       n_vertices)
    initial_labels = labels.copy()

    batches: List[DriftBatch] = []
    for _ in range(n_batches):
        # Community drift first: later arrivals follow the new membership.
        relabelled = np.empty(0, dtype=np.int64)
        if drift_fraction > 0:
            moving = np.flatnonzero(rng.random(n_vertices) < drift_fraction)
            if moving.size and n_classes > 1:
                shift = rng.integers(1, n_classes, size=moving.size)
                labels[moving] = (labels[moving] + shift) % n_classes
                relabelled = moving
        current_e = src.size
        n_remove = min(int(round(removal_rate * current_e)), current_e)
        if n_remove:
            positions = rng.choice(current_e, size=n_remove, replace=False)
            rem_src, rem_dst = src[positions].copy(), dst[positions].copy()
            keep = np.ones(current_e, dtype=bool)
            keep[positions] = False
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]
        else:
            rem_src = rem_dst = np.empty(0, dtype=np.int64)
        n_add = int(round(arrival_rate * current_e))
        add_src, add_dst, add_w = _community_edges(
            rng, labels, n_add, within_fraction=within_fraction, weighted=weighted
        )
        src = np.concatenate((src, add_src))
        dst = np.concatenate((dst, add_dst))
        if w is not None:
            w = np.concatenate((w, add_w))
        batches.append(
            DriftBatch(
                add=EdgeList(add_src, add_dst, add_w, n_vertices),
                remove_src=rem_src,
                remove_dst=rem_dst,
                relabelled=relabelled,
            )
        )
    return DriftScenario(
        initial=initial,
        labels=initial_labels,
        batches=batches,
        final_labels=labels.copy(),
    )


def star_graph(n_leaves: int) -> EdgeList:
    """Star: vertex 0 connected to every leaf, both directions."""
    if n_leaves < 0:
        raise ValueError("n_leaves must be non-negative")
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    hub = np.zeros(n_leaves, dtype=np.int64)
    return EdgeList(
        np.concatenate([hub, leaves]),
        np.concatenate([leaves, hub]),
        None,
        n_leaves + 1,
    )


def path_graph(n_vertices: int) -> EdgeList:
    """Undirected path 0-1-2-...-(n-1) stored as two directed edges each."""
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    a = np.arange(n_vertices - 1, dtype=np.int64)
    b = a + 1
    return EdgeList(
        np.concatenate([a, b]), np.concatenate([b, a]), None, n_vertices
    )


def complete_graph(n_vertices: int) -> EdgeList:
    """Complete directed graph without self loops."""
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    src, dst = np.meshgrid(
        np.arange(n_vertices, dtype=np.int64), np.arange(n_vertices, dtype=np.int64), indexing="ij"
    )
    mask = src != dst
    return EdgeList(src[mask], dst[mask], None, n_vertices)
