"""Edge-list transformations used while preparing graphs for GEE.

These are the preprocessing steps a user of the paper's pipeline performs
before the timed embedding pass: symmetrising a directed edge list into the
"two symmetric directed graphs" form, removing duplicate edges or self
loops, compacting vertex ids, and extracting subgraphs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .edgelist import EdgeList

__all__ = [
    "symmetrize",
    "deduplicate",
    "remove_self_loops",
    "relabel_compact",
    "subgraph",
    "largest_connected_subgraph",
    "add_unit_weights",
    "normalize_weights",
]


def symmetrize(edges: EdgeList, *, coalesce: bool = False) -> EdgeList:
    """Return the undirected version of ``edges`` as two directed copies.

    The paper (§II) treats an undirected graph as two symmetric directed
    graphs; this helper produces exactly that representation.  With
    ``coalesce=True`` reciprocal duplicates created by the union are merged
    by summing their weights.
    """
    src = np.concatenate([edges.src, edges.dst])
    dst = np.concatenate([edges.dst, edges.src])
    w = np.concatenate([edges.effective_weights(), edges.effective_weights()])
    out = EdgeList(src, dst, w, edges.n_vertices)
    if coalesce:
        out = deduplicate(out, combine="sum")
    return out


def deduplicate(edges: EdgeList, *, combine: str = "sum") -> EdgeList:
    """Merge duplicate ``(src, dst)`` pairs.

    Parameters
    ----------
    combine:
        ``"sum"`` adds the weights of duplicates, ``"first"`` keeps the
        weight of the first occurrence, ``"max"`` keeps the largest weight.
    """
    if combine not in ("sum", "first", "max"):
        raise ValueError(f"unknown combine mode {combine!r}")
    if edges.n_edges == 0:
        return edges.copy()
    n = edges.n_vertices
    key = edges.src * n + edges.dst
    w = edges.effective_weights()
    if combine == "first":
        _, keep = np.unique(key, return_index=True)
        keep.sort()
        return EdgeList(edges.src[keep], edges.dst[keep], w[keep], n)
    uniq, inverse = np.unique(key, return_inverse=True)
    if combine == "sum":
        new_w = np.bincount(inverse, weights=w, minlength=uniq.size)
    else:  # max
        new_w = np.full(uniq.size, -np.inf)
        np.maximum.at(new_w, inverse, w)
    new_src = (uniq // n).astype(np.int64)
    new_dst = (uniq % n).astype(np.int64)
    return EdgeList(new_src, new_dst, new_w.astype(np.float64), n)


def remove_self_loops(edges: EdgeList) -> EdgeList:
    """Drop edges whose source and destination coincide."""
    keep = edges.src != edges.dst
    w = edges.weights[keep] if edges.weights is not None else None
    return EdgeList(edges.src[keep], edges.dst[keep], w, edges.n_vertices)


def relabel_compact(edges: EdgeList) -> Tuple[EdgeList, np.ndarray]:
    """Renumber vertices so only endpoints of edges get ids ``0..m-1``.

    Returns
    -------
    (new_edges, old_ids):
        ``old_ids[new_id]`` gives the original vertex id.  Vertices that do
        not appear in any edge are dropped.
    """
    if edges.n_edges == 0:
        return EdgeList(np.empty(0, np.int64), np.empty(0, np.int64), None, 0), np.empty(
            0, np.int64
        )
    old_ids = np.unique(np.concatenate([edges.src, edges.dst]))
    new_src = np.searchsorted(old_ids, edges.src)
    new_dst = np.searchsorted(old_ids, edges.dst)
    return (
        EdgeList(new_src, new_dst, edges.weights, old_ids.size),
        old_ids.astype(np.int64),
    )


def subgraph(edges: EdgeList, vertices: np.ndarray, *, relabel: bool = True) -> Tuple[EdgeList, np.ndarray]:
    """Extract the subgraph induced by ``vertices``.

    Returns the induced edge list and the array mapping new ids back to
    original ids (identity mapping if ``relabel=False``).
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    mask = np.zeros(edges.n_vertices, dtype=bool)
    mask[vertices] = True
    keep = mask[edges.src] & mask[edges.dst]
    w = edges.weights[keep] if edges.weights is not None else None
    sub = EdgeList(edges.src[keep], edges.dst[keep], w, edges.n_vertices)
    if not relabel:
        return sub, np.arange(edges.n_vertices, dtype=np.int64)
    mapping = -np.ones(edges.n_vertices, dtype=np.int64)
    mapping[vertices] = np.arange(vertices.size)
    new = EdgeList(mapping[sub.src], mapping[sub.dst], sub.weights, vertices.size)
    return new, vertices


def largest_connected_subgraph(edges: EdgeList) -> Tuple[EdgeList, np.ndarray]:
    """Return the subgraph induced by the largest weakly connected component."""
    from .properties import connected_components

    labels = connected_components(edges)
    if labels.size == 0:
        return edges.copy(), np.empty(0, np.int64)
    counts = np.bincount(labels)
    biggest = int(np.argmax(counts))
    vertices = np.flatnonzero(labels == biggest)
    return subgraph(edges, vertices)


def add_unit_weights(edges: EdgeList) -> EdgeList:
    """Materialise an explicit unit-weight array."""
    return EdgeList(edges.src, edges.dst, np.ones(edges.n_edges), edges.n_vertices)


def normalize_weights(edges: EdgeList, *, mode: str = "max") -> EdgeList:
    """Rescale edge weights.

    ``mode="max"`` divides by the maximum weight, ``mode="sum"`` by the sum,
    ``mode="mean"`` by the mean.  A graph with no edges or all-zero weights
    is returned unchanged.
    """
    if mode not in ("max", "sum", "mean"):
        raise ValueError(f"unknown normalisation mode {mode!r}")
    w = edges.effective_weights().copy()
    if w.size == 0:
        return edges.copy()
    denom = {"max": np.max(np.abs(w)), "sum": np.sum(np.abs(w)), "mean": np.mean(np.abs(w))}[mode]
    if denom == 0:
        return edges.copy()
    return edges.with_weights(w / denom)
