"""Graph substrate: edge lists, CSR adjacency, generators, IO and datasets."""

from .builders import (
    add_unit_weights,
    deduplicate,
    largest_connected_subgraph,
    normalize_weights,
    relabel_compact,
    remove_self_loops,
    subgraph,
    symmetrize,
)
from .csr import CSRGraph
from .datasets import (
    DatasetSpec,
    PAPER_GRAPHS,
    available_datasets,
    generate_labels,
    load,
    paper_table1_datasets,
)
from .edgelist import EdgeList
from .facade import Graph, GraphLike, as_edgelist, as_graph
from .generators import (
    complete_graph,
    configuration_power_law,
    erdos_renyi,
    path_graph,
    planted_partition,
    rmat,
    star_graph,
    stochastic_block_model,
)
from .io import (
    ChunkedEdgeSource,
    load_npz,
    read_snap_edgelist,
    save_chunked,
    save_npz,
    write_snap_edgelist,
)
from .properties import (
    GraphSummary,
    connected_components,
    degree_statistics,
    density,
    is_symmetric,
    n_connected_components,
    summarize,
)

__all__ = [
    "EdgeList",
    "CSRGraph",
    "Graph",
    "GraphLike",
    "as_graph",
    "as_edgelist",
    "symmetrize",
    "deduplicate",
    "remove_self_loops",
    "relabel_compact",
    "subgraph",
    "largest_connected_subgraph",
    "add_unit_weights",
    "normalize_weights",
    "erdos_renyi",
    "stochastic_block_model",
    "planted_partition",
    "rmat",
    "configuration_power_law",
    "star_graph",
    "path_graph",
    "complete_graph",
    "read_snap_edgelist",
    "write_snap_edgelist",
    "save_npz",
    "load_npz",
    "save_chunked",
    "ChunkedEdgeSource",
    "degree_statistics",
    "connected_components",
    "n_connected_components",
    "density",
    "is_symmetric",
    "GraphSummary",
    "summarize",
    "DatasetSpec",
    "PAPER_GRAPHS",
    "available_datasets",
    "load",
    "paper_table1_datasets",
    "generate_labels",
]
