"""The :class:`Graph` facade: one graph object, many cached views.

Every entry point of the library (the :class:`~repro.core.api.GraphEncoderEmbedding`
estimator, the functional GEE kernels, the Ligra engine and the experiment
drivers) accepts a *graph-like* input and funnels it through
:meth:`Graph.coerce`:

* a :class:`Graph` (returned unchanged, keeping its caches),
* an :class:`~repro.graph.edgelist.EdgeList`,
* a :class:`~repro.graph.csr.CSRGraph` (adopted as the CSR view, never
  rebuilt),
* an ``(s, 2)`` or ``(s, 3)`` NumPy array of ``(src, dst[, weight])`` rows,
* a ``(src, dst[, weights])`` tuple of arrays,
* any ``scipy.sparse`` square adjacency matrix.

The facade exists because the expensive derived structures — the CSR
adjacency, its transpose, degree vectors, the Laplacian-reweighted edge
list — used to be recomputed by every call that needed them.  ``Graph``
builds each view lazily on first access and caches it for the object's
lifetime, so an experiment that embeds the same graph with six backends
pays for each view once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .csr import CSRGraph
from .edgelist import EdgeList

__all__ = ["Graph", "GraphLike", "as_graph", "as_edgelist"]

#: The union of input types `Graph.coerce` understands.
GraphLike = Union["Graph", EdgeList, CSRGraph, np.ndarray, tuple]


class Graph:
    """A graph with lazily-built, cached derived views.

    Parameters
    ----------
    edges:
        The canonical edge-list representation.  May be omitted when ``csr``
        is given; the edge-list view is then built lazily on first access,
        so CSR-consuming code paths never pay for the ``O(s)`` expansion.
    csr:
        Optional prebuilt CSR adjacency for the same graph; adopted as the
        cached CSR view instead of being rebuilt on first access.
    """

    def __init__(
        self, edges: Optional[EdgeList] = None, *, csr: Optional[CSRGraph] = None
    ) -> None:
        if edges is None and csr is None:
            raise TypeError("Graph requires an EdgeList and/or a CSRGraph")
        if edges is not None and not isinstance(edges, EdgeList):
            raise TypeError(f"Graph wraps an EdgeList, got {type(edges)!r}")
        self._edges = edges
        self._csr: Optional[CSRGraph] = csr
        #: Whether a caller-supplied CSR is the source of truth (the edge
        #: list view is then a derived snapshot).
        self._adopted_csr = csr is not None
        self._reverse_csr: Optional[CSRGraph] = None
        self._laplacian: Optional["Graph"] = None
        self._out_degrees: Optional[np.ndarray] = None
        self._in_degrees: Optional[np.ndarray] = None
        self._weighted_degrees: Optional[np.ndarray] = None
        self._is_weighted: Optional[bool] = None
        #: K -> compiled EmbedPlan, or ("chunked", K, chunk_edges) ->
        #: compiled ChunkedPlan (see :meth:`plan`), oldest-first.
        self._plans: Dict[object, object] = {}
        #: Fingerprint of the edge data at the time the CSR view was built
        #: (see :meth:`plan` — detects mutations that happen between view
        #: construction and the first plan compilation).
        self._view_fingerprint = None
        #: Mutation-detection mode: ``"sampled"`` (O(1), best-effort for
        #: in-place edits) or ``"full"`` (O(s) digest, exact).  Sticky —
        #: set via ``plan(K, fingerprint="full")``.
        self._fingerprint_mode = "sampled"
        #: n_shards -> compiled ShardedGraph (see :meth:`shard`).
        self._sharded: Dict[int, object] = {}

    #: Cap on cached plans per graph (each holds two s-length flat-index
    #: arrays and an n*K buffer); oldest is evicted beyond this.
    _MAX_PLANS = 8

    # ------------------------------------------------------------------ #
    # Coercion
    # ------------------------------------------------------------------ #
    @classmethod
    def coerce(cls, obj: GraphLike, *, n_vertices: Optional[int] = None) -> "Graph":
        """Build a :class:`Graph` from any graph-like input.

        A ``Graph`` passes through unchanged (its caches are preserved); a
        ``CSRGraph`` is adopted as the CSR view without a rebuild.  Raises
        :class:`TypeError` for inputs that are not graph-like.
        """
        if isinstance(obj, cls):
            return obj
        if isinstance(obj, EdgeList):
            return cls(obj)
        if isinstance(obj, CSRGraph):
            return cls(csr=obj)
        if isinstance(obj, np.ndarray):
            return cls(EdgeList.from_array(obj, n_vertices=n_vertices))
        if _is_scipy_sparse(obj):
            return cls(_edgelist_from_scipy(obj))
        if isinstance(obj, tuple) and len(obj) in (2, 3):
            src, dst = obj[0], obj[1]
            weights = obj[2] if len(obj) == 3 else None
            return cls(EdgeList(src, dst, weights, n_vertices))
        from .io import ChunkedEdgeSource

        if isinstance(obj, ChunkedEdgeSource):
            raise TypeError(
                "a ChunkedEdgeSource cannot be coerced to an in-memory Graph "
                "(it may be larger than RAM); pass it directly to a chunk-aware "
                "backend's embed(), GraphEncoderEmbedding.fit(), or materialise "
                "it explicitly with source.to_edgelist()"
            )
        raise TypeError(
            "expected a graph-like input (Graph, EdgeList, CSRGraph, an (s, 2|3) "
            f"ndarray, a (src, dst[, weights]) tuple or a scipy.sparse matrix), "
            f"got {type(obj)!r}"
        )

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def edges(self) -> EdgeList:
        """The canonical edge-list view (built lazily from an adopted CSR)."""
        if self._edges is None:
            assert self._csr is not None
            self._edges = self._csr.to_edgelist()
            # Record what the adopted CSR looked like when this snapshot
            # was taken, so a later plan() can tell whether the CSR was
            # mutated in between.
            self._view_fingerprint = self.edge_data_fingerprint()
        return self._edges

    @property
    def n_vertices(self) -> int:
        """Number of vertices ``n``."""
        if self._edges is not None:
            return int(self._edges.n_vertices)
        assert self._csr is not None
        return self._csr.n_vertices

    @property
    def n_edges(self) -> int:
        """Number of directed edges ``s``."""
        if self._edges is not None:
            return self._edges.n_edges
        assert self._csr is not None
        return self._csr.n_edges

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries non-unit edge weights (cached).

        For CSR-adopted graphs the answer needs an O(s) scan of the weight
        column (CSR always materialises one; all-unit counts as
        unweighted), so it is computed once — per-call consumers like the
        auto backend's cost-model query must not re-pay it.
        """
        if self._is_weighted is None:
            if self._edges is not None:
                self._is_weighted = self._edges.is_weighted
            else:
                assert self._csr is not None
                self._is_weighted = not bool(np.all(self._csr.weights == 1.0))
        return self._is_weighted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cached = [
            name
            for name, slot in (
                ("csr", self._csr),
                ("reverse_csr", self._reverse_csr),
                ("laplacian", self._laplacian),
                ("degrees", self._out_degrees),
            )
            if slot is not None
        ]
        suffix = f", cached={cached}" if cached else ""
        return f"Graph(n={self.n_vertices}, s={self.n_edges}{suffix})"

    # ------------------------------------------------------------------ #
    # Cached views
    # ------------------------------------------------------------------ #
    @property
    def csr(self) -> CSRGraph:
        """The CSR out-adjacency (built once, then cached)."""
        if self._csr is None:
            self._csr = CSRGraph.from_edgelist(self._edges)
            # Record what the edges looked like when this view was built,
            # so a later plan() can tell whether they were mutated since.
            self._view_fingerprint = self.edge_data_fingerprint()
        return self._csr

    @property
    def reverse_csr(self) -> CSRGraph:
        """CSR over the reversed edges (shares the cached transpose arrays)."""
        if self._reverse_csr is None:
            csr = self.csr
            self._reverse_csr = CSRGraph(
                indptr=csr.in_indptr,
                indices=csr.in_indices,
                weights=csr.in_weights,
            )
        return self._reverse_csr

    @property
    def out_degrees(self) -> np.ndarray:
        """Unweighted out-degree of every vertex (cached)."""
        if self._out_degrees is None:
            if self._csr is not None:
                self._out_degrees = self._csr.out_degrees().astype(np.int64)
            else:
                self._out_degrees = self.edges.out_degrees()
        return self._out_degrees

    @property
    def in_degrees(self) -> np.ndarray:
        """Unweighted in-degree of every vertex (cached)."""
        if self._in_degrees is None:
            self._in_degrees = self.edges.in_degrees()
        return self._in_degrees

    @property
    def weighted_total_degrees(self) -> np.ndarray:
        """Weighted total (in + out) degree of every vertex (cached)."""
        if self._weighted_degrees is None:
            from ..core.laplacian import weighted_total_degrees

            self._weighted_degrees = weighted_total_degrees(self.edges)
        return self._weighted_degrees

    @property
    def laplacian(self) -> "Graph":
        """The Laplacian-reweighted graph (``w / sqrt(d_u d_v)``), cached.

        Reuses :attr:`weighted_total_degrees`, so asking for the Laplacian
        view repeatedly (e.g. across refinement iterations) reweights once.
        """
        if self._laplacian is None:
            from ..core.laplacian import laplacian_reweight

            self._laplacian = Graph(
                laplacian_reweight(self.edges, degrees=self.weighted_total_degrees)
            )
        return self._laplacian

    # ------------------------------------------------------------------ #
    # Compiled embed plans
    # ------------------------------------------------------------------ #
    def edge_data_fingerprint(self) -> Tuple:
        """Fingerprint of the edge source of truth, in the graph's mode.

        Samples (default) or fully digests (``fingerprint="full"`` was
        requested on :meth:`plan`) whichever representation is canonical:
        the adopted CSR for CSR-adopted graphs, the edge list otherwise.
        """
        from ..core.plan import (
            csr_fingerprint,
            csr_fingerprint_full,
            edge_fingerprint,
            edge_fingerprint_full,
        )

        full = self._fingerprint_mode == "full"
        # A CSR-adopted graph's edge list is a derived snapshot, so sampling
        # it would never see CSR mutations.
        if self._adopted_csr:
            return csr_fingerprint_full(self._csr) if full else csr_fingerprint(self._csr)
        return edge_fingerprint_full(self.edges) if full else edge_fingerprint(self.edges)

    def plan(
        self,
        n_classes: int,
        *,
        chunk_edges: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        fingerprint: Optional[str] = None,
        layout: Optional[str] = None,
    ):
        """The compiled :class:`~repro.core.plan.EmbedPlan` for ``K`` classes.

        The plan — validated edge arrays, ``u*K`` / ``v*K`` flat scatter
        indices, CSR/CSC adjacency views, degree vectors and a reusable
        output buffer — is built on first request and cached, so repeated
        ``embed_with_plan`` calls (backend sweeps, worker sweeps, the
        refinement loop) pay the label-independent work exactly once.

        A different ``K`` compiles a separate plan.  If the underlying edge
        arrays changed since compilation (detected via a sampled
        fingerprint — best-effort for in-place mutation, exact for array
        replacement), every cached view is dropped and the plan recompiled.

        With ``chunk_edges`` (a block length) or ``memory_budget_bytes`` (a
        cap on per-block temporaries) the compiled artifact is instead a
        :class:`~repro.core.plan.ChunkedPlan`: the edge pass then streams
        the edges in bounded blocks and compiles each block's scatter
        indices lazily, never materialising the O(E) flat-index arrays.
        Only backends whose capabilities declare ``supports_chunked``
        accept a chunked plan.

        ``fingerprint`` selects the mutation-detection mode and is sticky
        for the graph: ``"sampled"`` (the default — O(1), exact for array
        replacement, best-effort for in-place edits beyond ~32 edges) or
        ``"full"`` (an O(s) digest of every edge, exact for any content
        change).  Switching modes on a graph with cached plans drops them
        once (the fingerprints are not comparable across modes).

        ``layout`` selects the plan's memory layout: ``None``/``"none"``
        (the default — arrival order preserved, byte-identical to the
        historical behaviour), ``"sorted"`` / ``"blocked"`` (the
        locality-optimized fused incidence layouts, see
        :class:`~repro.core.plan.FusedLayout`; results equal the default
        layout up to floating-point summation order), or ``"auto"`` (the
        calibrated cost model picks — see :mod:`repro.tune`).  Each layout
        is a separate cached plan.  Chunked plans support ``"sorted"``
        (streamed incidence blocks) for in-memory sources only.
        """
        from ..core.plan import LAYOUTS, EmbedPlan

        k = int(n_classes)
        if layout is None:
            layout = "none"
        elif layout == "auto":
            from ..tune import auto_layout

            layout = auto_layout(
                self.n_vertices,
                self.n_edges,
                k,
                chunked=chunk_edges is not None or memory_budget_bytes is not None,
            )
        elif layout not in LAYOUTS:
            raise ValueError(
                f'layout must be one of {LAYOUTS + ("auto",)}, got {layout!r}'
            )
        if fingerprint is not None:
            if fingerprint not in ("sampled", "full"):
                raise ValueError(
                    f'fingerprint must be "sampled" or "full", got {fingerprint!r}'
                )
            self._fingerprint_mode = fingerprint
        fingerprint = self.edge_data_fingerprint()
        # A plan must never pair fresh edge arrays with stale derived
        # views.  The baseline fingerprint is whichever is older: the one
        # the cached plans were compiled under (a mismatch clears the lot),
        # or — before any plan exists — the one recorded when the CSR view
        # was built from the edges.
        baseline = None
        if self._plans:
            baseline = next(iter(self._plans.values())).fingerprint
        else:
            # Recorded when the CSR view (non-adopted) or the edge-list
            # snapshot (adopted CSR) was built — same fingerprint kind as
            # `fingerprint` in each case.
            baseline = self._view_fingerprint
        if baseline is not None and baseline != fingerprint:
            self.invalidate_cache()
        chunked = chunk_edges is not None or memory_budget_bytes is not None
        if chunked:
            from .io import ChunkedEdgeSource

            if layout == "blocked":
                raise ValueError(
                    'chunked plans support layout="sorted" (or the default '
                    '"none"); the blocked bucketing needs the whole edge set '
                    "in memory"
                )
            # Resolve the block length for the cache key WITHOUT building
            # the source: on a hit the (potentially O(E log E)) incidence
            # sort must never run.
            resolved_chunk = ChunkedEdgeSource._resolve_chunk_edges(
                memory_budget_bytes, chunk_edges
            )
            key = ("chunked", k, resolved_chunk, layout)
        else:
            # The bare-K key keeps the historical default plans (and every
            # pre-layout caller) hitting the same cache slot.
            key = k if layout == "none" else (k, layout)
        cached = self._plans.get(key)
        if cached is not None:
            obs_metrics.count("plan_cache.hits")
            return cached
        obs_metrics.count("plan_cache.misses")
        if len(self._plans) >= self._MAX_PLANS:
            # Drop the oldest plan (insertion order) — K sweeps beyond the
            # cap would otherwise pin one flat-index pair + buffer per K.
            self._plans.pop(next(iter(self._plans)))
        with obs_trace(
            "plan.compile",
            K=k,
            layout=layout,
            chunked=chunked,
            n_edges=self.n_edges,
        ):
            if chunked:
                from ..core.plan import ChunkedPlan

                if layout == "sorted":
                    from ..core.plan import sorted_incidence

                    edges = self.edges
                    owner, partner, w2 = sorted_incidence(
                        edges.src, edges.dst, edges.weights
                    )
                    source = ChunkedEdgeSource(
                        owner,
                        partner,
                        w2,
                        self.n_vertices,
                        chunk_edges=resolved_chunk,
                    )
                else:
                    source = ChunkedEdgeSource.from_edgelist(
                        self.edges, chunk_edges=resolved_chunk
                    )
                plan = ChunkedPlan(
                    source, k, graph=self, fingerprint=fingerprint, layout=layout
                )
            else:
                plan = EmbedPlan(self, k, fingerprint=fingerprint, layout=layout)
        self._plans[key] = plan
        return plan

    def shard(self, n_shards: int):
        """The compiled :class:`~repro.shard.ShardedGraph` for ``n_shards``.

        Like :meth:`plan`, the sharded view — the owner-sorted incidence
        sliced into degree-balanced contiguous owner ranges, each with its
        own per-shard embed plan and pinned worker affinity — is built on
        first request and cached per shard count, so repeated
        ``backend="sharded"`` embeds and shard-routed incremental patches
        pay the sort-and-slice compilation once.  ``n_shards`` is clamped
        to the vertex count; cached sharded views (and their worker pools
        and shared-memory segments) are released by
        :meth:`invalidate_cache`.
        """
        from ..shard import ShardedGraph

        requested = int(n_shards)
        if requested < 1:
            raise ValueError(f"n_shards={requested} must be at least 1")
        key = max(1, min(requested, self.n_vertices)) if self.n_vertices else 1
        sharded = self._sharded.get(key)
        if sharded is None:
            with obs_trace("shard.compile", n_shards=key, n_edges=self.n_edges):
                sharded = ShardedGraph(self, key)
            self._sharded[key] = sharded
        return sharded

    def invalidate_cache(self) -> None:
        """Drop every cached derived view and compiled plan.

        Call this after mutating the underlying edge arrays in place;
        :meth:`plan` also calls it when its fingerprint check detects a
        mutation.
        """
        if self._adopted_csr:
            # The adopted CSR is the source of truth: drop the derived
            # edge-list snapshot (it may predate a CSR mutation) and keep
            # the CSR itself — but reset its internal in-adjacency cache
            # and its shared-memory copy in the parallel kernel's cache,
            # both of which a mutation also staled.
            self._edges = None
            assert self._csr is not None
            self._csr._in_indptr = None
            self._csr._in_indices = None
            self._csr._in_weights = None
            self._csr._in_edge_pos = None
            from ..core.gee_parallel import evict_shared_graph

            evict_shared_graph(self._csr)
        else:
            if self._csr is not None:
                from ..core.gee_parallel import evict_shared_graph

                evict_shared_graph(self._csr)
            self._csr = None
        self._reverse_csr = None
        self._laplacian = None
        self._out_degrees = None
        self._in_degrees = None
        self._weighted_degrees = None
        self._is_weighted = None
        self._view_fingerprint = None
        self._plans.clear()
        for sharded in self._sharded.values():
            sharded.close()
        self._sharded.clear()

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_scipy(self):
        """The adjacency as a ``scipy.sparse.csr_matrix`` (via the CSR view)."""
        return self.csr.to_scipy()

    def cached_views(self) -> Tuple[str, ...]:
        """Names of the derived views built so far (introspection/tests)."""
        names = []
        if self._csr is not None:
            names.append("csr")
        if self._reverse_csr is not None:
            names.append("reverse_csr")
        if self._laplacian is not None:
            names.append("laplacian")
        if self._out_degrees is not None:
            names.append("out_degrees")
        if self._in_degrees is not None:
            names.append("in_degrees")
        if self._weighted_degrees is not None:
            names.append("weighted_total_degrees")
        return tuple(names)


def _is_scipy_sparse(obj) -> bool:
    try:
        import scipy.sparse as sp
    except ImportError:  # pragma: no cover - scipy is a hard dep in practice
        return False
    return sp.issparse(obj)


def _edgelist_from_scipy(matrix) -> EdgeList:
    """Convert a square scipy.sparse adjacency matrix to an edge list."""
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"adjacency matrix must be square, got shape {tuple(matrix.shape)}"
        )
    coo = matrix.tocoo()
    return EdgeList(
        src=np.asarray(coo.row, dtype=np.int64),
        dst=np.asarray(coo.col, dtype=np.int64),
        weights=np.asarray(coo.data, dtype=np.float64),
        n_vertices=int(matrix.shape[0]),
    )


def as_graph(obj: GraphLike, *, n_vertices: Optional[int] = None) -> Graph:
    """Alias for :meth:`Graph.coerce` (functional spelling)."""
    return Graph.coerce(obj, n_vertices=n_vertices)


def as_edgelist(obj: GraphLike, *, n_vertices: Optional[int] = None) -> EdgeList:
    """Coerce any graph-like input to an :class:`EdgeList`."""
    if isinstance(obj, EdgeList):
        return obj
    return Graph.coerce(obj, n_vertices=n_vertices).edges
