"""Graph input/output.

Three interchange formats are supported:

* SNAP-style whitespace-separated text edge lists (``# comment`` lines are
  skipped), the format of the repository the paper draws its graphs from.
* A compact ``.npz`` binary format for round-tripping generated graphs,
  which is what the benchmark harness caches its stand-in datasets in.
* A chunk-friendly on-disk store (a directory of plain ``.npy`` column
  files plus ``meta.json``) that :class:`ChunkedEdgeSource` memory-maps, so
  edge lists larger than RAM can feed the out-of-core embedding path
  without ever being materialised (see :func:`save_chunked`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from .edgelist import EdgeList

__all__ = [
    "read_snap_edgelist",
    "write_snap_edgelist",
    "save_npz",
    "load_npz",
    "save_chunked",
    "ChunkedEdgeSource",
    "CHUNK_BYTES_PER_EDGE",
]

PathLike = Union[str, os.PathLike]


def read_snap_edgelist(
    path: PathLike,
    *,
    weighted: bool = False,
    comments: str = "#",
    n_vertices: Optional[int] = None,
) -> EdgeList:
    """Read a SNAP-style text edge list.

    Each non-comment line holds ``src dst`` or ``src dst weight`` separated
    by whitespace.  Lines starting with ``comments`` are ignored.
    """
    path = Path(path)
    srcs, dsts, weights = [], [], []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected at least two columns, got {line!r}")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if weighted:
                if len(parts) < 3:
                    raise ValueError(f"{path}:{lineno}: weighted=True but no weight column")
                weights.append(float(parts[2]))
    w = np.asarray(weights, dtype=np.float64) if weighted else None
    return EdgeList(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        w,
        n_vertices,
    )


def write_snap_edgelist(edges: EdgeList, path: PathLike, *, header: bool = True) -> None:
    """Write an edge list in SNAP text format.

    Weights are written as a third column only when the edge list is
    weighted, so an unweighted graph round-trips byte-compatibly with SNAP
    downloads.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# Nodes: {edges.n_vertices} Edges: {edges.n_edges}\n")
            fh.write("# FromNodeId\tToNodeId" + ("\tWeight" if edges.is_weighted else "") + "\n")
        if edges.is_weighted:
            for u, v, w in zip(edges.src, edges.dst, edges.weights):
                fh.write(f"{u}\t{v}\t{w:.10g}\n")
        else:
            for u, v in zip(edges.src, edges.dst):
                fh.write(f"{u}\t{v}\n")


def save_npz(edges: EdgeList, path: PathLike) -> None:
    """Save an edge list to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "src": edges.src,
        "dst": edges.dst,
        "n_vertices": np.asarray([edges.n_vertices], dtype=np.int64),
    }
    if edges.weights is not None:
        payload["weights"] = edges.weights
    np.savez_compressed(path, **payload)


def load_npz(path: PathLike) -> EdgeList:
    """Load an edge list previously written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        weights = data["weights"] if "weights" in data.files else None
        return EdgeList(
            data["src"],
            data["dst"],
            weights,
            int(data["n_vertices"][0]),
        )


# --------------------------------------------------------------------------- #
# Out-of-core chunked edge store
# --------------------------------------------------------------------------- #

#: Conservative per-edge working-set estimate for one chunked edge pass, in
#: bytes: the chunk triple itself (src + dst + weights, 24 B), the two
#: lazily-compiled flat scatter-index arrays (16 B), the gathered label /
#: known-mask / contribution temporaries of both edge directions (~66 B),
#: rounded up to absorb allocator slack.  ``memory_budget_bytes`` divided by
#: this is the largest chunk the budget admits.
CHUNK_BYTES_PER_EDGE = 128

_META_FILENAME = "meta.json"
_STORE_FORMAT = "repro-edges-v1"


def save_chunked(edges, path: PathLike, *, chunk_edges: int = 1 << 20) -> Path:
    """Write an edge list to the memory-mappable chunked store format.

    The store is a directory holding one plain ``.npy`` file per column
    (``src.npy``, ``dst.npy`` and, for weighted graphs, ``weights.npy``)
    plus a ``meta.json`` with the vertex/edge counts.  Plain ``.npy`` is
    what ``np.load(..., mmap_mode="r")`` maps without any decompression, so
    readers touch only the pages of the chunks they stream.

    ``edges`` may be an :class:`EdgeList` or another
    :class:`ChunkedEdgeSource` — the latter is copied chunk-by-chunk
    (``chunk_edges`` rows at a time), so converting a larger-than-RAM store
    never materialises it.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    if isinstance(edges, EdgeList):
        edges = ChunkedEdgeSource.from_edgelist(edges, chunk_edges=chunk_edges)
    elif isinstance(edges, ChunkedEdgeSource):
        # Copy at the *requested* granularity, not the source's own.
        edges = edges.reblocked(chunk_edges=chunk_edges)
    else:
        raise TypeError(
            f"save_chunked expects an EdgeList or ChunkedEdgeSource, got {type(edges)!r}"
        )
    s = edges.n_edges
    columns = [("src.npy", np.int64), ("dst.npy", np.int64)]
    if edges.is_weighted:
        columns.append(("weights.npy", np.float64))
    mmaps = [
        np.lib.format.open_memmap(path / name, mode="w+", dtype=dtype, shape=(s,))
        for name, dtype in columns
    ]
    lo = 0
    for src, dst, w in edges.iter_chunks():
        hi = lo + src.size
        mmaps[0][lo:hi] = src
        mmaps[1][lo:hi] = dst
        if edges.is_weighted:
            mmaps[2][lo:hi] = w
        lo = hi
    for mm in mmaps:
        mm.flush()
        del mm
    meta = {
        "format": _STORE_FORMAT,
        "n_vertices": int(edges.n_vertices),
        "n_edges": int(s),
        "weighted": bool(edges.is_weighted),
    }
    with (path / _META_FILENAME).open("w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2)
        fh.write("\n")
    return path


class ChunkedEdgeSource:
    """A bounded-memory, restartable stream of ``(src, dst, w)`` edge blocks.

    The source abstracts *where the edges live* — a memory-mapped on-disk
    store (:meth:`open`, nothing resident beyond the pages of the current
    chunk) or in-memory arrays (:meth:`from_edgelist`) — behind one
    iteration contract: :meth:`iter_chunks` yields consecutive blocks of at
    most :attr:`chunk_edges` edges, each a ``(src, dst, weights)`` triple of
    ``int64``/``int64``/``float64`` arrays.  Scatter-add is associative, so
    any consumer that accumulates per-block contributions computes exactly
    the sums of the one-shot pass.

    The chunk size comes from exactly one of two knobs:

    * ``memory_budget_bytes`` — a cap on the per-chunk working set of the
      embedding kernels; the chunk size is the budget divided by the
      conservative :data:`CHUNK_BYTES_PER_EDGE` estimate (at least 1);
    * ``chunk_edges`` — the block length, directly.

    Neither given defaults to a 64 MiB budget.
    """

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray],
        n_vertices: int,
        *,
        memory_budget_bytes: Optional[int] = None,
        chunk_edges: Optional[int] = None,
        path: Optional[Path] = None,
    ) -> None:
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if weights is not None and weights.shape != src.shape:
            raise ValueError(
                f"weights length {weights.size} does not match edge count {src.size}"
            )
        self._src = src
        self._dst = dst
        self._weights = weights
        self.n_vertices = int(n_vertices)
        if self.n_vertices <= 0:
            raise ValueError("ChunkedEdgeSource requires at least one vertex")
        #: Path of the backing on-disk store (None for in-memory sources).
        self.path = path
        self.memory_budget_bytes = (
            None if memory_budget_bytes is None else int(memory_budget_bytes)
        )
        self.chunk_edges = self._resolve_chunk_edges(
            self.memory_budget_bytes, chunk_edges
        )

    @staticmethod
    def _resolve_chunk_edges(
        memory_budget_bytes: Optional[int], chunk_edges: Optional[int]
    ) -> int:
        if memory_budget_bytes is not None and chunk_edges is not None:
            raise ValueError(
                "pass either memory_budget_bytes or chunk_edges, not both"
            )
        if chunk_edges is not None:
            if chunk_edges <= 0:
                raise ValueError("chunk_edges must be positive")
            return int(chunk_edges)
        budget = 64 << 20 if memory_budget_bytes is None else memory_budget_bytes
        if budget <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        return max(1, budget // CHUNK_BYTES_PER_EDGE)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        path: PathLike,
        *,
        memory_budget_bytes: Optional[int] = None,
        chunk_edges: Optional[int] = None,
    ) -> "ChunkedEdgeSource":
        """Memory-map a store written by :func:`save_chunked`.

        The column files are mapped read-only (``np.load`` with
        ``mmap_mode="r"``); no edge data is read until chunks are iterated,
        and the OS page cache — not this process — owns residency.
        """
        path = Path(path)
        meta_path = path / _META_FILENAME
        if not meta_path.is_file():
            raise FileNotFoundError(
                f"{path} is not a chunked edge store (missing {_META_FILENAME})"
            )
        with meta_path.open("r", encoding="utf-8") as fh:
            meta = json.load(fh)
        if meta.get("format") != _STORE_FORMAT:
            raise ValueError(
                f"{path}: unsupported store format {meta.get('format')!r} "
                f"(expected {_STORE_FORMAT!r})"
            )
        src = np.load(path / "src.npy", mmap_mode="r")
        dst = np.load(path / "dst.npy", mmap_mode="r")
        weights = (
            np.load(path / "weights.npy", mmap_mode="r") if meta["weighted"] else None
        )
        if src.size != meta["n_edges"]:
            raise ValueError(
                f"{path}: src.npy holds {src.size} edges but meta.json says "
                f"{meta['n_edges']}"
            )
        return cls(
            src,
            dst,
            weights,
            meta["n_vertices"],
            memory_budget_bytes=memory_budget_bytes,
            chunk_edges=chunk_edges,
            path=path,
        )

    @classmethod
    def from_edgelist(
        cls,
        edges: EdgeList,
        *,
        memory_budget_bytes: Optional[int] = None,
        chunk_edges: Optional[int] = None,
    ) -> "ChunkedEdgeSource":
        """Wrap an in-memory :class:`EdgeList` (no copy) as a chunked source.

        Useful to bound the *temporary* working set of an embed on a graph
        that itself fits in RAM, and as the uniform input the conformance
        tests drive every chunk consumer with.
        """
        return cls(
            edges.src,
            edges.dst,
            edges.weights,
            edges.n_vertices,
            memory_budget_bytes=memory_budget_bytes,
            chunk_edges=chunk_edges,
        )

    def reblocked(
        self,
        *,
        memory_budget_bytes: Optional[int] = None,
        chunk_edges: Optional[int] = None,
    ) -> "ChunkedEdgeSource":
        """The same source re-blocked by either sizing knob (no copy)."""
        return ChunkedEdgeSource(
            self._src,
            self._dst,
            self._weights,
            self.n_vertices,
            memory_budget_bytes=memory_budget_bytes,
            chunk_edges=chunk_edges,
            path=self.path,
        )

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        """Number of directed edges ``s``."""
        return int(self._src.size)

    @property
    def is_weighted(self) -> bool:
        """Whether an explicit weight column is attached."""
        return self._weights is not None

    @property
    def src(self) -> np.ndarray:
        """The backing source column (an ``np.memmap`` for on-disk stores)."""
        return self._src

    @property
    def dst(self) -> np.ndarray:
        """The backing destination column (an ``np.memmap`` for on-disk stores)."""
        return self._dst

    @property
    def weights(self) -> Optional[np.ndarray]:
        """The backing weight column, or ``None`` for unweighted sources."""
        return self._weights

    @property
    def n_chunks(self) -> int:
        """Number of blocks :meth:`iter_chunks` yields."""
        return -(-self.n_edges // self.chunk_edges) if self.n_edges else 0

    def chunk_bounds(self) -> List[Tuple[int, int]]:
        """The ``[lo, hi)`` edge range of every chunk, in order."""
        step = self.chunk_edges
        return [
            (lo, min(lo + step, self.n_edges)) for lo in range(0, self.n_edges, step)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted" if self.is_weighted else "unweighted"
        where = f", path={str(self.path)!r}" if self.path is not None else ""
        return (
            f"ChunkedEdgeSource(n={self.n_vertices}, s={self.n_edges}, {kind}, "
            f"chunk_edges={self.chunk_edges}{where})"
        )

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def iter_chunks(
        self, chunk_lo: int = 0, chunk_hi: Optional[int] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(src, dst, weights)`` blocks of at most ``chunk_edges`` edges.

        ``chunk_lo``/``chunk_hi`` select a sub-range of chunk indices (used
        by the parallel backend to hand each worker a contiguous slab).
        Endpoint ids are validated per block — O(chunk) work, never O(E) —
        and unweighted sources materialise a unit-weight block, so consumers
        always see a ``float64`` weight array.
        """
        bounds = self.chunk_bounds()[chunk_lo:chunk_hi]
        n = self.n_vertices
        for lo, hi in bounds:
            src = np.asarray(self._src[lo:hi], dtype=np.int64)
            dst = np.asarray(self._dst[lo:hi], dtype=np.int64)
            if src.size and (
                min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n
            ):
                raise ValueError(
                    f"edge chunk [{lo}:{hi}) holds endpoint ids outside "
                    f"[0, {n}); the store's meta.json n_vertices is wrong "
                    "or the edge data is corrupt"
                )
            if self._weights is not None:
                w = np.asarray(self._weights[lo:hi], dtype=np.float64)
            else:
                w = np.ones(src.size, dtype=np.float64)
            yield src, dst, w

    # ------------------------------------------------------------------ #
    # Materialisation (requires the edges to fit in RAM)
    # ------------------------------------------------------------------ #
    def to_edgelist(self) -> EdgeList:
        """Materialise the whole source as an in-memory :class:`EdgeList`.

        Only sensible when the edge set fits in memory — this is the escape
        hatch tests and non-chunked consumers use, never the embedding path.
        """
        return EdgeList(
            np.asarray(self._src, dtype=np.int64).copy(),
            np.asarray(self._dst, dtype=np.int64).copy(),
            None
            if self._weights is None
            else np.asarray(self._weights, dtype=np.float64).copy(),
            self.n_vertices,
        )
