"""Graph input/output.

Two interchange formats are supported:

* SNAP-style whitespace-separated text edge lists (``# comment`` lines are
  skipped), the format of the repository the paper draws its graphs from.
* A compact ``.npz`` binary format for round-tripping generated graphs,
  which is what the benchmark harness caches its stand-in datasets in.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .edgelist import EdgeList

__all__ = [
    "read_snap_edgelist",
    "write_snap_edgelist",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, os.PathLike]


def read_snap_edgelist(
    path: PathLike,
    *,
    weighted: bool = False,
    comments: str = "#",
    n_vertices: Optional[int] = None,
) -> EdgeList:
    """Read a SNAP-style text edge list.

    Each non-comment line holds ``src dst`` or ``src dst weight`` separated
    by whitespace.  Lines starting with ``comments`` are ignored.
    """
    path = Path(path)
    srcs, dsts, weights = [], [], []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected at least two columns, got {line!r}")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if weighted:
                if len(parts) < 3:
                    raise ValueError(f"{path}:{lineno}: weighted=True but no weight column")
                weights.append(float(parts[2]))
    w = np.asarray(weights, dtype=np.float64) if weighted else None
    return EdgeList(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        w,
        n_vertices,
    )


def write_snap_edgelist(edges: EdgeList, path: PathLike, *, header: bool = True) -> None:
    """Write an edge list in SNAP text format.

    Weights are written as a third column only when the edge list is
    weighted, so an unweighted graph round-trips byte-compatibly with SNAP
    downloads.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# Nodes: {edges.n_vertices} Edges: {edges.n_edges}\n")
            fh.write("# FromNodeId\tToNodeId" + ("\tWeight" if edges.is_weighted else "") + "\n")
        if edges.is_weighted:
            for u, v, w in zip(edges.src, edges.dst, edges.weights):
                fh.write(f"{u}\t{v}\t{w:.10g}\n")
        else:
            for u, v in zip(edges.src, edges.dst):
                fh.write(f"{u}\t{v}\n")


def save_npz(edges: EdgeList, path: PathLike) -> None:
    """Save an edge list to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "src": edges.src,
        "dst": edges.dst,
        "n_vertices": np.asarray([edges.n_vertices], dtype=np.int64),
    }
    if edges.weights is not None:
        payload["weights"] = edges.weights
    np.savez_compressed(path, **payload)


def load_npz(path: PathLike) -> EdgeList:
    """Load an edge list previously written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        weights = data["weights"] if "weights" in data.files else None
        return EdgeList(
            data["src"],
            data["dst"],
            weights,
            int(data["n_vertices"][0]),
        )
