"""Vectorised GEE: the compiled-serial baseline (the paper's Numba column).

The paper's second baseline compiles the edge loop with Numba, obtaining a
30–50× speedup over interpreted Python by removing per-edge interpreter
overhead while staying on one core.  Numba is not available offline, so the
same role is filled by a fully vectorised NumPy formulation:

The two updates per edge (Algorithm 1, lines 10–11)::

    Z[u, Y[v]] += W[v, Y[v]] * w      (for edges with Y[v] known)
    Z[v, Y[u]] += W[u, Y[u]] * w      (for edges with Y[u] known)

are scatter-adds into the flattened ``n×K`` embedding at flat indices
``u*K + Y[v]`` and ``v*K + Y[u]``; ``numpy.bincount`` with weights performs
the whole pass in two calls with no Python-level loop.  The result is
bit-wise reproducible and (like Numba) single-threaded, so it slots into
Table I's "Numba Serial" column.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..analysis.annotations import hot_path
from ..graph.edgelist import EdgeList
from .projection import projection_from_scales, projection_scales
from .result import EmbeddingResult
from .validation import UNKNOWN_LABEL, validate_edges, validate_labels

__all__ = [
    "gee_vectorized",
    "gee_vectorized_with_plan",
    "gee_vectorized_chunked",
    "gee_fused_with_plan",
    "accumulate_edges_vectorized",
    "accumulate_chunked_plan",
    "accumulate_fused",
    "accumulate_fused_rows_sorted",
    "class_rescale",
    "patch_sums_vectorized",
    "scatter_add",
]

#: Below this fill ratio (updates per output slot) the sparse scatter path
#: is cheaper than a dense ``bincount`` over the whole output.  Tuned with
#: ``benchmarks/bench_ablation_scatter.py``: on a 2M-slot output the
#: ``np.unique`` path wins only below ~2–3 % fill (0.3 ms vs 2.0 ms at
#: 0.5 %, break-even near 3 %, 3× *slower* by 10 %); the previous 0.25
#: threshold sent the common 5–25 % regime down the slow sorting path.  A
#: sort-free "compact the touched slots, bincount the compacted indices"
#: variant was benchmarked as the replacement candidate and lost to dense
#: ``bincount`` at every fill ratio (the O(out) mask/cumsum pass costs more
#: than bincount's single O(out+m) sweep), so the unique path stays for the
#: very-sparse regime.
_SPARSE_THRESHOLD = 0.03


@hot_path(reason="the scatter primitive every embed/patch call funnels through")
def scatter_add(out_flat: np.ndarray, flat_idx: np.ndarray, weights: np.ndarray) -> None:
    """``out_flat[flat_idx] += weights`` with duplicate indices summed.

    Two strategies, chosen by fill ratio:

    * dense — one ``np.bincount`` over the whole output; best when more
      than ~3 % of output slots receive updates (see ``_SPARSE_THRESHOLD``);
    * sparse — aggregate duplicates with ``np.unique`` and update only the
      touched slots; best when very few slots are hit.

    Both are exact; only the summation order (and hence the last bits of
    floating-point rounding) can differ.
    """
    if flat_idx.size == 0:
        return
    if flat_idx.size >= _SPARSE_THRESHOLD * out_flat.size:
        out_flat += np.bincount(flat_idx, weights=weights, minlength=out_flat.size)
    else:
        uniq, inverse = np.unique(flat_idx, return_inverse=True)
        sums = np.bincount(inverse, weights=weights)
        out_flat[uniq] += sums


@hot_path(reason="shared per-edge accumulation kernel (vectorised/Ligra/parallel)")
def accumulate_edges_vectorized(
    Z_flat: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    scales: Optional[np.ndarray],
    n_classes: int,
) -> None:
    """Accumulate the GEE contribution of a batch of edges into ``Z_flat``.

    ``Z_flat`` is the flattened ``(n*K,)`` view of the embedding.  This is
    the single kernel shared by the vectorised implementation, the
    Ligra batch function and the parallel workers, so all of them compute
    exactly the same per-edge contributions.

    ``scales=None`` means unit scales (the O(Δ) patch kernel's regime):
    contributions are the raw edge weights, with no per-vertex gather and
    no materialised ones vector.
    """
    y_dst = labels[dst]
    known = y_dst != UNKNOWN_LABEL
    if np.any(known):
        flat = src[known] * n_classes + y_dst[known]
        contrib = weights[known] if scales is None else scales[dst[known]] * weights[known]
        scatter_add(Z_flat, flat, contrib)
    y_src = labels[src]
    known = y_src != UNKNOWN_LABEL
    if np.any(known):
        flat = dst[known] * n_classes + y_src[known]
        contrib = weights[known] if scales is None else scales[src[known]] * weights[known]
        scatter_add(Z_flat, flat, contrib)


@hot_path(reason="O(Δ) incremental patch kernel")
def patch_sums_vectorized(
    S_flat: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    delta_w: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
) -> None:
    """Apply a signed edge delta to flat raw per-class sums, in place.

    The vectorised O(Δ) patch kernel behind the ``supports_incremental``
    capability: raw sums are the unit-scale special case of the shared edge
    pass (``S[u, Y[v]] += Δw`` is ``accumulate_edges_vectorized`` with
    ``scales=None``), so the patch reuses the exact kernel the full embeds
    run and the incremental trajectory stays bit-compatible with it — and
    allocates nothing of size n (the old unit-scale ones vector cost an
    O(n) allocation per O(Δ) patch).
    """
    accumulate_edges_vectorized(S_flat, src, dst, delta_w, labels, None, n_classes)


# --------------------------------------------------------------------------- #
# Locality-optimized segment-sum kernels (FusedLayout consumers)
# --------------------------------------------------------------------------- #
@hot_path(reason="block-local segment-sum scatter of the fused layouts")
def _block_scatter(
    out_flat: np.ndarray,
    flat: np.ndarray,
    weights: Optional[np.ndarray],
    flat_bounds: np.ndarray,
    cuts: np.ndarray,
    accumulate: bool,
) -> None:
    """Scatter ``flat``/``weights`` into ``out_flat`` one row block at a time.

    ``flat_bounds[i]:flat_bounds[i+1]`` is block ``i``'s output slice (sized
    to stay L2-resident) and ``cuts[i]:cuts[i+1]`` its incidence slice; each
    block runs one *local* ``np.bincount`` whose output is block-sized, so
    the scatter never allocates an ``(n*K,)`` temporary and its writes stay
    inside the cache-resident slice.  ``accumulate=False`` assigns the block
    sums into ``out_flat`` directly (zeroing empty blocks), which also skips
    the full-output zero-fill and read-modify-write passes a global
    ``out += bincount(...)`` would cost.
    """
    for i in range(len(cuts) - 1):
        lo, hi = int(cuts[i]), int(cuts[i + 1])
        base, top = int(flat_bounds[i]), int(flat_bounds[i + 1])
        if lo == hi:
            if not accumulate:
                out_flat[base:top] = 0.0
            continue
        block = np.bincount(
            flat[lo:hi] - base,
            weights=None if weights is None else weights[lo:hi],
            minlength=top - base,
        )
        if accumulate:
            out_flat[base:top] += block
        else:
            out_flat[base:top] = block


@hot_path(reason="locality-optimized fused edge pass")
def accumulate_fused(
    out_flat: np.ndarray,
    fused,
    y_idx: np.ndarray,
    *,
    fully_labelled: bool,
    accumulate: bool = False,
) -> None:
    """Raw per-class sums of a :class:`~repro.core.plan.FusedLayout`, in place.

    One pass over the ``2E`` permuted incidences: gather ``Y[partner]``, add
    it to the precompiled ``owner*K`` flat components and run the block-local
    segment sums (:func:`_block_scatter`).  The per-edge projection scale is
    *not* applied here — the caller rescales columns once afterwards
    (:func:`class_rescale`), which is exact because ``scale[v]`` depends only
    on ``Y[v]``, the very column the contribution lands in.

    ``y_idx`` must already be cast to ``fused.index_dtype`` so the flat-index
    arithmetic stays in the narrowed dtype.  Unknown labels are dropped by
    compaction (sorted layout — the compacted flats stay monotone) or by
    zero-weighting (blocked layout — compaction would break the bucket
    boundaries).
    """
    if fused.n_incidences == 0:
        if not accumulate:
            out_flat.fill(0.0)
        return
    yp = y_idx[fused.partner]
    w2 = fused.weights
    if fully_labelled:
        flat = fused.owner_flat + yp
        wts = w2
        cuts = fused.edge_cuts
    elif fused.layout == "sorted":
        known = yp != UNKNOWN_LABEL
        flat = fused.owner_flat[known] + yp[known]
        wts = None if w2 is None else w2[known]
        cuts = np.searchsorted(flat, fused.flat_cuts)
    else:
        known = yp != UNKNOWN_LABEL
        wts = known.astype(np.float64) if w2 is None else w2 * known
        flat = fused.owner_flat + np.maximum(yp, 0)
        cuts = fused.edge_cuts
    _block_scatter(out_flat, flat, wts, fused.flat_cuts, cuts, accumulate)


@hot_path(reason="owner-computes fused kernel run by every parallel worker")
def accumulate_fused_rows_sorted(
    out_flat: np.ndarray,
    owner_flat: np.ndarray,
    partner: np.ndarray,
    weights: Optional[np.ndarray],
    y_idx: np.ndarray,
    n_classes: int,
    rows_per_block: int,
    row_lo: int,
    row_hi: int,
    *,
    fully_labelled: bool,
) -> None:
    """Raw sums for rows ``row_lo:row_hi`` of a *sorted* fused layout.

    The owner-computes variant behind the fused parallel path: the sorted
    incidence arrays locate any row range with two binary searches, so each
    worker processes exactly the incidences owned by its rows and writes
    only its slice of ``out_flat`` — no atomics, no reduction.  Works on raw
    arrays (shared-memory views included) rather than a
    :class:`FusedLayout` object.
    """
    k = int(n_classes)
    if row_hi <= row_lo:
        return
    lo = int(np.searchsorted(owner_flat, row_lo * k))
    hi = int(np.searchsorted(owner_flat, row_hi * k))
    row_bounds = np.arange(row_lo, row_hi, int(rows_per_block), dtype=np.int64)
    row_bounds = np.append(row_bounds, row_hi)
    flat_bounds = row_bounds * k
    of = owner_flat[lo:hi]
    yp = y_idx[partner[lo:hi]]
    w2 = None if weights is None else weights[lo:hi]
    if fully_labelled:
        flat = of + yp
        wts = w2
    else:
        known = yp != UNKNOWN_LABEL
        flat = of[known] + yp[known]
        wts = None if w2 is None else w2[known]
    cuts = np.searchsorted(flat, flat_bounds)
    _block_scatter(out_flat, flat, wts, flat_bounds, cuts, accumulate=False)


def class_rescale(Z: np.ndarray, labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Apply ``Z = S · diag(1/n_c)`` in place; returns the inverse counts.

    The column-wise counterpart of the per-vertex projection scales: column
    ``c`` of the raw sums is divided by the size of class ``c`` (columns of
    empty classes receive no contributions and stay zero).
    """
    from .validation import class_counts, inverse_class_counts

    inv = inverse_class_counts(class_counts(labels, n_classes))
    Z *= inv[None, :]
    return inv


def gee_fused_with_plan(plan, labels: np.ndarray) -> EmbeddingResult:
    """Vectorised GEE through a plan's locality-optimized fused layout.

    The layout-plan counterpart of :func:`gee_vectorized_with_plan`
    (dispatched when ``plan.layout != "none"``): the scatter runs the
    block-local segment-sum kernel over the compiled incidence arrays and
    writes straight into the plan's reused output buffer — per call the
    only temporaries are the O(2E) gathered/compacted index and weight
    arrays plus one L2-sized block at a time, never a fresh ``(n*K,)``
    output.  Same buffer-reuse contract as every plan kernel
    (``EmbeddingResult.detached`` copies a result out).
    """
    y = plan.validate_labels(labels)
    k = plan.n_classes
    fused = plan.fused

    t0 = time.perf_counter()
    fully = bool(y.size) and int(y.min()) != UNKNOWN_LABEL
    y_idx = y.astype(fused.index_dtype, copy=False)
    t1 = time.perf_counter()

    Z = plan.output_matrix()
    accumulate_fused(Z.reshape(-1), fused, y_idx, fully_labelled=fully)
    class_rescale(Z, y, k)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(
            y, projection_scales(y, k), k
        ),
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-vectorized",
        n_workers=1,
        buffer_view=True,
        layout=fused.layout,
    )


def gee_vectorized(
    edges: EdgeList,
    labels: np.ndarray,
    n_classes: Optional[int] = None,
    *,
    chunk_edges: Optional[int] = None,
) -> EmbeddingResult:
    """One-Hot Graph Encoder Embedding, vectorised single-core implementation.

    Parameters
    ----------
    edges, labels, n_classes:
        As in :func:`repro.core.gee_python.gee_python`.
    chunk_edges:
        Process the edge list in chunks of this many edges (bounds the size
        of the temporary index arrays; ``None`` processes everything in one
        shot).  Results are identical either way.
    """
    edges = validate_edges(edges)
    y, k = validate_labels(labels, edges.n_vertices, n_classes)
    n = edges.n_vertices

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    W = projection_from_scales(y, scales, k)
    t1 = time.perf_counter()

    Z_flat = np.zeros(n * k, dtype=np.float64)
    src, dst, w = edges.src, edges.dst, edges.effective_weights()
    if chunk_edges is None or chunk_edges >= edges.n_edges:
        accumulate_edges_vectorized(Z_flat, src, dst, w, y, scales, k)
    else:
        if chunk_edges <= 0:
            raise ValueError("chunk_edges must be positive")
        for lo in range(0, edges.n_edges, chunk_edges):
            hi = min(lo + chunk_edges, edges.n_edges)
            accumulate_edges_vectorized(
                Z_flat, src[lo:hi], dst[lo:hi], w[lo:hi], y, scales, k
            )
    Z = Z_flat.reshape(n, k)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection=W,
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-vectorized",
        n_workers=1,
    )


@hot_path(reason="plan-reuse edge pass (the per-call path of embed_with_plan)")
def _accumulate_with_plan(
    Z_flat: np.ndarray, plan, y: np.ndarray, scales: np.ndarray
) -> None:
    """The edge pass using a plan's precomputed flat-index components.

    ``flat = src*K + Y[dst]`` becomes one add on the precompiled ``src*K``
    array; when every vertex is labelled (the refinement loop's regime) the
    known-label masks are skipped entirely, saving six O(s) boolean-gather
    copies per call.
    """
    y_dst = y[plan.dst]
    y_src = y[plan.src]
    if y.size == 0 or y.min() != UNKNOWN_LABEL:
        # Fully labelled: no masking, use the precompiled components as-is.
        scatter_add(Z_flat, plan.src_flat + y_dst, scales[plan.dst] * plan.weights)
        scatter_add(Z_flat, plan.dst_flat + y_src, scales[plan.src] * plan.weights)
        return
    known = y_dst != UNKNOWN_LABEL
    if np.any(known):
        scatter_add(
            Z_flat,
            plan.src_flat[known] + y_dst[known],
            scales[plan.dst[known]] * plan.weights[known],
        )
    known = y_src != UNKNOWN_LABEL
    if np.any(known):
        scatter_add(
            Z_flat,
            plan.dst_flat[known] + y_src[known],
            scales[plan.src[known]] * plan.weights[known],
        )


@hot_path(reason="bounded-memory chunked edge pass")
def accumulate_chunked_plan(
    Z_flat: np.ndarray,
    plan,
    y: np.ndarray,
    scales: np.ndarray,
    chunk_lo: int = 0,
    chunk_hi: Optional[int] = None,
) -> None:
    """The edge pass of a :class:`~repro.core.plan.ChunkedPlan`.

    Streams the plan's source block by block; every temporary (the chunk
    triple, the lazily-compiled ``src*K``/``dst*K`` components, the gathered
    labels and contributions) is O(chunk_edges), so the pass's working set
    beyond ``Z_flat`` is bounded by the source's memory budget no matter how
    large E is.  Shared by the serial chunked kernel and the parallel
    chunked workers (each streaming its own ``chunk_lo:chunk_hi`` slab), so
    all of them accumulate identical per-block contributions.

    Sorted-layout chunked plans (``plan.layout == "sorted"``) stream an
    owner-sorted *incidence* source instead and run the one-sided
    segment-sum update per block — the accumulated values are then raw
    per-class sums, and the **caller** must apply :func:`class_rescale`
    once after the last chunk (``scales`` is ignored on that path).
    """
    if getattr(plan, "layout", "none") == "sorted":
        _accumulate_chunked_incidence(Z_flat, plan, y, chunk_lo, chunk_hi)
        return
    if y.size == 0 or y.min() != UNKNOWN_LABEL:
        # Fully labelled (the refinement loop's regime): use each block's
        # precompiled flat-index components with no masking.
        for src, dst, w, src_flat, dst_flat in plan.iter_compiled(chunk_lo, chunk_hi):
            scatter_add(Z_flat, src_flat + y[dst], scales[dst] * w)
            scatter_add(Z_flat, dst_flat + y[src], scales[src] * w)
        return
    # Partially labelled: the shared masked kernel indexes only the known
    # subset of each block, so it does strictly less work than compiling
    # flat indices for edges the masks then drop.
    k = plan.n_classes
    for src, dst, w in plan.source.iter_chunks(chunk_lo, chunk_hi):
        accumulate_edges_vectorized(Z_flat, src, dst, w, y, scales, k)


@hot_path(reason="sorted-incidence chunked segment-sum pass")
def _accumulate_chunked_incidence(
    Z_flat: np.ndarray,
    plan,
    y: np.ndarray,
    chunk_lo: int = 0,
    chunk_hi: Optional[int] = None,
) -> None:
    """Segment-sum edge pass over a sorted-incidence chunked source.

    Each streamed block is ``(owner, partner, w)`` with owner globally
    non-decreasing, so within a block the scatter targets are monotone and
    the block-local bincounts write into L2-resident row-block slices.
    Accumulates *raw* sums into ``Z_flat`` (``+=`` — a row may straddle a
    chunk boundary); the caller rescales columns once at the end.
    """
    from .plan import _LAYOUT_BLOCK_BYTES

    k = plan.n_classes
    n = plan.n_vertices
    rows_per_block = max(1, _LAYOUT_BLOCK_BYTES // (k * 8))
    row_bounds = np.arange(0, n, rows_per_block, dtype=np.int64)
    row_bounds = np.append(row_bounds, n)
    flat_bounds = row_bounds * k
    fully = bool(y.size) and int(y.min()) != UNKNOWN_LABEL
    for owner, partner, w in plan.source.iter_chunks(chunk_lo, chunk_hi):
        yp = y[partner]
        if fully:
            flat = owner * k + yp
            wts = w
        else:
            known = yp != UNKNOWN_LABEL
            flat = owner[known] * k + yp[known]
            wts = w[known]
        if flat.size == 0:
            continue
        # Restrict the block loop to the rows this chunk actually touches.
        first = int(np.searchsorted(flat_bounds, flat[0], side="right")) - 1
        last = int(np.searchsorted(flat_bounds, flat[-1], side="right"))
        bounds = flat_bounds[first : last + 1]
        cuts = np.searchsorted(flat, bounds)
        _block_scatter(Z_flat, flat, wts, bounds, cuts, accumulate=True)


def gee_vectorized_chunked(plan, labels: np.ndarray) -> EmbeddingResult:
    """Out-of-core vectorised GEE on a :class:`~repro.core.plan.ChunkedPlan`.

    Identical sums to :func:`gee_vectorized` (scatter-add is associative;
    only floating-point summation order differs), with peak temporary
    allocation bounded by the source's chunk size instead of O(E).  The
    returned embedding views the plan's reused output buffer.
    """
    y = plan.validate_labels(labels)
    k = plan.n_classes

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    t1 = time.perf_counter()

    Z_flat = plan.zeroed_output()
    accumulate_chunked_plan(Z_flat, plan, y, scales)
    Z = Z_flat.reshape(plan.n_vertices, k)
    if getattr(plan, "layout", "none") == "sorted":
        class_rescale(Z, y, k)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(y, scales, k),
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-vectorized",
        n_workers=1,
        buffer_view=True,
        layout=getattr(plan, "layout", "none"),
    )


def gee_vectorized_with_plan(plan, labels: np.ndarray) -> EmbeddingResult:
    """Vectorised GEE on a compiled :class:`~repro.core.plan.EmbedPlan`.

    The label-independent work (edge validation, flat scatter-index
    components, the output allocation) was done when the plan was compiled;
    this call only computes scales, zeroes the plan's reusable buffer and
    runs the scatter-adds.  The dense projection ``W`` is built lazily on
    first access of ``result.projection``.

    The returned embedding is a view of the plan's output buffer — it is
    valid until the next plan-based call on the same plan (see
    :meth:`EmbeddingResult.detached`).

    Plans compiled with a locality-optimized layout
    (``graph.plan(K, layout="sorted"|"blocked")``) dispatch to the fused
    segment-sum kernel (:func:`gee_fused_with_plan`) instead.
    """
    if plan.layout != "none":
        return gee_fused_with_plan(plan, labels)
    y = plan.validate_labels(labels)
    k = plan.n_classes

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    t1 = time.perf_counter()

    Z_flat = plan.zeroed_output()
    _accumulate_with_plan(Z_flat, plan, y, scales)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z_flat.reshape(plan.n_vertices, k),
        projection_builder=lambda: projection_from_scales(y, scales, k),
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-vectorized",
        n_workers=1,
        buffer_view=True,
    )
