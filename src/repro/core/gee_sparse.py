"""GEE as a sparse-matrix product: the SciPy C-speed serial reference.

The whole GEE edge pass is one linear operation.  For an edge ``(u, v, w)``
Algorithm 1 performs ``Z[u, Y[v]] += W[v, Y[v]]·w`` and
``Z[v, Y[u]] += W[u, Y[u]]·w``; since ``W``'s only non-zero per row is
``W[v, Y[v]]``, both updates together are exactly::

    Z = (A + Aᵀ) · W

with ``A`` the (directed) adjacency matrix and ``W`` the scaled one-hot
projection (rows of unlabelled vertices are all-zero, so they contribute
nothing — the same convention every other implementation uses).

Computing that product with ``scipy.sparse`` CSR matmul gives a serial
implementation whose inner loop is compiled C — a second "compiled serial"
reference point for Table I, independent of our own NumPy scatter
formulation.  It is exact (same sums, different association order), and its
runtime is what a generic sparse-linear-algebra stack achieves without any
of the paper's structural insight.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..analysis.annotations import hot_path
from ..graph.facade import Graph
from .projection import projection_from_scales, projection_scales
from .result import EmbeddingResult
from .validation import validate_labels

__all__ = [
    "gee_sparse",
    "gee_sparse_with_plan",
    "gee_sparse_chunked",
    "patch_sums_sparse",
]


def _product(A, A_T, W: np.ndarray) -> np.ndarray:
    """``(A + Aᵀ)·W`` without materialising the summed matrix."""
    Z = A.dot(W)
    Z += A_T.dot(W)
    return Z


@hot_path(reason="sparse-native O(Δ) incremental patch kernel")
def patch_sums_sparse(
    S_flat: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    delta_w: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
) -> None:
    """Apply a signed edge delta to flat raw per-class sums, in place.

    The sparse-native O(Δ) patch kernel: the delta is a sparse adjacency
    ``D`` over the touched edges, and the raw-sum update is exactly
    ``S += (D + Dᵀ)·H`` with ``H`` the (unscaled) one-hot label matrix —
    the same linear formulation :func:`gee_sparse` uses for the full pass,
    restricted to the Δ non-zeros.  The product stays sparse end to end; its
    entries are scattered into ``S`` so the update is O(touched slots),
    never O(nK).
    """
    import scipy.sparse as sp

    from .validation import UNKNOWN_LABEL
    from .gee_vectorized import scatter_add

    k = int(n_classes)
    n = S_flat.size // k
    # The product only ever reads H rows of the delta's endpoints, so the
    # one-hot matrix is built over those O(Δ) vertices alone — a full-label
    # construction would make the patch O(n) per call.
    touched = np.unique(np.concatenate((src, dst)))  # repro: ignore[hot-path-alloc] O(Δ) endpoints, not O(E)
    known = touched[labels[touched] != UNKNOWN_LABEL]
    if known.size == 0:
        return
    H = sp.csr_matrix(
        (np.ones(known.size), (known, labels[known])), shape=(n, k)
    )
    D = sp.csr_matrix((delta_w, (src, dst)), shape=(n, n))
    patch = (D.dot(H) + D.T.dot(H)).tocoo()
    scatter_add(S_flat, patch.row * k + patch.col, patch.data)


def gee_sparse(
    edges,
    labels: np.ndarray,
    n_classes: Optional[int] = None,
) -> EmbeddingResult:
    """One-Hot Graph Encoder Embedding via ``scipy.sparse`` matmul.

    Parameters are as in :func:`repro.core.gee_python.gee_python`; any
    graph-like input is accepted (a :class:`~repro.graph.facade.Graph`
    reuses its cached CSR view to build the scipy adjacency).
    """
    graph = Graph.coerce(edges)
    n = graph.n_vertices
    if n == 0:
        raise ValueError("GEE requires at least one vertex")
    y, k = validate_labels(labels, n, n_classes)

    A = graph.csr.to_scipy()
    A_T = A.T.tocsr()

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    W = projection_from_scales(y, scales, k)
    t1 = time.perf_counter()

    Z = _product(A, A_T, W)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection=W,
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-sparse",
        n_workers=1,
    )


def gee_sparse_chunked(plan, labels: np.ndarray) -> EmbeddingResult:
    """Out-of-core sparse-matmul GEE on a :class:`~repro.core.plan.ChunkedPlan`.

    ``Z = Σ_c (A_c + A_cᵀ)·W`` over per-chunk adjacency slices ``A_c`` —
    matrix multiplication distributes over the sum of the slices, so the
    result equals the one-shot product exactly (up to summation order).
    Each slice is a CSR matrix over at most ``chunk_edges`` non-zeros; the
    only O(n) state is the dense ``W`` and the output, both vertex-side.
    """
    import scipy.sparse as sp

    if getattr(plan, "layout", "none") != "none":
        raise ValueError(
            "the sparse backend cannot execute a sorted-incidence chunked "
            "plan (its blocks hold each edge twice, once per orientation, "
            "which the two-sided A + A^T update would double-count); "
            "re-plan with the default layout, or use a layout-capable "
            "chunked backend (vectorized, parallel)"
        )
    y = plan.validate_labels(labels)
    k = plan.n_classes
    n = plan.n_vertices

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    W = projection_from_scales(y, scales, k)
    t1 = time.perf_counter()

    Z_flat = plan.zeroed_output()
    Z = Z_flat.reshape(n, k)
    for src, dst, w in plan.source.iter_chunks():
        A_c = sp.csr_matrix((w, (src, dst)), shape=(n, n))
        Z += A_c.dot(W)
        Z += A_c.T.dot(W)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection=W,
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-sparse",
        n_workers=1,
        buffer_view=True,
    )


def gee_sparse_with_plan(plan, labels: np.ndarray) -> EmbeddingResult:
    """Sparse-matmul GEE on a compiled :class:`~repro.core.plan.EmbedPlan`.

    The scipy CSR adjacency and its transpose are built once per plan and
    cached; per call only the projection and the matmul run.  (The matmul
    allocates its own output — scipy offers no ``out=`` — so this path
    reuses the plan's adjacency caches but not its output buffer.)
    """
    y = plan.validate_labels(labels)
    k = plan.n_classes

    A = plan.scipy_adjacency()
    A_T = plan.scipy_adjacency_T()

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    W = projection_from_scales(y, scales, k)
    t1 = time.perf_counter()

    Z = _product(A, A_T, W)
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection=W,
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-sparse",
        n_workers=1,
    )
