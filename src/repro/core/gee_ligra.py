"""GEE-Ligra: Algorithm 2 of the paper, on the Ligra-like engine.

The embedding update is expressed as an edge-map function (``updateEmb`` in
the paper) and handed to :class:`repro.ligra.engine.LigraEngine` with the
frontier set to the whole vertex set, so the engine's dense traversal visits
every edge exactly once.  The execution backend decides how that traversal
runs:

* ``backend="serial"`` — one vertex edge list at a time, in the calling
  thread (the paper's "GEE-Ligra Serial" schedule).
* ``backend="vectorized"`` — the whole edge set as NumPy slabs on one core.
* ``backend="threads"`` — degree-balanced vertex ranges on Python threads
  with lock-striped atomic adds (the literal writeAdd formulation; GIL-bound,
  kept for semantics and the atomics ablation).
* ``backend="processes"`` — forked workers over shared memory, private
  partials + reduction (the measured parallel configuration).

All backends produce the same embedding up to floating-point summation
order; the equivalence tests assert this against the reference loop.
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.edgelist import EdgeList
from ..graph.facade import Graph
from ..ligra.atomics import make_accumulator
from ..ligra.backends.base import AccumulatingEdgeMapFunction
from ..ligra.engine import LigraEngine
from .gee_vectorized import accumulate_edges_vectorized
from .projection import (
    build_projection_parallel,
    projection_from_scales,
    projection_scales,
)
from .result import EmbeddingResult
from .validation import UNKNOWN_LABEL, validate_edges, validate_labels

__all__ = ["UpdateEmbedding", "gee_ligra", "gee_ligra_with_plan"]


class UpdateEmbedding(AccumulatingEdgeMapFunction):
    """The paper's ``updateEmb`` (Algorithm 2, lines 9–12).

    For an edge ``(u, v, w)``::

        writeAdd(Z[u, Y[v]], W[v, Y[v]] * w)
        writeAdd(Z[v, Y[u]], W[u, Y[u]] * w)

    with the convention that an unknown label contributes nothing.  The
    scalar path goes through an atomic accumulator (``writeAdd``); the block
    and batch paths use the shared vectorised kernel so every backend
    computes identical contributions.
    """

    def __init__(
        self,
        Z: np.ndarray,
        labels: np.ndarray,
        scales: np.ndarray,
        n_classes: int,
        *,
        atomic: bool = True,
    ) -> None:
        self.Z = Z
        self.labels = labels
        self.scales = scales
        self.n_classes = int(n_classes)
        self.atomic = bool(atomic)
        self._accumulator = make_accumulator(Z, atomic=atomic)

    # ------------------------------------------------------------------ #
    # Scalar path (serial / threads backends without block hook use)
    # ------------------------------------------------------------------ #
    def update(self, u: int, v: int, w: float) -> bool:
        yv = int(self.labels[v])
        yu = int(self.labels[u])
        fired = False
        if yv != UNKNOWN_LABEL:
            self._accumulator.write_add((u, yv), self.scales[v] * w)
            fired = True
        if yu != UNKNOWN_LABEL:
            self._accumulator.write_add((v, yu), self.scales[u] * w)
            fired = True
        return fired

    update_atomic = update

    # ------------------------------------------------------------------ #
    # Block path: one source vertex's whole edge list (edgeMapDense unit)
    # ------------------------------------------------------------------ #
    def update_block(self, u: int, dsts: np.ndarray, weights: np.ndarray):
        y_dst = self.labels[dsts]
        known_dst = y_dst != UNKNOWN_LABEL
        if np.any(known_dst):
            # Contributions into the source row, grouped by destination class.
            contrib = np.bincount(
                y_dst[known_dst],
                weights=self.scales[dsts[known_dst]] * weights[known_dst],
                minlength=self.n_classes,
            )
            row_idx = np.flatnonzero(contrib)
            if row_idx.size:
                self._accumulator.add_at(
                    (np.full(row_idx.size, u, dtype=np.int64), row_idx),
                    contrib[row_idx],
                )
        yu = int(self.labels[u])
        if yu != UNKNOWN_LABEL:
            # Contribution of the source's class into every destination row.
            self._accumulator.add_at(
                (dsts, np.full(dsts.size, yu, dtype=np.int64)),
                self.scales[u] * weights,
            )
        return np.ones(dsts.size, dtype=bool)

    # ------------------------------------------------------------------ #
    # Accumulating protocol (vectorized / processes backends)
    # ------------------------------------------------------------------ #
    def output_arrays(self):
        return {"Z": self.Z}

    def update_batch_into(self, outputs, srcs, dsts, weights):
        Z = outputs["Z"]
        accumulate_edges_vectorized(
            Z.reshape(-1), srcs, dsts, weights, self.labels, self.scales, self.n_classes
        )
        return None


def gee_ligra(
    edges: Union[EdgeList, CSRGraph, Graph],
    labels: np.ndarray,
    n_classes: Optional[int] = None,
    *,
    backend: str = "vectorized",
    n_workers: Optional[int] = None,
    atomic: bool = True,
    engine: Optional[LigraEngine] = None,
) -> EmbeddingResult:
    """One-Hot Graph Encoder Embedding via the Ligra-like engine.

    Parameters
    ----------
    edges:
        The graph as a :class:`~repro.graph.facade.Graph` (its cached CSR
        view is reused), an :class:`EdgeList`, a prebuilt :class:`CSRGraph`,
        or any other graph-like input (building CSR is graph loading, not
        embedding, so it is excluded from the reported timings either way).
    labels, n_classes:
        As in :func:`repro.core.gee_python.gee_python`.
    backend:
        Engine backend name (``serial`` / ``vectorized`` / ``threads`` /
        ``processes``).  Ignored if ``engine`` is given.
    n_workers:
        Worker count for the parallel backends.
    atomic:
        Use lock-striped atomic adds (True, the paper's default) or plain
        unsafe adds (False, the paper's "atomics off" ablation).  Only
        affects backends that issue concurrent scalar/block updates.
    engine:
        Reuse an existing engine (its graph must be the one to embed); this
        avoids re-forking workers in sweep experiments.
    """
    if isinstance(edges, Graph):
        csr = edges.csr
    elif isinstance(edges, CSRGraph):
        csr = edges
    else:
        edges = validate_edges(edges)
        csr = edges.to_csr()
    n = csr.n_vertices
    y, k = validate_labels(labels, n, n_classes)

    own_engine = engine is None
    if engine is None:
        engine = LigraEngine(csr, backend=backend, n_workers=n_workers)
    else:
        if engine.n_vertices != n:
            raise ValueError("provided engine was built over a different graph")

    t0 = time.perf_counter()
    # Algorithm 2, lines 3-6: the projection initialisation.  The compact
    # per-vertex scales are built first; the dense W follows with one
    # vectorised scatter (the class-parallel loop of the paper is available
    # as build_projection_parallel and benchmarked in the init ablation).
    scales = projection_scales(y, k)
    W = projection_from_scales(y, scales, k)
    t1 = time.perf_counter()

    Z = np.zeros((n, k), dtype=np.float64)
    fn = UpdateEmbedding(Z, y, scales, k, atomic=atomic)
    # Algorithm 2, line 7: EdgeMap over the full frontier.
    engine.edge_map(engine.full_frontier(), fn, mode="dense")
    t2 = time.perf_counter()

    if own_engine:
        engine.close()

    workers = getattr(engine.backend, "n_workers", 1)
    return EmbeddingResult(
        embedding=Z,
        projection=W,
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method=f"gee-ligra[{engine.backend.name}]",
        n_workers=int(workers),
    )


def gee_ligra_with_plan(
    plan,
    labels: np.ndarray,
    *,
    backend: str = "vectorized",
    n_workers: Optional[int] = None,
    atomic: bool = True,
) -> EmbeddingResult:
    """GEE via the Ligra engine on a compiled :class:`~repro.core.plan.EmbedPlan`.

    The plan's CSR view was forced at compilation, the output buffer is the
    plan's reusable one and the dense ``W`` is built lazily — the engine's
    dense traversal is the only O(s) work per call.  The returned embedding
    is a view of the plan's output buffer (valid until the next plan-based
    call on the same plan).
    """
    y = plan.validate_labels(labels)
    k = plan.n_classes

    # Serial/vectorized engines hold no worker resources, so they are
    # cached on the plan and reused across calls; the thread/process
    # engines own pools and keep the classic create-use-close lifecycle.
    cacheable = backend in ("serial", "vectorized")
    engine = plan._ligra_engines.get(backend) if cacheable else None
    if engine is None:
        engine = LigraEngine(plan.csr, backend=backend, n_workers=n_workers)
        if cacheable:
            plan._ligra_engines[backend] = engine

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    t1 = time.perf_counter()

    Z = plan.zeroed_output().reshape(plan.n_vertices, k)
    fn = UpdateEmbedding(Z, y, scales, k, atomic=atomic)
    engine.edge_map(engine.full_frontier(), fn, mode="dense")
    t2 = time.perf_counter()

    if not cacheable:
        engine.close()

    workers = getattr(engine.backend, "n_workers", 1)
    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(y, scales, k),
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method=f"gee-ligra[{engine.backend.name}]",
        n_workers=int(workers),
        buffer_view=True,
    )
