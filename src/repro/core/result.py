"""Result container shared by all GEE implementations."""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

__all__ = ["EmbeddingResult"]


class EmbeddingResult:
    """Output of a GEE run.

    Attributes
    ----------
    embedding:
        ``Z ∈ R^{n×K}`` — the node embeddings (Algorithm 1/2 output).
    projection:
        ``W ∈ R^{n×K}`` — the projection matrix built from the labels.  The
        fast plan-based paths construct it lazily on first access (the edge
        pass only ever reads the per-vertex scales, so materialising the
        dense ``W`` is pure reporting overhead); pass ``projection_builder``
        instead of ``projection`` for that behaviour.
    timings:
        Wall-clock seconds of the phases an implementation chooses to
        report.  All implementations report ``"total"``; most also report
        ``"projection"`` (the O(nK) initialisation) and ``"edge_pass"``
        (the O(s) loop), which is the split the paper discusses in §III.
    method:
        Name of the implementation that produced the result.
    n_workers:
        Worker count used (1 for the serial implementations).
    """

    def __init__(
        self,
        embedding: np.ndarray,
        projection: Optional[np.ndarray] = None,
        timings: Optional[Dict[str, float]] = None,
        method: str = "unknown",
        n_workers: int = 1,
        *,
        projection_builder: Optional[Callable[[], np.ndarray]] = None,
        buffer_view: bool = False,
        layout: str = "none",
        execution_choice=None,
    ) -> None:
        if projection is None and projection_builder is None:
            raise TypeError("provide either projection or projection_builder")
        self.embedding = embedding
        self._projection = projection
        self._projection_builder = projection_builder
        self.timings: Dict[str, float] = {} if timings is None else timings
        self.method = method
        self.n_workers = n_workers
        #: Whether ``embedding`` aliases a plan's reused output buffer (set
        #: by the buffer-reusing plan kernels; makes :meth:`detached` cheap
        #: for everything else).
        self.buffer_view = buffer_view
        #: Memory layout the edge pass executed with (``"none"`` = arrival
        #: order; ``"sorted"``/``"blocked"`` = the locality-optimized fused
        #: kernels) — observability for benchmarks and the auto backend.
        self.layout = layout
        #: The :class:`~repro.tune.ExecutionChoice` behind a
        #: ``backend="auto"`` run (``None`` for explicitly-picked backends).
        self.execution_choice = execution_choice
        #: Compact telemetry summary of the run (top spans + counters),
        #: attached by the backend dispatch layer when ``repro.obs`` tracing
        #: is enabled; ``None`` otherwise.
        self.telemetry: Optional[Dict] = None

    @property
    def projection(self) -> np.ndarray:
        """The projection matrix ``W`` (built lazily for plan-based runs)."""
        if self._projection is None:
            assert self._projection_builder is not None
            self._projection = self._projection_builder()
        return self._projection

    @property
    def n_vertices(self) -> int:
        """Number of embedded vertices."""
        return int(self.embedding.shape[0])

    @property
    def n_classes(self) -> int:
        """Embedding dimensionality ``K``."""
        return int(self.embedding.shape[1])

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of the run."""
        return float(self.timings.get("total", float("nan")))

    def normalized(self) -> np.ndarray:
        """Row-normalised embedding (unit L2 norm; zero rows left at zero).

        The original GEE paper recommends row normalisation before
        clustering or classification; it does not change class structure,
        only scale.
        """
        norms = np.linalg.norm(self.embedding, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return self.embedding / norms

    def detached(self) -> "EmbeddingResult":
        """A result whose embedding no longer aliases a plan's reused buffer.

        The buffer-reusing plan kernels write into a per-plan output buffer
        that the *next* ``embed_with_plan`` call on the same plan
        overwrites; call this before storing a result beyond the next
        embed.  Results that own their embedding (``buffer_view=False``)
        are returned as-is — no copy.
        """
        if not self.buffer_view:
            return self
        clone = EmbeddingResult(
            embedding=np.array(self.embedding, dtype=np.float64, copy=True),
            projection=self._projection,
            timings=self.timings,
            method=self.method,
            n_workers=self.n_workers,
            projection_builder=self._projection_builder,
            layout=self.layout,
            execution_choice=self.execution_choice,
        )
        clone.telemetry = self.telemetry
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n, k = self.embedding.shape
        return (
            f"EmbeddingResult(n={n}, K={k}, method={self.method!r}, "
            f"n_workers={self.n_workers})"
        )
