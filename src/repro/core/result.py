"""Result container shared by all GEE implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["EmbeddingResult"]


@dataclass
class EmbeddingResult:
    """Output of a GEE run.

    Attributes
    ----------
    embedding:
        ``Z ∈ R^{n×K}`` — the node embeddings (Algorithm 1/2 output).
    projection:
        ``W ∈ R^{n×K}`` — the projection matrix built from the labels.
    timings:
        Wall-clock seconds of the phases an implementation chooses to
        report.  All implementations report ``"total"``; most also report
        ``"projection"`` (the O(nK) initialisation) and ``"edge_pass"``
        (the O(s) loop), which is the split the paper discusses in §III.
    method:
        Name of the implementation that produced the result.
    n_workers:
        Worker count used (1 for the serial implementations).
    """

    embedding: np.ndarray
    projection: np.ndarray
    timings: Dict[str, float] = field(default_factory=dict)
    method: str = "unknown"
    n_workers: int = 1

    @property
    def n_vertices(self) -> int:
        """Number of embedded vertices."""
        return int(self.embedding.shape[0])

    @property
    def n_classes(self) -> int:
        """Embedding dimensionality ``K``."""
        return int(self.embedding.shape[1])

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of the run."""
        return float(self.timings.get("total", float("nan")))

    def normalized(self) -> np.ndarray:
        """Row-normalised embedding (unit L2 norm; zero rows left at zero).

        The original GEE paper recommends row normalisation before
        clustering or classification; it does not change class structure,
        only scale.
        """
        norms = np.linalg.norm(self.embedding, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return self.embedding / norms
