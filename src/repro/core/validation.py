"""Input validation and label conventions for the GEE implementations.

Every implementation (pure Python, vectorized, Ligra, process-parallel)
funnels its inputs through these helpers so that they agree exactly on what
a valid input is and on the label encoding:

* internally, labels are ``int64`` with ``-1`` meaning "unknown" and classes
  numbered ``0..K-1``;
* the paper's convention (``Y ∈ {0..K}`` with ``0`` = unknown, classes
  ``1..K``) is accepted via :func:`labels_from_paper_convention`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph.edgelist import EdgeList

__all__ = [
    "UNKNOWN_LABEL",
    "validate_labels",
    "labels_from_paper_convention",
    "labels_to_paper_convention",
    "infer_n_classes",
    "class_counts",
    "inverse_class_counts",
    "validate_edges",
]

#: Sentinel for "class unknown" in the internal convention.
UNKNOWN_LABEL: int = -1


def validate_edges(edges) -> EdgeList:
    """Coerce a graph-like input to an :class:`EdgeList` usable by GEE.

    Accepts everything :meth:`repro.graph.facade.Graph.coerce` accepts
    (``Graph``, ``EdgeList``, ``CSRGraph``, ``(s, 2|3)`` arrays,
    ``scipy.sparse`` matrices, ``(src, dst[, weights])`` tuples) and checks
    the vertex set is non-empty.
    """
    if not isinstance(edges, EdgeList):
        from ..graph.facade import as_edgelist

        try:
            edges = as_edgelist(edges)
        except TypeError as exc:
            raise TypeError(f"expected a graph-like input: {exc}") from None
    if edges.n_vertices == 0:
        raise ValueError("GEE requires at least one vertex")
    return edges


def validate_labels(
    labels: np.ndarray,
    n_vertices: int,
    n_classes: Optional[int] = None,
) -> Tuple[np.ndarray, int]:
    """Validate a label vector and return ``(labels, K)``.

    ``labels`` must have one entry per vertex; entries are either ``-1``
    (unknown) or in ``0..K-1``.  If ``n_classes`` is not given it is
    inferred as ``max(labels) + 1``.
    """
    y = np.asarray(labels)
    if y.ndim != 1 or y.shape[0] != n_vertices:
        raise ValueError(
            f"labels must be a 1-D array of length {n_vertices}, got shape {y.shape}"
        )
    if not np.issubdtype(y.dtype, np.integer):
        if np.any(y != np.round(y)):
            raise ValueError("labels must be integers")
    y = y.astype(np.int64)
    if y.size and y.min() < UNKNOWN_LABEL:
        raise ValueError("labels must be >= -1 (-1 means unknown)")
    k = infer_n_classes(y) if n_classes is None else int(n_classes)
    if k <= 0:
        raise ValueError(
            "could not infer a positive number of classes; provide n_classes "
            "or at least one labelled vertex"
        )
    if y.size and y.max() >= k:
        raise ValueError(f"label {int(y.max())} out of range for K={k} classes")
    return y, k


def infer_n_classes(labels: np.ndarray) -> int:
    """``max(label) + 1`` over known labels (0 when everything is unknown)."""
    y = np.asarray(labels)
    known = y[y != UNKNOWN_LABEL]
    if known.size == 0:
        return 0
    return int(known.max()) + 1


def class_counts(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Number of vertices with each known class label (shape ``(K,)``)."""
    y = np.asarray(labels, dtype=np.int64)
    known = y[y != UNKNOWN_LABEL]
    return np.bincount(known, minlength=n_classes).astype(np.int64)


def inverse_class_counts(counts: np.ndarray) -> np.ndarray:
    """``1 / n_c`` per class, with empty classes mapped to 0 (shape ``(K,)``).

    The single definition of the ``Z = S·diag(1/n_c)`` rescale factor used
    by the raw-sum paths (streaming estimator, delta refinement,
    incremental maintenance, the fused layout kernels) — one place to
    change the empty-class convention, so those paths stay bit-compatible
    with each other.
    """
    counts = np.asarray(counts, dtype=np.float64)
    return np.where(counts > 0, 1.0 / np.maximum(counts, 1.0), 0.0)


def labels_from_paper_convention(y_paper: np.ndarray) -> np.ndarray:
    """Convert the paper's ``{0..K}`` labels (0 = unknown) to internal form."""
    y = np.asarray(y_paper, dtype=np.int64)
    if y.size and y.min() < 0:
        raise ValueError("paper-convention labels must be non-negative")
    return y - 1


def labels_to_paper_convention(labels: np.ndarray) -> np.ndarray:
    """Convert internal labels (``-1`` = unknown) to the paper's ``{0..K}``."""
    y = np.asarray(labels, dtype=np.int64)
    if y.size and y.min() < UNKNOWN_LABEL:
        raise ValueError("internal labels must be >= -1")
    return y + 1
