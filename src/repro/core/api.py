"""High-level user-facing API.

:class:`GraphEncoderEmbedding` is the estimator-style entry point a
downstream user works with: pick an implementation ("method"), fit on a
graph plus (partial) labels, and read off the embedding.  It wraps the four
functional implementations and the unsupervised refinement loop behind one
interface, handles the adjacency/Laplacian choice, and exposes simple
prediction helpers (nearest-class-centroid classification of unlabelled
vertices), which is how GEE embeddings are typically consumed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from ..graph.edgelist import EdgeList
from .gee_ligra import gee_ligra
from .gee_parallel import gee_parallel
from .gee_python import gee_python
from .gee_vectorized import gee_vectorized
from .laplacian import laplacian_reweight
from .refinement import gee_unsupervised
from .result import EmbeddingResult
from .validation import UNKNOWN_LABEL, validate_edges, validate_labels

__all__ = ["GraphEncoderEmbedding", "METHODS"]

#: Mapping from method name to the functional implementation behind it.
METHODS: Dict[str, Callable[..., EmbeddingResult]] = {
    "python": gee_python,
    "vectorized": gee_vectorized,
    "ligra": gee_ligra,
    "ligra-serial": lambda e, y, k=None, **kw: gee_ligra(e, y, k, backend="serial", **kw),
    "ligra-parallel": lambda e, y, k=None, **kw: gee_ligra(e, y, k, backend="processes", **kw),
    "parallel": gee_parallel,
}


class GraphEncoderEmbedding:
    """One-Hot Graph Encoder Embedding estimator.

    Parameters
    ----------
    n_classes:
        Embedding dimensionality ``K``.  May be omitted for supervised fits
        (inferred from the labels) but is required for unsupervised fits.
    method:
        One of ``"python"``, ``"vectorized"``, ``"ligra"``,
        ``"ligra-serial"``, ``"ligra-parallel"``, ``"parallel"``.
    laplacian:
        Use the normalised-Laplacian edge weights instead of raw adjacency.
    n_workers:
        Worker count for the parallel methods.
    normalize:
        Row-normalise the embedding exposed via :attr:`embedding_`.

    Examples
    --------
    >>> from repro.graph import planted_partition
    >>> from repro.labels import mask_labels
    >>> edges, truth = planted_partition(300, 3, 0.1, 0.01, seed=1)
    >>> y = mask_labels(truth, 0.2, seed=1)
    >>> model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
    >>> model.embedding_.shape
    (300, 3)
    """

    def __init__(
        self,
        n_classes: Optional[int] = None,
        *,
        method: str = "vectorized",
        laplacian: bool = False,
        n_workers: Optional[int] = None,
        normalize: bool = False,
    ) -> None:
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; available: {sorted(METHODS)}")
        self.n_classes = n_classes
        self.method = method
        self.laplacian = laplacian
        self.n_workers = n_workers
        self.normalize = normalize
        # Fitted state
        self.result_: Optional[EmbeddingResult] = None
        self.labels_: Optional[np.ndarray] = None
        self.is_fitted_: bool = False

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _impl_kwargs(self) -> dict:
        if self.method in ("ligra", "ligra-serial", "ligra-parallel", "parallel"):
            return {"n_workers": self.n_workers}
        return {}

    def _prepare_edges(self, edges: EdgeList) -> EdgeList:
        edges = validate_edges(edges)
        return laplacian_reweight(edges) if self.laplacian else edges

    def fit(self, edges: EdgeList, labels: np.ndarray) -> "GraphEncoderEmbedding":
        """Semi-supervised fit: embed using the given (partial) labels."""
        work = self._prepare_edges(edges)
        y, k = validate_labels(labels, work.n_vertices, self.n_classes)
        impl = METHODS[self.method]
        self.result_ = impl(work, y, k, **self._impl_kwargs())
        self.labels_ = y
        self.n_classes = k
        self.is_fitted_ = True
        return self

    def fit_unsupervised(
        self,
        edges: EdgeList,
        *,
        max_iterations: int = 20,
        seed: Optional[int] = 0,
    ) -> "GraphEncoderEmbedding":
        """Unsupervised fit via the embed → cluster → re-embed loop."""
        if self.n_classes is None:
            raise ValueError("n_classes must be set for unsupervised fitting")
        work = self._prepare_edges(edges)
        impl = METHODS[self.method]
        refinement = gee_unsupervised(
            work,
            self.n_classes,
            max_iterations=max_iterations,
            implementation=impl,
            seed=seed,
            **self._impl_kwargs(),
        )
        self.result_ = refinement.final
        self.labels_ = refinement.labels
        self.is_fitted_ = True
        return self

    # ------------------------------------------------------------------ #
    # Fitted attributes
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> EmbeddingResult:
        if not self.is_fitted_ or self.result_ is None:
            raise RuntimeError("this GraphEncoderEmbedding instance is not fitted yet")
        return self.result_

    @property
    def embedding_(self) -> np.ndarray:
        """The fitted ``(n, K)`` embedding (row-normalised if configured)."""
        result = self._check_fitted()
        return result.normalized() if self.normalize else result.embedding

    @property
    def projection_(self) -> np.ndarray:
        """The fitted projection matrix ``W``."""
        return self._check_fitted().projection

    @property
    def timings_(self) -> Dict[str, float]:
        """Phase timings of the fit."""
        return dict(self._check_fitted().timings)

    # ------------------------------------------------------------------ #
    # Downstream helpers
    # ------------------------------------------------------------------ #
    def class_centroids(self) -> np.ndarray:
        """Mean embedding of the labelled vertices of each class."""
        result = self._check_fitted()
        assert self.labels_ is not None and self.n_classes is not None
        Z = result.normalized() if self.normalize else result.embedding
        centroids = np.zeros((self.n_classes, Z.shape[1]), dtype=np.float64)
        for k in range(self.n_classes):
            members = np.flatnonzero(self.labels_ == k)
            if members.size:
                centroids[k] = Z[members].mean(axis=0)
        return centroids

    def predict(self, vertices: Optional[np.ndarray] = None) -> np.ndarray:
        """Nearest-centroid class prediction for the given vertices.

        Labelled vertices keep their given label; unlabelled ones are
        assigned the class whose centroid is nearest in the embedding.
        ``vertices=None`` predicts for every vertex.
        """
        result = self._check_fitted()
        assert self.labels_ is not None
        Z = result.normalized() if self.normalize else result.embedding
        if vertices is None:
            vertices = np.arange(Z.shape[0])
        vertices = np.asarray(vertices, dtype=np.int64)
        centroids = self.class_centroids()
        dists = (
            np.sum(Z[vertices] ** 2, axis=1, keepdims=True)
            - 2.0 * Z[vertices] @ centroids.T
            + np.sum(centroids**2, axis=1)[None, :]
        )
        pred = np.argmin(dists, axis=1).astype(np.int64)
        known = self.labels_[vertices] != UNKNOWN_LABEL
        pred[known] = self.labels_[vertices][known]
        return pred
