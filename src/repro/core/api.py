"""High-level user-facing API: the :class:`GraphEncoderEmbedding` estimator.

The estimator is built on two subsystems introduced by the API redesign:

* **the backend registry** (:mod:`repro.backends`) — every execution
  strategy (``python``, ``vectorized``, ``ligra-serial``,
  ``ligra-vectorized``, ``ligra-threads``, ``ligra-processes``,
  ``parallel``) is a registered :class:`~repro.backends.GEEBackend` with
  declared capabilities; ``method=`` accepts a canonical name, a legacy
  alias (``"ligra"``, ``"ligra-parallel"``) or a constructed backend
  instance, and unsupported options are rejected at construction;
* **the graph facade** (:class:`repro.graph.facade.Graph`) — ``fit`` and
  friends accept any graph-like input (``EdgeList``, ``CSRGraph``,
  ``(s, 2|3)`` arrays, ``scipy.sparse`` adjacencies) and reuse the facade's
  cached CSR / Laplacian views instead of recomputing them per call.

Beyond the batch ``fit`` of the paper, the estimator supports two online
scenarios the batch algorithm doesn't cover:

* :meth:`~GraphEncoderEmbedding.transform` — embed *out-of-sample* vertices
  from their incident edges alone, with one edge pass that touches only the
  new edges (the fitted vertices' rows and class counts are unchanged);
* :meth:`~GraphEncoderEmbedding.partial_fit` — *streaming* ingestion of
  edge batches with incremental class-count/projection updates; the
  embedding after streaming the whole edge set equals a full-batch ``fit``
  up to floating-point summation order.

The legacy ``METHODS`` mapping is kept as a deprecation shim; new code
should use :func:`repro.backends.get_backend` / ``list_backends``.

Examples
--------
>>> from repro.graph import planted_partition
>>> from repro.labels import mask_labels
>>> edges, truth = planted_partition(300, 3, 0.1, 0.01, seed=1)
>>> y = mask_labels(truth, 0.2, seed=1)
>>> model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
>>> model.embedding_.shape
(300, 3)
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..backends import GEEBackend, get_backend, list_backends, resolve_backend_name
from ..graph.facade import Graph, GraphLike, as_edgelist
from .gee_ligra import gee_ligra
from .gee_parallel import gee_parallel
from .gee_python import gee_python
from .gee_vectorized import accumulate_edges_vectorized, gee_vectorized
from .refinement import gee_unsupervised
from .result import EmbeddingResult
from .validation import (
    UNKNOWN_LABEL,
    class_counts,
    inverse_class_counts,
    validate_labels,
)
from .projection import projection_from_scales, projection_scales

__all__ = ["GraphEncoderEmbedding", "METHODS"]


class _DeprecatedMethods(dict):
    """Legacy ``METHODS`` mapping, kept so old call sites keep working.

    Indexing emits a :class:`DeprecationWarning` pointing at the backend
    registry, which is the supported extension point.
    """

    def __getitem__(self, key):
        warnings.warn(
            "repro.core.api.METHODS is deprecated; use "
            "repro.backends.get_backend(name) / list_backends() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return super().__getitem__(key)


#: Deprecated mapping from legacy method name to a functional implementation.
#: Kept for backward compatibility only — the estimator resolves methods
#: through :mod:`repro.backends` and never consults this mapping.
METHODS: Dict[str, Callable[..., EmbeddingResult]] = _DeprecatedMethods(
    {
        "python": gee_python,
        "vectorized": gee_vectorized,
        "ligra": gee_ligra,
        "ligra-serial": lambda e, y, k=None, **kw: gee_ligra(e, y, k, backend="serial", **kw),
        "ligra-parallel": lambda e, y, k=None, **kw: gee_ligra(e, y, k, backend="processes", **kw),
        "parallel": gee_parallel,
    }
)


class GraphEncoderEmbedding:
    """One-Hot Graph Encoder Embedding estimator.

    Parameters
    ----------
    n_classes:
        Embedding dimensionality ``K``.  May be omitted for supervised fits
        (inferred from the labels) but is required for unsupervised fits.
    method:
        A registered backend name (see
        :func:`repro.backends.list_backends`), a legacy alias (``"ligra"``,
        ``"ligra-parallel"``) or a constructed
        :class:`~repro.backends.GEEBackend` instance.
    laplacian:
        Use the normalised-Laplacian edge weights instead of raw adjacency
        (reuses the graph facade's cached reweighted view).
    n_workers:
        Worker count, only valid for backends whose capabilities declare
        ``supports_n_workers`` — otherwise construction raises.
    normalize:
        Row-normalise the embedding exposed via :attr:`embedding_` (and the
        rows returned by :meth:`transform`).
    layout:
        Memory layout for the compiled embed plan: ``None`` (the default —
        layout-preserving, byte-identical to historical behaviour),
        ``"sorted"`` / ``"blocked"`` (locality-optimized fused kernels on
        ``supports_layout`` backends), or ``"auto"`` (the calibrated cost
        model picks; see :mod:`repro.tune`).  With ``method="auto"``, the
        default ``None`` leaves the layout to the cost model, while an
        explicit ``"sorted"``/``"blocked"`` pins it (auto then picks only
        among backends executing that layout).
    **backend_options:
        Extra options forwarded to the backend constructor (for example
        ``chunk_edges`` for ``"vectorized"`` or ``atomic`` for the Ligra
        family).  Unknown options raise immediately.

    Examples
    --------
    >>> from repro.graph import planted_partition
    >>> from repro.labels import mask_labels
    >>> edges, truth = planted_partition(300, 3, 0.1, 0.01, seed=1)
    >>> y = mask_labels(truth, 0.2, seed=1)
    >>> model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
    >>> model.embedding_.shape
    (300, 3)
    """

    def __init__(
        self,
        n_classes: Optional[int] = None,
        *,
        method: Union[str, GEEBackend] = "vectorized",
        laplacian: bool = False,
        n_workers: Optional[int] = None,
        normalize: bool = False,
        layout: Optional[str] = None,
        **backend_options,
    ) -> None:
        if isinstance(method, GEEBackend):
            if n_workers is not None or backend_options:
                raise TypeError(
                    "n_workers / backend options cannot be combined with an "
                    "already-constructed backend instance; construct the "
                    "backend with those options instead"
                )
            self._backend = method
            self.method = type(method).name
        else:
            try:
                canonical = resolve_backend_name(method)
            except ValueError:
                raise ValueError(
                    f"unknown method {method!r}; available: {list_backends()}"
                ) from None
            self._backend = get_backend(canonical, n_workers=n_workers, **backend_options)
            self.method = canonical
        self.n_classes = n_classes
        self.laplacian = laplacian
        self.n_workers = n_workers
        self.normalize = normalize
        self.layout = layout
        # Fitted state
        self.result_: Optional[EmbeddingResult] = None
        self.labels_: Optional[np.ndarray] = None
        self.is_fitted_: bool = False
        self._scales_: Optional[np.ndarray] = None
        # Streaming (partial_fit) state: raw, un-scaled class sums, plus a
        # per-vertex "touched by an ingested edge" mask guarding label edits.
        self._stream_sums_: Optional[np.ndarray] = None
        self._stream_labels_: Optional[np.ndarray] = None
        self._stream_touched_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _prepare_graph(self, graph: GraphLike) -> Graph:
        g = Graph.coerce(graph)
        return g.laplacian if self.laplacian else g

    def _reset_stream(self) -> None:
        self._stream_sums_ = None
        self._stream_labels_ = None
        self._stream_touched_ = None

    def fit(
        self,
        graph: GraphLike,
        labels: np.ndarray,
        *,
        chunk_edges: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> "GraphEncoderEmbedding":
        """Semi-supervised fit: embed using the given (partial) labels.

        ``graph`` is any graph-like input; passing a
        :class:`~repro.graph.facade.Graph` lets repeated fits reuse its
        cached views *and* its compiled :class:`~repro.core.plan.EmbedPlan`
        — fits after the first on the same ``(graph, K)`` skip edge
        validation, index building and output allocation entirely.

        Out-of-core fits: pass a
        :class:`~repro.graph.io.ChunkedEdgeSource` as ``graph`` (the edges
        are streamed from their memory-mapped store, never materialised), or
        set ``chunk_edges`` / ``memory_budget_bytes`` on an in-memory input
        to bound the edge pass's temporary working set.  Both require a
        backend whose capabilities declare ``supports_chunked``
        (``vectorized``, ``sparse``, ``parallel``).
        """
        from ..graph.io import ChunkedEdgeSource

        if isinstance(graph, ChunkedEdgeSource):
            if self.laplacian:
                raise ValueError(
                    "laplacian=True is not supported with a ChunkedEdgeSource: "
                    "the reweighting needs a degree pass over the whole graph"
                )
            if self.layout in ("sorted", "blocked"):
                raise ValueError(
                    f"layout={self.layout!r} is not available for a standalone "
                    "ChunkedEdgeSource (it streams in stored order and may be "
                    "larger than RAM, so it cannot be re-permuted); pass an "
                    "in-memory graph, or drop the layout request"
                )
            source = graph
            if chunk_edges is not None or memory_budget_bytes is not None:
                source = source.reblocked(
                    chunk_edges=chunk_edges, memory_budget_bytes=memory_budget_bytes
                )
            y, k = validate_labels(labels, source.n_vertices, self.n_classes)
            from .plan import ChunkedPlan

            result = self._backend.embed_with_plan(ChunkedPlan(source, k), y)
        else:
            g = Graph.coerce(graph)
            if g.n_vertices == 0:
                raise ValueError("GEE requires at least one vertex")
            work = g.laplacian if self.laplacian else g
            y, k = validate_labels(labels, g.n_vertices, self.n_classes)
            layout = self.layout
            if layout == "auto" and not type(self._backend).capabilities.supports_layout:
                # "Pick for me" must resolve to a layout this backend can
                # execute; backends without the fused kernels run their
                # classic arrival-order paths.
                layout = None
            plan = work.plan(
                k,
                chunk_edges=chunk_edges,
                memory_budget_bytes=memory_budget_bytes,
                layout=layout,
            )
            result = self._backend.embed_with_plan(plan, y)
        # Detach: plan-based embeddings view the plan's reused output
        # buffer, which the next fit on the same (graph, K) overwrites.
        self.result_ = result.detached()
        self.labels_ = y
        self.n_classes = k
        self._scales_ = projection_scales(y, k)
        self._reset_stream()
        self.is_fitted_ = True
        return self

    def fit_transform(self, graph: GraphLike, labels: np.ndarray) -> np.ndarray:
        """Fit on ``graph`` and return the ``(n, K)`` embedding."""
        return self.fit(graph, labels).embedding_

    def fit_unsupervised(
        self,
        graph: GraphLike,
        *,
        max_iterations: int = 20,
        seed: Optional[int] = 0,
        chunk_edges: Optional[int] = None,
    ) -> "GraphEncoderEmbedding":
        """Unsupervised fit via the embed → cluster → re-embed loop.

        ``chunk_edges`` bounds the temporary working set of the loop's full
        embedding passes (see :func:`~repro.core.refinement.gee_unsupervised`);
        the delta passes already touch only changed edges.
        """
        if self.n_classes is None:
            raise ValueError("n_classes must be set for unsupervised fitting")
        work = self._prepare_graph(graph)
        refinement = gee_unsupervised(
            work,
            self.n_classes,
            max_iterations=max_iterations,
            implementation=self._backend,
            seed=seed,
            chunk_edges=chunk_edges,
        )
        self.result_ = refinement.final
        self.labels_ = refinement.labels
        self._scales_ = projection_scales(refinement.labels, self.n_classes)
        self._reset_stream()
        self.is_fitted_ = True
        return self

    # ------------------------------------------------------------------ #
    # Out-of-sample transform
    # ------------------------------------------------------------------ #
    def transform(
        self,
        edges: GraphLike,
        vertices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Embed out-of-sample vertices from their incident edges.

        Runs one GEE edge pass over *only* the given edges, using the
        fitted labels and projection scales.  New vertices are any vertex
        ids at or beyond the fitted vertex count; they are treated as
        unlabelled, so the fitted vertices' class counts (and therefore
        their embedding rows) are untouched — exactly what a full-batch
        refit with the new vertices unlabelled would produce.

        Parameters
        ----------
        edges:
            Graph-like set of edges incident to the new vertices.  Edge
            weights are used as given (no Laplacian reweighting is applied:
            out-of-sample degrees are unknown, so ``laplacian=True`` models
            reject ``transform``).
        vertices:
            Vertex ids whose embedding rows to return.  Defaults to every
            out-of-sample id (``n_fitted .. max_endpoint``) in order.

        Returns
        -------
        ``(len(vertices), K)`` embedding rows (row-normalised if the
        estimator was configured with ``normalize=True``).
        """
        self._check_fitted()
        if self.laplacian:
            raise ValueError(
                "transform is not supported with laplacian=True: Laplacian "
                "reweighting needs the degrees of the combined graph, which "
                "out-of-sample edges change"
            )
        assert self.labels_ is not None and self._scales_ is not None
        new = as_edgelist(edges)
        k = int(self.n_classes)  # type: ignore[arg-type]
        n_fit = int(self.labels_.shape[0])
        n_total = max(new.n_vertices, n_fit)

        y_ext = np.full(n_total, UNKNOWN_LABEL, dtype=np.int64)
        y_ext[:n_fit] = self.labels_
        scales_ext = np.zeros(n_total, dtype=np.float64)
        scales_ext[:n_fit] = self._scales_

        Z_flat = np.zeros(n_total * k, dtype=np.float64)
        accumulate_edges_vectorized(
            Z_flat, new.src, new.dst, new.effective_weights(), y_ext, scales_ext, k
        )
        Z = Z_flat.reshape(n_total, k)
        if self.normalize:
            norms = np.linalg.norm(Z, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            Z = Z / norms
        if vertices is None:
            vertices = np.arange(n_fit, n_total, dtype=np.int64)
        vertices = np.asarray(vertices, dtype=np.int64)
        return Z[vertices]

    # ------------------------------------------------------------------ #
    # Streaming ingestion
    # ------------------------------------------------------------------ #
    def _ensure_stream_state(self) -> None:
        """Initialise the streaming sums (from a batch fit when present)."""
        if self._stream_sums_ is None:
            if self.is_fitted_ and self.result_ is not None and self.labels_ is not None:
                # Continue streaming from a batch fit: recover raw sums.
                k = int(self.n_classes)  # type: ignore[arg-type]
                counts = class_counts(self.labels_, k).astype(np.float64)
                self._stream_sums_ = self.result_.embedding * counts[None, :]
                self._stream_labels_ = np.asarray(self.labels_, dtype=np.int64).copy()
                # The fitted graph's edges are gone; conservatively freeze
                # every fitted vertex's label.
                self._stream_touched_ = np.ones(self._stream_labels_.shape[0], dtype=bool)
            else:
                # With an explicit n_classes (or labels arriving with this
                # call), streaming may start unlabelled.
                self._stream_labels_ = np.empty(0, dtype=np.int64)
                self._stream_sums_ = np.zeros((0, 0), dtype=np.float64)
                self._stream_touched_ = np.zeros(0, dtype=bool)

    def _merge_stream_labels(self, labels: Optional[np.ndarray]) -> None:
        """Merge a (possibly extended) label vector into the stream state."""
        if labels is not None:
            y_new = np.asarray(labels)
            y_new, k = validate_labels(y_new, y_new.shape[0], self.n_classes)
            old = self._stream_labels_
            touched = self._stream_touched_
            assert old is not None and touched is not None
            if y_new.shape[0] < old.shape[0]:
                raise ValueError(
                    f"labels may only be extended: got {y_new.shape[0]} labels for "
                    f"{old.shape[0]} already-ingested vertices"
                )
            # Only vertices that an ingested edge has touched are frozen:
            # their past contributions were accumulated under the old label.
            # Padding vertices no edge has reached may be (re)labelled freely.
            frozen = touched & (y_new[: old.shape[0]] != old)
            if np.any(frozen):
                raise ValueError(
                    "labels of already-ingested vertices must not change between "
                    "partial_fit calls (their edges were accumulated under the "
                    f"previous labels); offending vertices: "
                    f"{np.flatnonzero(frozen)[:10].tolist()}"
                )
            self._stream_labels_ = y_new
            self.n_classes = k
        if self.n_classes is None:
            raise ValueError(
                "n_classes could not be determined; pass labels or set n_classes"
            )

    def _grow_stream_state(self, n_needed: int) -> None:
        """Grow labels / touched mask / sums to cover ``n_needed`` vertices."""
        assert self._stream_labels_ is not None and self._stream_sums_ is not None
        assert self._stream_touched_ is not None
        k = int(self.n_classes)  # type: ignore[arg-type]
        if self._stream_labels_.shape[0] < n_needed:
            grown = np.full(n_needed, UNKNOWN_LABEL, dtype=np.int64)
            grown[: self._stream_labels_.shape[0]] = self._stream_labels_
            self._stream_labels_ = grown
        if self._stream_touched_.shape[0] < n_needed:
            grown_touched = np.zeros(n_needed, dtype=bool)
            grown_touched[: self._stream_touched_.shape[0]] = self._stream_touched_
            self._stream_touched_ = grown_touched
        if self._stream_sums_.shape != (n_needed, k):
            grown_sums = np.zeros((n_needed, k), dtype=np.float64)
            rows, cols = self._stream_sums_.shape
            grown_sums[:rows, :cols] = self._stream_sums_
            self._stream_sums_ = grown_sums

    def _finalise_stream(self, t0: float) -> "GraphEncoderEmbedding":
        """Divide the raw sums by current class counts and rebuild W."""
        assert self._stream_labels_ is not None and self._stream_sums_ is not None
        k = int(self.n_classes)  # type: ignore[arg-type]
        counts = class_counts(self._stream_labels_, k).astype(np.float64)
        inv = inverse_class_counts(counts)
        Z = self._stream_sums_ * inv[None, :]
        scales = projection_scales(self._stream_labels_, k)
        W = projection_from_scales(self._stream_labels_, scales, k)
        self.result_ = EmbeddingResult(
            embedding=Z,
            projection=W,
            timings={"total": time.perf_counter() - t0},
            method="gee-streaming",
            n_workers=1,
        )
        self.labels_ = self._stream_labels_
        self._scales_ = scales
        self.is_fitted_ = True
        return self

    def partial_fit(
        self,
        edges: GraphLike,
        labels: Optional[np.ndarray] = None,
        *,
        remove: bool = False,
    ) -> "GraphEncoderEmbedding":
        """Ingest (or retract) one batch of edges, updating incrementally.

        The estimator accumulates the *raw* per-class weight sums
        ``S[u, c] = Σ w`` over ingested edges and keeps class counts
        separate, so the embedding ``Z[:, c] = S[:, c] / count_c`` after any
        number of batches equals a full-batch :meth:`fit` on the union of
        the batches (up to floating-point summation order).

        Parameters
        ----------
        edges:
            Graph-like batch of edges.  New vertex ids grow the embedding.
        labels:
            Full label vector covering every vertex seen so far (may extend
            the previous vector for newly arrived vertices; ``-1`` =
            unknown).  Required on the first call unless the estimator was
            batch-fitted first, in which case streaming continues from the
            fitted state.  Labels of already-ingested vertices must not
            change — their edges were accumulated under the old label.
        remove:
            Retract the batch instead of ingesting it: each edge's
            contribution is *subtracted* from the raw sums — the inverse of
            a previous ingestion of the same edges (with the same weights).
            The caller asserts the edges were previously streamed in; the
            estimator has no edge store to verify against (use
            :class:`repro.stream.DynamicGraph` +
            :meth:`update` for checked removals).

        Notes
        -----
        A vertex must carry its final label before the first batch
        containing its incident edges: contributions of an edge are
        accumulated under the labels known at ingestion time.
        """
        if self.laplacian:
            raise ValueError(
                "partial_fit is not supported with laplacian=True: streamed "
                "edges change the degrees the reweighting depends on"
            )
        t0 = time.perf_counter()
        batch = as_edgelist(edges)
        if (
            self._stream_sums_ is None
            and not self.is_fitted_
            and labels is None
            and self.n_classes is None
        ):
            raise ValueError(
                "the first partial_fit call must provide labels or the "
                "estimator must be constructed with n_classes (or follow "
                "a batch fit to continue streaming from it)"
            )
        self._ensure_stream_state()
        self._merge_stream_labels(labels)
        k = int(self.n_classes)  # type: ignore[arg-type]
        n_needed = max(batch.n_vertices, self._stream_labels_.shape[0])
        self._grow_stream_state(n_needed)

        # Accumulate the batch's raw (un-scaled) class sums: the shared
        # vectorised kernel with scales=None computes S[u, Y[v]] += w
        # (negated weights retract a previously-ingested batch).
        w = batch.effective_weights()
        accumulate_edges_vectorized(
            self._stream_sums_.reshape(-1),
            batch.src,
            batch.dst,
            -w if remove else w,
            self._stream_labels_,
            None,
            k,
        )
        self._stream_touched_[batch.src] = True
        self._stream_touched_[batch.dst] = True
        return self._finalise_stream(t0)

    def update(
        self,
        delta,
        labels: Optional[np.ndarray] = None,
    ) -> "GraphEncoderEmbedding":
        """Apply a committed mutation batch to the streamed embedding.

        ``delta`` is a :class:`~repro.stream.mutations.MutationDelta` (what
        :meth:`repro.stream.DynamicGraph.commit` returns): additions are
        ingested, removals retracted with the weights the removed instances
        actually carried, and weight updates applied as ``new − old`` — one
        O(Δ) patch through the backend's ``patch_sums`` kernel when its
        capabilities declare ``supports_incremental`` (the shared vectorised
        kernel otherwise).  ``labels`` may extend the vector for vertices
        the delta added.

        Requires streaming state (a previous :meth:`fit` /
        :meth:`partial_fit`); for a fully-managed live embedding use
        :class:`repro.stream.IncrementalEmbedding`.
        """
        from ..stream.mutations import MutationDelta

        if not isinstance(delta, MutationDelta):
            raise TypeError(
                f"update applies a MutationDelta (from DynamicGraph.commit), "
                f"got {type(delta)!r}; use partial_fit for plain edge batches"
            )
        if self.laplacian:
            raise ValueError(
                "update is not supported with laplacian=True: mutations "
                "change the degrees the reweighting depends on"
            )
        if self._stream_sums_ is None and not self.is_fitted_:
            raise RuntimeError(
                "update requires a fitted or streaming estimator; call fit "
                "or partial_fit first"
            )
        t0 = time.perf_counter()
        self._ensure_stream_state()
        self._merge_stream_labels(labels)
        k = int(self.n_classes)  # type: ignore[arg-type]
        n_needed = max(delta.n_vertices_after, self._stream_labels_.shape[0])
        self._grow_stream_state(n_needed)

        src, dst, dw = delta.patch_edges()
        if src.size:
            if type(self._backend).capabilities.supports_incremental:
                self._backend.patch_sums(
                    self._stream_sums_.reshape(-1), src, dst, dw,
                    self._stream_labels_, k,
                )
            else:
                accumulate_edges_vectorized(
                    self._stream_sums_.reshape(-1), src, dst, dw,
                    self._stream_labels_, None, k,
                )
            self._stream_touched_[src] = True
            self._stream_touched_[dst] = True
        return self._finalise_stream(t0)

    # ------------------------------------------------------------------ #
    # Fitted attributes
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> EmbeddingResult:
        if not self.is_fitted_ or self.result_ is None:
            raise RuntimeError("this GraphEncoderEmbedding instance is not fitted yet")
        return self.result_

    @property
    def backend_(self) -> GEEBackend:
        """The resolved execution backend instance."""
        return self._backend

    @property
    def embedding_(self) -> np.ndarray:
        """The fitted ``(n, K)`` embedding (row-normalised if configured)."""
        result = self._check_fitted()
        return result.normalized() if self.normalize else result.embedding

    @property
    def projection_(self) -> np.ndarray:
        """The fitted projection matrix ``W``."""
        return self._check_fitted().projection

    @property
    def timings_(self) -> Dict[str, float]:
        """Phase timings of the fit."""
        return dict(self._check_fitted().timings)

    # ------------------------------------------------------------------ #
    # Downstream helpers
    # ------------------------------------------------------------------ #
    def class_centroids(self) -> np.ndarray:
        """Mean embedding of the labelled vertices of each class."""
        result = self._check_fitted()
        assert self.labels_ is not None and self.n_classes is not None
        Z = result.normalized() if self.normalize else result.embedding
        centroids = np.zeros((self.n_classes, Z.shape[1]), dtype=np.float64)
        for k in range(self.n_classes):
            members = np.flatnonzero(self.labels_ == k)
            if members.size:
                centroids[k] = Z[members].mean(axis=0)
        return centroids

    def predict(self, vertices: Optional[np.ndarray] = None) -> np.ndarray:
        """Nearest-centroid class prediction for the given vertices.

        Labelled vertices keep their given label; unlabelled ones are
        assigned the class whose centroid is nearest in the embedding.
        ``vertices=None`` predicts for every vertex.
        """
        result = self._check_fitted()
        assert self.labels_ is not None
        Z = result.normalized() if self.normalize else result.embedding
        if vertices is None:
            vertices = np.arange(Z.shape[0])
        vertices = np.asarray(vertices, dtype=np.int64)
        centroids = self.class_centroids()
        dists = (
            np.sum(Z[vertices] ** 2, axis=1, keepdims=True)
            - 2.0 * Z[vertices] @ centroids.T
            + np.sum(centroids**2, axis=1)[None, :]
        )
        pred = np.argmin(dists, axis=1).astype(np.int64)
        known = self.labels_[vertices] != UNKNOWN_LABEL
        pred[known] = self.labels_[vertices][known]
        return pred
