"""GEE core: the paper's contribution (four implementations + variants)."""

from .api import METHODS, GraphEncoderEmbedding
from .gee_ligra import UpdateEmbedding, gee_ligra, gee_ligra_with_plan
from .gee_parallel import gee_parallel, gee_parallel_chunked, gee_parallel_with_plan
from .gee_python import gee_python, gee_python_with_plan
from .gee_sparse import gee_sparse, gee_sparse_chunked, gee_sparse_with_plan
from .gee_vectorized import (
    accumulate_edges_vectorized,
    gee_vectorized,
    gee_vectorized_chunked,
    gee_vectorized_with_plan,
)
from .laplacian import gee_laplacian, laplacian_reweight, weighted_total_degrees
from .plan import ChunkedPlan, EmbedPlan, edge_fingerprint
from .projection import (
    build_projection,
    build_projection_parallel,
    projection_from_scales,
    projection_scales,
)
from .refinement import RefinementResult, gee_unsupervised
from .result import EmbeddingResult
from .validation import (
    UNKNOWN_LABEL,
    class_counts,
    infer_n_classes,
    labels_from_paper_convention,
    labels_to_paper_convention,
    validate_edges,
    validate_labels,
)

__all__ = [
    "GraphEncoderEmbedding",
    "METHODS",
    "EmbeddingResult",
    "EmbedPlan",
    "ChunkedPlan",
    "edge_fingerprint",
    "gee_python",
    "gee_python_with_plan",
    "gee_vectorized",
    "gee_vectorized_with_plan",
    "gee_vectorized_chunked",
    "accumulate_edges_vectorized",
    "gee_ligra",
    "gee_ligra_with_plan",
    "UpdateEmbedding",
    "gee_parallel",
    "gee_parallel_with_plan",
    "gee_parallel_chunked",
    "gee_sparse",
    "gee_sparse_with_plan",
    "gee_sparse_chunked",
    "gee_laplacian",
    "laplacian_reweight",
    "weighted_total_degrees",
    "gee_unsupervised",
    "RefinementResult",
    "build_projection",
    "build_projection_parallel",
    "projection_scales",
    "projection_from_scales",
    "UNKNOWN_LABEL",
    "validate_edges",
    "validate_labels",
    "infer_n_classes",
    "class_counts",
    "labels_from_paper_convention",
    "labels_to_paper_convention",
]
