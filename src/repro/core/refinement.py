"""Unsupervised GEE: the embed → cluster → re-embed refinement loop.

When no labels are available, the original GEE paper bootstraps them: start
from a random assignment into ``K`` classes, embed, cluster the embedding
with k-means, use the clusters as the next label vector, and repeat until
the assignment stabilises.  Because each iteration is a single GEE pass plus
a k-means on an ``n×K`` matrix, the whole loop stays linear in the number of
edges — and every iteration can use any of the GEE implementations,
including the parallel one.

Delta-driven iterations
-----------------------
After the first couple of rounds the label assignment is nearly stable —
typically well under 5 % of vertices change per iteration — yet the classic
loop re-embeds the *entire* graph every round.  The delta path (enabled
automatically for implementations known to compute the standard raw-weight
embedding) exploits that the embedding is linear in per-class *raw* edge
sums::

    S[u, c] = Σ_{(u,v) or (v,u) incident, Y[v]=c} w        Z = S · diag(1/n_c)

``S`` depends on the labels only through class membership, so when a vertex
``v`` moves from class ``a`` to class ``b`` just the rows of ``v``'s
neighbours change: ``S[nbr, a] -= w`` and ``S[nbr, b] += w`` for each
incident edge.  One iteration therefore costs ``O(E_changed)`` scatter work
plus the ``O(nK)`` rescale (already paid by k-means anyway) instead of
``O(E)``.  To bound floating-point drift from repeated add/subtract, a full
re-embed runs every ``full_refresh_every`` iterations (and on the first);
the equivalence test asserts the delta path tracks a from-scratch embed to
1e-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from ..graph.facade import Graph, GraphLike
from ..labels.kmeans import kmeans
from ..obs import trace
from .gee_vectorized import gee_vectorized, scatter_add
from .result import EmbeddingResult
from .validation import class_counts, inverse_class_counts

__all__ = ["RefinementResult", "gee_unsupervised"]

SeedLike = Union[None, int, np.random.Generator]


@dataclass
class RefinementResult:
    """Output of the unsupervised refinement loop."""

    embedding: np.ndarray
    labels: np.ndarray
    n_iterations: int
    converged: bool
    history: List[float] = field(default_factory=list)
    final: Optional[EmbeddingResult] = None
    #: How many iterations ran the full O(E) embed vs. the O(E_changed)
    #: delta update (introspection for tests and benchmarks).
    n_full_passes: int = 0
    n_delta_passes: int = 0


def _align_labels(reference: np.ndarray, new: np.ndarray, n_classes: int) -> np.ndarray:
    """Permute ``new``'s cluster ids to best match ``reference``.

    k-means assigns arbitrary cluster ids each round; without alignment the
    loop would never register convergence even when the partition is stable.
    Alignment uses the Hungarian algorithm on the confusion matrix, which is
    built with a single ``bincount`` over the fused index
    ``new·K + reference`` (``np.add.at`` on a 2-D table goes through the
    buffered-ufunc path and is an order of magnitude slower).
    """
    from scipy.optimize import linear_sum_assignment

    table = np.bincount(
        new * n_classes + reference, minlength=n_classes * n_classes
    ).reshape(n_classes, n_classes)
    rows, cols = linear_sum_assignment(-table)
    mapping = np.arange(n_classes, dtype=np.int64)
    mapping[rows] = cols
    return mapping[new]


def _agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of vertices whose label did not change between iterations."""
    if a.size == 0:
        return 1.0
    return float(np.mean(a == b))


def _is_standard_kernel(fn) -> bool:
    """Whether ``fn`` is one of the raw-weight GEE kernels.

    The delta update scatters the graph's *raw* edge weights, which is only
    exact for implementations computing the standard ``Z = S·diag(1/n_c)``
    embedding of the given graph.  Anything that reweights internally
    (e.g. :func:`~repro.core.laplacian.gee_laplacian`) or is an unknown
    callable must not be mixed with raw-weight deltas.
    """
    from .gee_ligra import gee_ligra
    from .gee_parallel import gee_parallel
    from .gee_python import gee_python
    from .gee_sparse import gee_sparse

    return fn in (gee_python, gee_vectorized, gee_sparse, gee_ligra, gee_parallel)


def _resolve_implementation(implementation, impl_kwargs: dict):
    """Normalise ``implementation`` to ``(full_pass, plan_pass, standard)``.

    ``full_pass(graph, y, k)`` always works; ``plan_pass(plan, y)`` is
    non-None for registry backends (which all implement the compiled-plan
    path) and None for bare callables, which keep the historical
    ``(edges, labels, k, **kwargs)`` contract.  ``standard`` reports
    whether the implementation computes the raw-weight GEE embedding the
    delta path is exact for (every registry backend does; bare callables
    only if they are one of the exported standard kernels).
    """
    from ..backends import GEEBackend, get_backend

    if isinstance(implementation, str):
        backend = get_backend(implementation, **impl_kwargs)
        return backend.embed, backend.embed_with_plan, True
    if isinstance(implementation, GEEBackend):
        if impl_kwargs:
            raise TypeError(
                "implementation kwargs cannot be combined with a constructed "
                "backend instance; construct the backend with them instead"
            )
        return implementation.embed, implementation.embed_with_plan, True
    # Bare callables receive the EdgeList, per the historical contract.
    return (
        (lambda graph, y, k: implementation(graph.edges, y, k, **impl_kwargs)),
        None,
        _is_standard_kernel(implementation),
    )


def _gather_incident(indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray,
                     vertices: np.ndarray):
    """Neighbours and weights of every edge in the CSR slices of ``vertices``.

    Returns ``(neighbors, w, owner_repeat)`` where ``owner_repeat[i]`` is
    the position in ``vertices`` owning edge ``i`` — the standard ragged
    gather (one ``arange`` + two ``repeat``s, no Python loop).
    """
    starts = indptr[vertices]
    deg = indptr[vertices + 1] - starts
    total = int(deg.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64), empty
    cum = np.cumsum(deg)
    offsets = np.repeat(starts - np.concatenate(([0], cum[:-1])), deg)
    pos = np.arange(total, dtype=np.int64) + offsets
    owner = np.repeat(np.arange(vertices.size, dtype=np.int64), deg)
    return indices[pos], weights[pos], owner


def _apply_label_delta(
    S_flat: np.ndarray, plan, y_old: np.ndarray, y_new: np.ndarray
) -> int:
    """Update raw class sums ``S`` for the vertices whose label changed.

    For every changed vertex ``c`` and every incident edge ``(c, nbr)`` or
    ``(nbr, c)`` with weight ``w``: ``S[nbr, y_old[c]] -= w`` and
    ``S[nbr, y_new[c]] += w``.  Both edge directions are walked through the
    plan's CSR (out-edges) and CSC (in-edges) views; the subtract and add
    are fused into one scatter.  Returns the number of edge endpoints
    touched (the ``O(E_changed)`` work actually done).

    Assumes fully-known labels (the refinement loop's invariant — k-means
    assigns every vertex a class).
    """
    changed = np.flatnonzero(y_new != y_old)
    if changed.size == 0:
        return 0
    k = plan.n_classes
    csr = plan.csr
    touched = 0
    for indptr, indices, weights in (
        (csr.indptr, csr.indices, csr.weights),
        (csr.in_indptr, csr.in_indices, csr.in_weights),
    ):
        nbr, w, owner = _gather_incident(indptr, indices, weights, changed)
        if nbr.size == 0:
            continue
        touched += nbr.size
        base = nbr * k
        flat = np.concatenate((base + y_old[changed][owner], base + y_new[changed][owner]))
        delta = np.concatenate((-w, w))
        scatter_add(S_flat, flat, delta)
    return touched


def gee_unsupervised(
    edges: GraphLike,
    n_classes: int,
    *,
    max_iterations: int = 20,
    convergence_fraction: float = 0.999,
    implementation: Union[str, Callable[..., EmbeddingResult]] = gee_vectorized,
    seed: SeedLike = 0,
    initial_labels: Optional[np.ndarray] = None,
    normalize: bool = True,
    delta: Union[bool, str] = "auto",
    full_refresh_every: int = 10,
    delta_threshold: float = 0.5,
    chunk_edges: Optional[int] = None,
    **impl_kwargs,
) -> RefinementResult:
    """Iteratively refine labels and embedding without supervision.

    Parameters
    ----------
    edges:
        The graph (symmetrised for undirected data), as any graph-like
        input.  The facade's cached views — and, for registry backends, its
        compiled :class:`~repro.core.plan.EmbedPlan` — are shared by every
        iteration, so no per-round validation or adjacency rebuilding
        happens.  A :class:`~repro.stream.dynamic.DynamicGraph` is also
        accepted: the loop runs on its current snapshot and *carries its
        state across versions* — the converged labels are stored on the
        dynamic graph, and the next ``gee_unsupervised`` call on it (after
        more commits) warm-starts from them instead of a random
        assignment, so refinement over a drifting graph converges in a
        couple of iterations per version instead of starting cold.
    n_classes:
        Number of clusters / embedding dimensions ``K``.
    max_iterations:
        Cap on the number of embed-cluster rounds.
    convergence_fraction:
        Stop when at least this fraction of vertices keeps its label between
        consecutive rounds.
    implementation:
        Which GEE implementation performs the *full* embedding passes: a
        registered backend name (``"vectorized"``, ``"parallel"``, ...), a
        :class:`~repro.backends.GEEBackend` instance, or a bare callable
        with the ``(edges, labels, n_classes, **kwargs)`` signature.
    initial_labels:
        Optional warm start (e.g. from
        :func:`repro.labels.leiden.leiden_communities`); random otherwise.
    normalize:
        Row-normalise the embedding before clustering (recommended by the
        original GEE paper; keeps hubs from dominating the k-means).
    delta:
        Use the incremental O(E_changed) update for iterations after the
        first (see the module docstring).  The default ``"auto"`` enables
        it only for implementations known to compute the standard
        raw-weight GEE embedding (every registry backend, and the exported
        ``gee_*`` kernels) — the delta scatter replays raw edge weights,
        so mixing it with an internally-reweighting implementation (e.g.
        ``gee_laplacian``) or an arbitrary callable would corrupt the
        embedding.  ``True`` forces it on (you assert compatibility);
        ``False`` restores the classic full re-embed per round.
    full_refresh_every:
        With ``delta=True``, run an exact full re-embed every this many
        iterations to cancel accumulated floating-point drift.
    delta_threshold:
        With ``delta=True``, fall back to a full re-embed for any iteration
        in which more than this fraction of vertices changed label — the
        delta scatter walks every incident edge twice (subtract + add), so
        above roughly half the vertices it does more memory traffic than
        the full pass.  The early chaotic rounds of a random start
        therefore run full; the delta path takes over once the assignment
        settles.
    chunk_edges:
        Run the *full* embedding passes (the first iteration, periodic
        refreshes and threshold fallbacks) through the out-of-core chunked
        plan with this block size, bounding their temporary working set;
        the delta passes already touch only the edges of changed vertices.
        Requires a registry-backend ``implementation`` whose capabilities
        declare ``supports_chunked``.  Note the delta path still builds the
        graph's in-memory CSR — combine ``chunk_edges`` with
        ``delta=False`` when that view must not be materialised.
    """
    from ..stream.dynamic import DynamicGraph

    dynamic: Optional[DynamicGraph] = None
    if isinstance(edges, DynamicGraph):
        dynamic = edges
        graph = dynamic.graph
        if initial_labels is None and dynamic.refinement_state is not None:
            _, carried = dynamic.refinement_state
            if carried.shape[0] <= graph.n_vertices:
                # Warm start from the previous version's converged labels;
                # vertices added since arrive as -1 (randomised below).
                initial_labels = np.full(graph.n_vertices, -1, dtype=np.int64)
                initial_labels[: carried.shape[0]] = carried
    else:
        graph = Graph.coerce(edges)
    if graph.n_vertices == 0:
        raise ValueError("GEE requires at least one vertex")
    if n_classes <= 0:
        raise ValueError("n_classes must be positive")
    if not 0 < convergence_fraction <= 1:
        raise ValueError("convergence_fraction must be in (0, 1]")
    if full_refresh_every <= 0:
        raise ValueError("full_refresh_every must be positive")
    if not 0 < delta_threshold <= 1:
        raise ValueError("delta_threshold must be in (0, 1]")
    full_pass, plan_pass, standard = _resolve_implementation(implementation, impl_kwargs)
    if delta == "auto":
        delta = standard
    elif delta not in (True, False):
        raise ValueError('delta must be True, False or "auto"')
    delta = bool(delta)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    n = graph.n_vertices
    k = int(n_classes)

    if initial_labels is not None:
        labels = np.asarray(initial_labels, dtype=np.int64).copy()
        if labels.shape[0] != n:
            raise ValueError("initial_labels must have one entry per vertex")
        labels = np.where(labels < 0, rng.integers(0, k, size=n), labels)
        labels = np.minimum(labels, k - 1)
    else:
        labels = rng.integers(0, k, size=n).astype(np.int64)

    # The plan carries the CSR/CSC views the delta scatter walks, and lets
    # registry backends run their zero-validation full passes.
    plan = graph.plan(k) if (delta or plan_pass is not None) else None
    if chunk_edges is not None:
        if plan_pass is None:
            # The default implementation is the bare gee_vectorized callable
            # (the historical contract); its registry backend runs the same
            # kernel through the chunked plan, so map it rather than reject.
            if implementation is gee_vectorized and not impl_kwargs:
                full_pass, plan_pass, standard = _resolve_implementation(
                    "vectorized", {}
                )
            else:
                raise ValueError(
                    "chunk_edges requires a registry-backend implementation "
                    "(a name or GEEBackend instance), not a bare callable"
                )
        # Full passes stream in bounded blocks; the delta path keeps the
        # regular plan (it walks the CSR/CSC views, not the edge stream).
        full_plan = graph.plan(k, chunk_edges=chunk_edges)
    else:
        full_plan = plan

    def run_full(y: np.ndarray) -> EmbeddingResult:
        if plan_pass is not None and full_plan is not None:
            return plan_pass(full_plan, y)
        return full_pass(graph, y, k)

    history: List[float] = []
    converged = False
    result: Optional[EmbeddingResult] = None
    n_full = n_delta = 0
    #: Raw class sums S (flat) and the labels they were computed under.
    S_flat: Optional[np.ndarray] = None
    labels_of_S: Optional[np.ndarray] = None
    counts = np.empty(0)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        refresh_due = (iteration - 1) % full_refresh_every == 0
        too_many_changed = (
            S_flat is not None
            and labels_of_S is not None
            and float(np.mean(labels != labels_of_S)) > delta_threshold
        )
        if not delta or S_flat is None or refresh_due or too_many_changed:
            reason = (
                "cold"
                if S_flat is None
                else ("threshold" if too_many_changed else "scheduled")
            )
            with trace("refinement.full_pass", iteration=iteration, reason=reason):
                result = run_full(labels)
            n_full += 1
            if delta:
                counts = class_counts(labels, k).astype(np.float64)
                # Recover raw sums from the scaled embedding: Z = S/n_c.
                S_flat = (result.embedding * counts[None, :]).ravel()
                labels_of_S = labels.copy()
            Z = result.embedding
        else:
            assert labels_of_S is not None
            with trace(
                "refinement.delta_pass",
                iteration=iteration,
                changed=int(np.count_nonzero(labels != labels_of_S)),
            ):
                _apply_label_delta(S_flat, plan, labels_of_S, labels)
            labels_of_S = labels.copy()
            n_delta += 1
            inv = inverse_class_counts(class_counts(labels, k))
            Z = S_flat.reshape(n, k) * inv[None, :]
            result = EmbeddingResult(
                embedding=Z,
                projection_builder=lambda y=labels.copy(): _projection_for(y, k),
                timings={},
                method="gee-delta",
                n_workers=1,
            )
        X = result.normalized() if normalize else Z
        km = kmeans(X, k, seed=rng)
        new_labels = _align_labels(labels, km.labels, k)
        agreement = _agreement(labels, new_labels)
        history.append(agreement)
        labels = new_labels
        if agreement >= convergence_fraction:
            converged = True
            break

    assert result is not None
    # Plan-based results view the plan's reused buffer; detach so the
    # returned embedding survives later embeds on the same graph.
    result = result.detached()
    if dynamic is not None:
        dynamic.refinement_state = (dynamic.version, labels.copy())
    return RefinementResult(
        embedding=result.embedding,
        labels=labels,
        n_iterations=iteration,
        converged=converged,
        history=history,
        final=result,
        n_full_passes=n_full,
        n_delta_passes=n_delta,
    )


def _projection_for(labels: np.ndarray, n_classes: int) -> np.ndarray:
    from .projection import projection_from_scales, projection_scales

    scales = projection_scales(labels, n_classes)
    return projection_from_scales(labels, scales, n_classes)
