"""Unsupervised GEE: the embed → cluster → re-embed refinement loop.

When no labels are available, the original GEE paper bootstraps them: start
from a random assignment into ``K`` classes, embed, cluster the embedding
with k-means, use the clusters as the next label vector, and repeat until
the assignment stabilises.  Because each iteration is a single GEE pass plus
a k-means on an ``n×K`` matrix, the whole loop stays linear in the number of
edges — and every iteration can use any of the GEE implementations,
including the parallel one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from ..graph.facade import Graph, GraphLike
from ..labels.kmeans import kmeans
from .gee_vectorized import gee_vectorized
from .result import EmbeddingResult

__all__ = ["RefinementResult", "gee_unsupervised"]

SeedLike = Union[None, int, np.random.Generator]


@dataclass
class RefinementResult:
    """Output of the unsupervised refinement loop."""

    embedding: np.ndarray
    labels: np.ndarray
    n_iterations: int
    converged: bool
    history: List[float] = field(default_factory=list)
    final: Optional[EmbeddingResult] = None


def _align_labels(reference: np.ndarray, new: np.ndarray, n_classes: int) -> np.ndarray:
    """Permute ``new``'s cluster ids to best match ``reference``.

    k-means assigns arbitrary cluster ids each round; without alignment the
    loop would never register convergence even when the partition is stable.
    Alignment uses the Hungarian algorithm on the confusion matrix.
    """
    from scipy.optimize import linear_sum_assignment

    table = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(table, (new, reference), 1)
    rows, cols = linear_sum_assignment(-table)
    mapping = np.arange(n_classes, dtype=np.int64)
    mapping[rows] = cols
    return mapping[new]


def _agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of vertices whose label did not change between iterations."""
    if a.size == 0:
        return 1.0
    return float(np.mean(a == b))


def _resolve_implementation(implementation, impl_kwargs: dict):
    """Normalise the ``implementation`` argument to ``f(graph, y, k)``.

    Registered backend names and :class:`~repro.backends.GEEBackend`
    instances go through the registry (kwargs validate at construction);
    bare callables keep the historical ``(edges, labels, k, **kwargs)``
    contract.
    """
    from ..backends import GEEBackend, get_backend

    if isinstance(implementation, str):
        backend = get_backend(implementation, **impl_kwargs)
        return backend.embed
    if isinstance(implementation, GEEBackend):
        if impl_kwargs:
            raise TypeError(
                "implementation kwargs cannot be combined with a constructed "
                "backend instance; construct the backend with them instead"
            )
        return implementation.embed
    # Bare callables receive the EdgeList, per the historical contract.
    return lambda graph, y, k: implementation(graph.edges, y, k, **impl_kwargs)


def gee_unsupervised(
    edges: GraphLike,
    n_classes: int,
    *,
    max_iterations: int = 20,
    convergence_fraction: float = 0.999,
    implementation: Union[str, Callable[..., EmbeddingResult]] = gee_vectorized,
    seed: SeedLike = 0,
    initial_labels: Optional[np.ndarray] = None,
    normalize: bool = True,
    **impl_kwargs,
) -> RefinementResult:
    """Iteratively refine labels and embedding without supervision.

    Parameters
    ----------
    edges:
        The graph (symmetrised for undirected data), as any graph-like
        input.  The facade's cached CSR view is shared by every iteration,
        so CSR-consuming backends build the adjacency once per refinement
        rather than once per round.
    n_classes:
        Number of clusters / embedding dimensions ``K``.
    max_iterations:
        Cap on the number of embed-cluster rounds.
    convergence_fraction:
        Stop when at least this fraction of vertices keeps its label between
        consecutive rounds.
    implementation:
        Which GEE implementation performs each embedding pass: a registered
        backend name (``"vectorized"``, ``"parallel"``, ...), a
        :class:`~repro.backends.GEEBackend` instance, or a bare callable
        with the ``(edges, labels, n_classes, **kwargs)`` signature.
    initial_labels:
        Optional warm start (e.g. from
        :func:`repro.labels.leiden.leiden_communities`); random otherwise.
    normalize:
        Row-normalise the embedding before clustering (recommended by the
        original GEE paper; keeps hubs from dominating the k-means).
    """
    graph = Graph.coerce(edges)
    if graph.n_vertices == 0:
        raise ValueError("GEE requires at least one vertex")
    if n_classes <= 0:
        raise ValueError("n_classes must be positive")
    if not 0 < convergence_fraction <= 1:
        raise ValueError("convergence_fraction must be in (0, 1]")
    embed_pass = _resolve_implementation(implementation, impl_kwargs)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    n = graph.n_vertices

    if initial_labels is not None:
        labels = np.asarray(initial_labels, dtype=np.int64).copy()
        if labels.shape[0] != n:
            raise ValueError("initial_labels must have one entry per vertex")
        labels = np.where(labels < 0, rng.integers(0, n_classes, size=n), labels)
        labels = np.minimum(labels, n_classes - 1)
    else:
        labels = rng.integers(0, n_classes, size=n).astype(np.int64)

    history: List[float] = []
    converged = False
    result: Optional[EmbeddingResult] = None
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        result = embed_pass(graph, labels, n_classes)
        X = result.normalized() if normalize else result.embedding
        km = kmeans(X, n_classes, seed=rng)
        new_labels = _align_labels(labels, km.labels, n_classes)
        agreement = _agreement(labels, new_labels)
        history.append(agreement)
        labels = new_labels
        if agreement >= convergence_fraction:
            converged = True
            break

    assert result is not None
    return RefinementResult(
        embedding=result.embedding,
        labels=labels,
        n_iterations=iteration,
        converged=converged,
        history=history,
        final=result,
    )
