"""Compiled embed plans: the Y-independent half of a GEE call, done once.

Profiling repeated ``embed()`` calls on one graph (backend sweeps, worker
sweeps, the unsupervised refinement loop) shows the timed region paying for
work whose result never changes between calls: edge validation, the
``u*K`` / ``v*K`` flat scatter indices, CSR/CSC adjacency views, degree
vectors and the ``n×K`` output allocation are all functions of the graph
and ``K`` alone — only the label vector varies.  The paper's own protocol
never pays these costs (Ligra times an already-loaded graph), so neither
should ours.

:class:`EmbedPlan` is the compiled artifact holding all of it.  Plans are
cached on the :class:`~repro.graph.facade.Graph` facade via
``graph.plan(K)`` — one plan per ``(graph, K)`` — and every registered
backend exposes ``embed_with_plan(plan, labels)`` (see
:meth:`repro.backends.GEEBackend.embed_with_plan`), which performs *zero*
edge validation, *zero* index rebuilding and *zero* large allocations per
call.

Two sharp edges, both documented on the methods involved:

* the plan's output buffer is reused — the embedding returned by
  ``embed_with_plan`` is valid until the next plan-based call on the same
  plan (use :meth:`~repro.core.result.EmbeddingResult.detached` to keep
  one);
* cache invalidation after *in-place* mutation of the underlying edge
  arrays is best-effort, via a sampled fingerprint (see
  :func:`edge_fingerprint`).  Replacing the arrays or building a new
  ``Graph`` is always detected.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..analysis.annotations import hot_path
from .validation import validate_edges, validate_labels

__all__ = [
    "EmbedPlan",
    "ChunkedPlan",
    "FusedLayout",
    "LAYOUTS",
    "choose_index_dtype",
    "compile_fused_layout",
    "edge_fingerprint",
    "csr_fingerprint",
    "edge_fingerprint_full",
    "csr_fingerprint_full",
]

#: Number of evenly-spaced edge samples hashed into the fingerprint.
_FINGERPRINT_SAMPLES = 32

#: The memory layouts a plan can compile its edge arrays into.  ``"none"``
#: preserves arrival order (the historical, layout-preserving default);
#: ``"sorted"`` and ``"blocked"`` permute for scatter locality (see
#: :class:`FusedLayout`); ``"auto"`` lets the calibrated cost model pick.
LAYOUTS = ("none", "sorted", "blocked")

#: Flat scatter indices narrow to int32 below this ``n * K`` bound — the
#: index arrays are the dominant per-edge read traffic of the fused kernel,
#: so halving their width halves index bandwidth.  Above the bound a flat
#: index no longer fits a signed 32-bit integer and int64 is required.
_INT32_LIMIT = 2**31

#: Target size in bytes of one row block's output slice.  Each block's
#: scatter window (``rows_per_block * K`` float64 slots) is sized to stay
#: resident in a typical L2 cache, so the block-local ``np.bincount``
#: writes never leave it.
_LAYOUT_BLOCK_BYTES = 1 << 18


def choose_index_dtype(n_vertices: int, n_classes: int, *, limit: int = _INT32_LIMIT):
    """The narrowest integer dtype that can hold every flat index ``< n*K``.

    int32 when ``n_vertices * n_classes < limit`` (every flat scatter index
    is in ``[0, n*K)``), int64 otherwise.  The product is computed in Python
    integers, so the decision itself can never overflow.
    """
    if int(n_vertices) * int(n_classes) < limit:
        return np.int32
    return np.int64


class FusedLayout:
    """Locality-optimized incidence arrays for the GEE edge pass.

    The edge pass updates ``Z[u, Y[v]] += scale[v]·w`` and
    ``Z[v, Y[u]] += scale[u]·w`` per edge — two scatter halves whose flat
    targets are effectively random in arrival order.  The fused layout
    rewrites the pass as **one** array of ``2E`` incidences
    ``(owner, partner, w)`` (each edge appears twice, once per endpoint as
    owner), permuted at compile time so scatter targets are cache-local:

    * ``layout="sorted"`` — incidences fully sorted by owner row; flat
      targets are monotone across rows, so the scatter walks the output
      sequentially (and within one row touches at most ``K`` adjacent
      slots);
    * ``layout="blocked"`` — incidences bucketed by *blocks* of owner rows
      sized so each block's output slice fits L2; arrival order is kept
      within a block (a cheaper stable partition instead of a full sort).

    The per-edge scale is also hoisted: ``scale[v]`` depends only on
    ``Y[v]`` — the very class column the contribution lands in — so the
    kernel scatters *raw* weights and applies ``diag(1/n_c)`` per column
    afterwards (the ``Z = S·diag(1/n_c)`` identity), eliminating the O(E)
    scale gather entirely.  Index arrays narrow to int32 when
    ``n*K < 2^31`` (:func:`choose_index_dtype`), halving index bandwidth.

    All artifacts are label-independent; per call only the ``Y`` gather,
    the (masked) flat-index add and the block-local ``np.bincount``s run.
    The permutation reorders commutative additions only, so results match
    the arrival-order kernels up to floating-point summation order.
    """

    __slots__ = (
        "__weakref__",
        "layout",
        "n_vertices",
        "n_classes",
        "n_incidences",
        "rows_per_block",
        "index_dtype",
        "owner_flat",
        "partner",
        "weights",
        "row_cuts",
        "flat_cuts",
        "edge_cuts",
    )

    def __init__(
        self,
        layout: str,
        n_vertices: int,
        n_classes: int,
        rows_per_block: int,
        index_dtype,
        owner_flat: np.ndarray,
        partner: np.ndarray,
        weights: Optional[np.ndarray],
        row_cuts: np.ndarray,
        flat_cuts: np.ndarray,
        edge_cuts: np.ndarray,
    ) -> None:
        self.layout = layout
        self.n_vertices = int(n_vertices)
        self.n_classes = int(n_classes)
        self.n_incidences = int(owner_flat.size)
        self.rows_per_block = int(rows_per_block)
        self.index_dtype = index_dtype
        #: ``owner * K`` per incidence, permuted (int32/int64 per dtype).
        self.owner_flat = owner_flat
        #: The other endpoint per incidence, permuted (same dtype).
        self.partner = partner
        #: Permuted weights, or ``None`` for unit-weight graphs (the
        #: block-local ``bincount`` then runs weightless, which is faster).
        self.weights = weights
        #: Row-block boundaries (``B+1`` vertex ids, first 0, last n).
        self.row_cuts = row_cuts
        #: ``row_cuts * K`` — the same boundaries in flat-index space.
        self.flat_cuts = flat_cuts
        #: Incidence positions of each block's slice (``B+1`` entries).
        self.edge_cuts = edge_cuts

    @property
    def nbytes(self) -> int:
        """Total bytes held by the compiled incidence arrays."""
        total = self.owner_flat.nbytes + self.partner.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total + self.row_cuts.nbytes + self.edge_cuts.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FusedLayout(layout={self.layout!r}, n={self.n_vertices}, "
            f"incidences={self.n_incidences}, K={self.n_classes}, "
            f"dtype={np.dtype(self.index_dtype).name})"
        )


def compile_fused_layout(
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray],
    n_vertices: int,
    n_classes: int,
    layout: str,
    *,
    int32_limit: int = _INT32_LIMIT,
    block_bytes: int = _LAYOUT_BLOCK_BYTES,
) -> FusedLayout:
    """Compile the fused incidence arrays for one ``(graph, K)`` pair.

    ``weights=None`` marks a unit-weight graph (no weight array is stored
    and the scatter runs weightless).  See :class:`FusedLayout` for what
    the two layouts mean; ``layout`` must be ``"sorted"`` or ``"blocked"``.
    """
    if layout not in ("sorted", "blocked"):
        raise ValueError(f'layout must be "sorted" or "blocked", got {layout!r}')
    n = int(n_vertices)
    k = int(n_classes)
    idx_dtype = choose_index_dtype(n, k, limit=int32_limit)
    rows_per_block = max(1, int(block_bytes) // (k * 8))

    owner = np.concatenate((src, dst))
    partner = np.concatenate((dst, src))
    row_cuts = np.arange(0, n, rows_per_block, dtype=np.int64)
    row_cuts = np.append(row_cuts, n)

    if layout == "sorted":
        order = np.argsort(owner, kind="stable")
        owner_sorted = owner[order]
        edge_cuts = np.searchsorted(owner_sorted, row_cuts).astype(np.int64)
    else:
        block_id = owner // rows_per_block
        order = np.argsort(block_id, kind="stable")
        owner_sorted = owner[order]
        n_blocks = row_cuts.size - 1
        per_block = np.bincount(block_id, minlength=n_blocks)
        edge_cuts = np.concatenate(([0], np.cumsum(per_block))).astype(np.int64)

    owner_flat = (owner_sorted * k).astype(idx_dtype)
    partner_p = partner[order].astype(idx_dtype)
    weights_p = None if weights is None else np.concatenate((weights, weights))[order]
    flat_cuts = row_cuts * k
    return FusedLayout(
        layout,
        n,
        k,
        rows_per_block,
        idx_dtype,
        owner_flat,
        partner_p,
        weights_p,
        row_cuts,
        flat_cuts,
        edge_cuts,
    )


def sorted_incidence(
    src: np.ndarray, dst: np.ndarray, weights: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """The owner-sorted ``(owner, partner, w)`` incidence triple of an edge set.

    The raw-vertex-id counterpart of :func:`compile_fused_layout`, used to
    build chunked *incidence* sources (``graph.plan(K, chunk_edges=...,
    layout="sorted")``): each edge appears twice, once per endpoint as
    owner, and the triple is sorted by owner so every streamed block's
    scatter targets are monotone.  ``weights=None`` stays ``None`` (unit
    weights).
    """
    owner = np.concatenate((src, dst))
    partner = np.concatenate((dst, src))
    order = np.argsort(owner, kind="stable")
    w2 = None if weights is None else np.concatenate((weights, weights))[order]
    return owner[order], partner[order], w2


def edge_fingerprint(edges) -> Tuple:
    """A cheap, best-effort fingerprint of an edge list's contents.

    Samples ``_FINGERPRINT_SAMPLES`` evenly-spaced edges (O(1) work, never
    O(s)) plus the shapes, so plan caches can detect both array replacement
    and most in-place mutations without rescanning the graph.  A mutation
    that only touches un-sampled edges goes undetected — callers that
    mutate edge arrays in place should call ``Graph.invalidate_cache()``
    explicitly.
    """
    s = edges.n_edges
    if s == 0:
        sample: Tuple = ()
    else:
        idx = np.unique(
            np.linspace(0, s - 1, num=min(s, _FINGERPRINT_SAMPLES)).astype(np.int64)
        )
        parts = [edges.src[idx], edges.dst[idx]]
        if edges.weights is not None:
            # Compare weight bit patterns, not float values: a NaN weight
            # would otherwise make the fingerprint never equal itself and
            # force a cache rebuild on every plan() call.
            parts.append(edges.weights[idx].view(np.int64))
        sample = tuple(np.concatenate(parts).tolist())
    return ("edges", int(edges.n_vertices), int(s), edges.weights is not None, sample)


def csr_fingerprint(csr) -> Tuple:
    """Sampled fingerprint of a CSR adjacency (for CSR-adopted graphs).

    CSR-adopted :class:`~repro.graph.facade.Graph` objects treat the CSR as
    the source of truth (the edge-list view is a derived snapshot), so
    mutation detection must sample the CSR arrays themselves.
    """
    s = csr.n_edges
    if s == 0:
        sample: Tuple = ()
    else:
        idx = np.unique(
            np.linspace(0, s - 1, num=min(s, _FINGERPRINT_SAMPLES)).astype(np.int64)
        )
        pidx = np.unique(
            np.linspace(
                0, csr.indptr.size - 1, num=min(csr.indptr.size, _FINGERPRINT_SAMPLES)
            ).astype(np.int64)
        )
        sample = tuple(
            np.concatenate(
                [csr.indices[idx], csr.indptr[pidx], csr.weights[idx].view(np.int64)]
            ).tolist()
        )
    return ("csr", int(csr.n_vertices), int(s), sample)


def edge_fingerprint_full(edges) -> Tuple:
    """An exact fingerprint hashing *every* edge (O(s), not sampled).

    The sampled :func:`edge_fingerprint` is O(1) but best-effort for
    in-place mutation: edits that touch only un-sampled edges go undetected
    beyond ~32 edges.  This variant digests the full ``src``/``dst``/weight
    arrays, so any content change trips the plan cache — the mode
    ``graph.plan(K, fingerprint="full")`` selects.  The digest is a few
    GB/s of hashing; cheap next to an embed, but not free, which is why
    sampling stays the default.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(edges.src).tobytes())
    h.update(np.ascontiguousarray(edges.dst).tobytes())
    if edges.weights is not None:
        h.update(np.ascontiguousarray(edges.weights).tobytes())
    return (
        "edges-full",
        int(edges.n_vertices),
        int(edges.n_edges),
        edges.weights is not None,
        h.hexdigest(),
    )


def csr_fingerprint_full(csr) -> Tuple:
    """Exact (every entry hashed) fingerprint of a CSR adjacency."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(csr.indptr).tobytes())
    h.update(np.ascontiguousarray(csr.indices).tobytes())
    h.update(np.ascontiguousarray(csr.weights).tobytes())
    return ("csr-full", int(csr.n_vertices), int(csr.n_edges), h.hexdigest())


class EmbedPlan:
    """Per-``(graph, K)`` compiled artifact for repeated GEE edge passes.

    Compilation is tiered so one-shot fits don't pay for views they never
    read.  Construction itself is O(1): only the dimensions and fingerprint
    are captured.  Every heavier artifact is built on first access and
    cached for the plan's lifetime (each is read by only some consumers,
    and the CSR/CSC caches live on the shared ``Graph``/``CSRGraph`` so
    nothing is ever rebuilt):

    * the validated edge arrays (``src``, ``dst``, materialised
      ``weights``) — the scatter kernels' input; CSR-consuming backends
      never expand them;
    * the flat-index components ``src*K`` and ``dst*K`` the vectorised
      scatter kernels otherwise recompute per call;
    * the CSR out-adjacency and CSC (reverse) in-adjacency views;
    * unweighted out-/in-degree vectors (the degree scales used by row
      partitioning);
    * the reusable flat ``(n*K,)`` output buffer;
    * the scipy adjacency pair and the per-worker-count row partitions.

    Do not construct directly — use :meth:`repro.graph.facade.Graph.plan`,
    which caches one plan per ``K`` and handles invalidation.
    """

    #: Class-level dispatch flag: chunk-aware consumers check it instead of
    #: isinstance so the two plan kinds stay duck-compatible.
    is_chunked = False

    def __init__(
        self,
        graph,
        n_classes: int,
        *,
        fingerprint: Optional[Tuple] = None,
        layout: str = "none",
    ):
        from ..graph.facade import Graph

        if not isinstance(graph, Graph):  # pragma: no cover - defensive
            raise TypeError("EmbedPlan compiles a Graph facade; use Graph.coerce first")
        k = int(n_classes)
        if k <= 0:
            raise ValueError("n_classes must be positive")
        if graph.n_vertices == 0:
            raise ValueError("GEE requires at least one vertex")
        if layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {LAYOUTS}, got {layout!r}")

        self.graph = graph
        self.n_classes = k
        self.n_vertices = int(graph.n_vertices)
        self.n_edges = int(graph.n_edges)
        #: Compiled memory layout: ``"none"`` preserves arrival order;
        #: ``"sorted"`` / ``"blocked"`` compile a :class:`FusedLayout` on
        #: first access of :attr:`fused`.
        self.layout = layout

        self.fingerprint = (
            edge_fingerprint(graph.edges) if fingerprint is None else fingerprint
        )

        # Lazily-built views, reusable buffers and per-backend caches.
        self._src: Optional[np.ndarray] = None
        self._dst: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._unit_weights: Optional[bool] = None
        self._src_flat: Optional[np.ndarray] = None
        self._dst_flat: Optional[np.ndarray] = None
        self._fused: Optional[FusedLayout] = None
        self._total_degrees: Optional[np.ndarray] = None
        self._fused_row_ranges: Dict[int, List[Tuple[int, int]]] = {}
        self._Z_flat: Optional[np.ndarray] = None
        self._in_degrees: Optional[np.ndarray] = None
        self._row_ranges: Dict[int, List[Tuple[int, int]]] = {}
        self._scipy_adj = None
        self._scipy_adj_T = None
        #: Resource-free Ligra engines cached per engine-backend name (the
        #: serial/vectorized schedules only — thread/process engines hold
        #: worker pools and stay per-call).
        self._ligra_engines: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Edge arrays and flat scatter-index components (vectorised kernels)
    # ------------------------------------------------------------------ #
    def _materialise_edges(self) -> None:
        edges = validate_edges(self.graph.edges)
        self._src = edges.src
        self._dst = edges.dst
        self._unit_weights = edges.weights is None
        self._weights = edges.effective_weights()

    @property
    def src(self) -> np.ndarray:
        """Validated edge sources (materialised on first access)."""
        if self._src is None:
            self._materialise_edges()
        return self._src  # type: ignore[return-value]

    @property
    def dst(self) -> np.ndarray:
        """Validated edge destinations (materialised on first access)."""
        if self._dst is None:
            self._materialise_edges()
        return self._dst  # type: ignore[return-value]

    @property
    def weights(self) -> np.ndarray:
        """Materialised edge weights (unit weights for unweighted graphs)."""
        if self._weights is None:
            self._materialise_edges()
        return self._weights  # type: ignore[return-value]

    @property
    def src_flat(self) -> np.ndarray:
        """Y-independent flat-index component: ``flat = src_flat + Y[dst]``."""
        if self._src_flat is None:
            self._src_flat = self.src * self.n_classes
        return self._src_flat

    @property
    def dst_flat(self) -> np.ndarray:
        """Y-independent flat-index component: ``flat = dst_flat + Y[src]``."""
        if self._dst_flat is None:
            self._dst_flat = self.dst * self.n_classes
        return self._dst_flat

    # ------------------------------------------------------------------ #
    # Locality-optimized layout (sorted / blocked incidence arrays)
    # ------------------------------------------------------------------ #
    @property
    def unit_weights(self) -> bool:
        """Whether the graph is unit-weight (no weight array stored)."""
        if self._unit_weights is None:
            self._materialise_edges()
        return bool(self._unit_weights)

    @property
    def fused(self) -> FusedLayout:
        """The compiled :class:`FusedLayout` (requires ``layout != "none"``).

        Built on first access from the validated edge arrays and cached for
        the plan's lifetime — the layout permutation, flat-index narrowing
        and block boundaries are all label-independent.
        """
        if self.layout == "none":
            raise ValueError(
                'this plan was compiled layout-preserving (layout="none"); '
                'request graph.plan(K, layout="sorted"|"blocked") for the '
                "locality-optimized arrays"
            )
        if self._fused is None:
            self._fused = compile_fused_layout(
                self.src,
                self.dst,
                None if self.unit_weights else self.weights,
                self.n_vertices,
                self.n_classes,
                self.layout,
            )
        return self._fused

    @property
    def total_degrees(self) -> np.ndarray:
        """Unweighted total (in + out) degree per vertex, from the edge arrays.

        Used by the fused parallel path's degree-balanced row partition —
        unlike :attr:`in_degrees`/:attr:`out_degrees` it never forces the
        CSR/CSC views, so layout plans stay adjacency-free.
        """
        if self._total_degrees is None:
            n = self.n_vertices
            self._total_degrees = np.bincount(self.src, minlength=n) + np.bincount(
                self.dst, minlength=n
            )
        return self._total_degrees

    def fused_row_ranges(self, n_parts: int) -> List[Tuple[int, int]]:
        """Degree-balanced row ranges for the fused parallel path, cached."""
        n_parts = int(n_parts)
        cached = self._fused_row_ranges.get(n_parts)
        if cached is None:
            from .gee_parallel import balanced_ranges_from_work

            cached = balanced_ranges_from_work(self.total_degrees, n_parts)
            self._fused_row_ranges[n_parts] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Adjacency and degree views (cached on the shared Graph / CSRGraph)
    # ------------------------------------------------------------------ #
    @property
    def csr(self):
        """The CSR out-adjacency (the graph facade's cached view).

        Accessing :attr:`~repro.graph.csr.CSRGraph.in_indptr` on it builds
        the CSC (in-adjacency) triple, which the CSRGraph then caches — so
        the parallel/Ligra/delta consumers pay that build at most once per
        graph, and edge-array-only backends never pay it.
        """
        return self.graph.csr

    @property
    def out_degrees(self) -> np.ndarray:
        """Unweighted out-degree of every vertex (cached on the graph)."""
        return self.graph.out_degrees

    @property
    def in_degrees(self) -> np.ndarray:
        """Unweighted in-degree of every vertex (cached)."""
        if self._in_degrees is None:
            self._in_degrees = self.csr.in_degrees()
        return self._in_degrees

    # ------------------------------------------------------------------ #
    # Per-call helpers
    # ------------------------------------------------------------------ #
    def validate_labels(self, labels: np.ndarray) -> np.ndarray:
        """Validate a label vector against the compiled ``(n, K)`` (O(n))."""
        y, _ = validate_labels(labels, self.n_vertices, self.n_classes)
        return y

    @hot_path(reason="per-call output hand-out; must reuse, not reallocate")
    def zeroed_output(self) -> np.ndarray:
        """The reusable flat ``(n*K,)`` output buffer, zeroed.

        The same buffer backs every plan-based call, so the embedding a
        backend returns from it is only valid until the next call on this
        plan; :meth:`EmbeddingResult.detached` copies it out.
        """
        if self._Z_flat is None:
            # repro: ignore[hot-path-alloc] lazy one-time buffer; every later call reuses it
            self._Z_flat = np.zeros(self.n_vertices * self.n_classes, dtype=np.float64)
        else:
            self._Z_flat.fill(0.0)
        return self._Z_flat

    @hot_path(reason="per-call output hand-out; must reuse, not reallocate")
    def output_matrix(self) -> np.ndarray:
        """``(n, K)`` view of the reusable output buffer (not zeroed)."""
        if self._Z_flat is None:
            # repro: ignore[hot-path-alloc] lazy one-time buffer; every later call reuses it
            self._Z_flat = np.zeros(self.n_vertices * self.n_classes, dtype=np.float64)
        return self._Z_flat.reshape(self.n_vertices, self.n_classes)

    def row_ranges(self, n_parts: int) -> List[Tuple[int, int]]:
        """Degree-balanced owner-computes row ranges, cached per part count.

        Used by the process-parallel backend: the partition depends only on
        the degree profile, so a worker sweep over one plan computes each
        partition once.
        """
        n_parts = int(n_parts)
        cached = self._row_ranges.get(n_parts)
        if cached is None:
            from .gee_parallel import _balanced_row_ranges

            cached = _balanced_row_ranges(self.csr.indptr, self.csr.in_indptr, n_parts)
            self._row_ranges[n_parts] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Copy-on-write extension (append-only graph mutations)
    # ------------------------------------------------------------------ #
    def extended(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray,
        *,
        graph,
        fingerprint: Tuple,
    ) -> "EmbedPlan":
        """A plan for the append-extended graph, reusing this plan's artifacts.

        The fast path behind append-only :class:`~repro.stream.dynamic.DynamicGraph`
        commits: instead of recompiling against the new version's edge
        arrays (re-validating all ``E`` edges, rebuilding the flat
        scatter-index components), the returned plan seeds its lazy fields
        by concatenating the ``Δ`` appended edges onto whichever artifacts
        this plan already materialised — no validation, and index
        arithmetic only on the ``Δ`` tail.

        Copy-on-write: *this* plan is left untouched, so snapshot readers
        of the previous version who hold it keep embedding exactly their
        version's edge set.  ``graph`` must be the post-append facade over
        the same vertex set; the appended endpoint arrays must already be
        validated (they come from a committed mutation batch).
        """
        if int(graph.n_vertices) != self.n_vertices:
            raise ValueError(
                "extended() cannot change the vertex set "
                f"({self.n_vertices} -> {int(graph.n_vertices)}); recompile the plan"
            )
        new = EmbedPlan(graph, self.n_classes, fingerprint=fingerprint, layout=self.layout)
        if self._src is not None:
            new._src = np.concatenate((self._src, src))
            new._dst = np.concatenate((self._dst, dst))
            # Appended batches always carry explicit weights, so the
            # extended plan is no longer unit-weight unless they are all 1
            # (the fused layout recompiles lazily from these seeds anyway).
            new._unit_weights = bool(self._unit_weights) and bool(np.all(weights == 1.0))
            new._weights = np.concatenate((self._weights, weights))
        if self._src_flat is not None:
            new._src_flat = np.concatenate((self._src_flat, src * self.n_classes))
        if self._dst_flat is not None:
            new._dst_flat = np.concatenate((self._dst_flat, dst * self.n_classes))
        return new

    def scipy_adjacency(self):
        """The adjacency as ``scipy.sparse.csr_matrix``, cached."""
        if self._scipy_adj is None:
            self._scipy_adj = self.csr.to_scipy()
        return self._scipy_adj

    def scipy_adjacency_T(self):
        """The transposed adjacency as CSR (i.e. CSC of ``A``), cached."""
        if self._scipy_adj_T is None:
            self._scipy_adj_T = self.scipy_adjacency().T.tocsr()
        return self._scipy_adj_T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EmbedPlan(n={self.n_vertices}, s={self.n_edges}, "
            f"K={self.n_classes})"
        )


class ChunkedPlan:
    """Per-``(source, K)`` compiled artifact for bounded-memory edge passes.

    The out-of-core counterpart of :class:`EmbedPlan`: where the full plan
    materialises the ``u*K``/``v*K`` flat scatter indices for all ``E``
    edges once, the chunked plan compiles them *per block* as
    :meth:`iter_compiled` streams the source — the only full-length
    allocation a chunk consumer ever makes is the ``(n*K,)`` output buffer
    the per-block scatter-adds accumulate into (scatter-add is associative,
    so the block-wise sums equal the one-shot pass exactly, up to
    floating-point summation order).

    ``source`` is a :class:`~repro.graph.io.ChunkedEdgeSource` (memory-mapped
    on-disk store or a re-blocked in-memory edge list).  ``graph`` is the
    owning :class:`~repro.graph.facade.Graph` when the plan was compiled via
    ``graph.plan(K, chunk_edges=...)`` and ``None`` for standalone
    file-backed sources — chunk consumers must not touch ``graph`` (a
    file-backed source has no in-memory views to offer).

    Like :class:`EmbedPlan`, the output buffer is reused across calls on the
    same plan (see :meth:`zeroed_output`).
    """

    is_chunked = True

    def __init__(
        self,
        source,
        n_classes: int,
        *,
        graph=None,
        fingerprint: Optional[Tuple] = None,
        layout: str = "none",
    ):
        from ..graph.io import ChunkedEdgeSource

        if not isinstance(source, ChunkedEdgeSource):  # pragma: no cover - defensive
            raise TypeError(
                f"ChunkedPlan compiles a ChunkedEdgeSource, got {type(source)!r}"
            )
        k = int(n_classes)
        if k <= 0:
            raise ValueError("n_classes must be positive")
        if layout not in ("none", "sorted"):
            raise ValueError(
                'chunked plans support layout="none" or "sorted" (blocked '
                f"bucketing needs the whole edge set in memory), got {layout!r}"
            )
        self.source = source
        self.graph = graph
        self.n_classes = k
        self.n_vertices = int(source.n_vertices)
        # A sorted-incidence source holds each directed edge twice (once per
        # endpoint as owner); n_edges stays the graph's directed edge count
        # so plans are comparable across layouts (per-edge metrics, the
        # cost model's E term).
        self.n_edges = (
            int(source.n_edges) if layout == "none" else int(source.n_edges) // 2
        )
        self.chunk_edges = int(source.chunk_edges)
        self.fingerprint = fingerprint
        #: ``"sorted"`` marks an *incidence* source: the blocks stream
        #: ``(owner, partner, w)`` triples sorted by owner (each edge
        #: appears twice), and the chunked kernels run the one-sided
        #: segment-sum update with a final per-column rescale instead of
        #: the two-sided edge update.  Built by
        #: ``graph.plan(K, chunk_edges=..., layout="sorted")``.
        self.layout = layout
        self._Z_flat: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Per-call helpers (same contract as EmbedPlan)
    # ------------------------------------------------------------------ #
    def validate_labels(self, labels: np.ndarray) -> np.ndarray:
        """Validate a label vector against the compiled ``(n, K)`` (O(n))."""
        y, _ = validate_labels(labels, self.n_vertices, self.n_classes)
        return y

    @hot_path(reason="per-call output hand-out; must reuse, not reallocate")
    def zeroed_output(self) -> np.ndarray:
        """The reusable flat ``(n*K,)`` output buffer, zeroed.

        Same sharp edge as :meth:`EmbedPlan.zeroed_output`: the buffer backs
        every call on this plan, so returned embeddings are valid until the
        next plan-based call (``EmbeddingResult.detached`` copies one out).
        """
        if self._Z_flat is None:
            # repro: ignore[hot-path-alloc] lazy one-time buffer; every later call reuses it
            self._Z_flat = np.zeros(self.n_vertices * self.n_classes, dtype=np.float64)
        else:
            self._Z_flat.fill(0.0)
        return self._Z_flat

    @hot_path(reason="per-call output hand-out; must reuse, not reallocate")
    def output_matrix(self) -> np.ndarray:
        """``(n, K)`` view of the reusable output buffer (not zeroed)."""
        if self._Z_flat is None:
            # repro: ignore[hot-path-alloc] lazy one-time buffer; every later call reuses it
            self._Z_flat = np.zeros(self.n_vertices * self.n_classes, dtype=np.float64)
        return self._Z_flat.reshape(self.n_vertices, self.n_classes)

    # ------------------------------------------------------------------ #
    # Streaming compilation
    # ------------------------------------------------------------------ #
    def iter_compiled(
        self, chunk_lo: int = 0, chunk_hi: Optional[int] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Stream ``(src, dst, w, src*K, dst*K)`` blocks, compiled lazily.

        Each block's flat-index components are O(chunk) temporaries built
        here and dropped when the consumer moves on — never the O(E) arrays
        the full plan would pin.  ``chunk_lo``/``chunk_hi`` restrict the
        stream to a contiguous chunk-index range (how the parallel backend
        hands each worker its slab).
        """
        k = self.n_classes
        for src, dst, w in self.source.iter_chunks(chunk_lo, chunk_hi):
            yield src, dst, w, src * k, dst * k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedPlan(n={self.n_vertices}, s={self.n_edges}, "
            f"K={self.n_classes}, chunk_edges={self.chunk_edges})"
        )
