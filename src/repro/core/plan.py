"""Compiled embed plans: the Y-independent half of a GEE call, done once.

Profiling repeated ``embed()`` calls on one graph (backend sweeps, worker
sweeps, the unsupervised refinement loop) shows the timed region paying for
work whose result never changes between calls: edge validation, the
``u*K`` / ``v*K`` flat scatter indices, CSR/CSC adjacency views, degree
vectors and the ``n×K`` output allocation are all functions of the graph
and ``K`` alone — only the label vector varies.  The paper's own protocol
never pays these costs (Ligra times an already-loaded graph), so neither
should ours.

:class:`EmbedPlan` is the compiled artifact holding all of it.  Plans are
cached on the :class:`~repro.graph.facade.Graph` facade via
``graph.plan(K)`` — one plan per ``(graph, K)`` — and every registered
backend exposes ``embed_with_plan(plan, labels)`` (see
:meth:`repro.backends.GEEBackend.embed_with_plan`), which performs *zero*
edge validation, *zero* index rebuilding and *zero* large allocations per
call.

Two sharp edges, both documented on the methods involved:

* the plan's output buffer is reused — the embedding returned by
  ``embed_with_plan`` is valid until the next plan-based call on the same
  plan (use :meth:`~repro.core.result.EmbeddingResult.detached` to keep
  one);
* cache invalidation after *in-place* mutation of the underlying edge
  arrays is best-effort, via a sampled fingerprint (see
  :func:`edge_fingerprint`).  Replacing the arrays or building a new
  ``Graph`` is always detected.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .validation import validate_edges, validate_labels

__all__ = [
    "EmbedPlan",
    "ChunkedPlan",
    "edge_fingerprint",
    "csr_fingerprint",
    "edge_fingerprint_full",
    "csr_fingerprint_full",
]

#: Number of evenly-spaced edge samples hashed into the fingerprint.
_FINGERPRINT_SAMPLES = 32


def edge_fingerprint(edges) -> Tuple:
    """A cheap, best-effort fingerprint of an edge list's contents.

    Samples ``_FINGERPRINT_SAMPLES`` evenly-spaced edges (O(1) work, never
    O(s)) plus the shapes, so plan caches can detect both array replacement
    and most in-place mutations without rescanning the graph.  A mutation
    that only touches un-sampled edges goes undetected — callers that
    mutate edge arrays in place should call ``Graph.invalidate_cache()``
    explicitly.
    """
    s = edges.n_edges
    if s == 0:
        sample: Tuple = ()
    else:
        idx = np.unique(
            np.linspace(0, s - 1, num=min(s, _FINGERPRINT_SAMPLES)).astype(np.int64)
        )
        parts = [edges.src[idx], edges.dst[idx]]
        if edges.weights is not None:
            # Compare weight bit patterns, not float values: a NaN weight
            # would otherwise make the fingerprint never equal itself and
            # force a cache rebuild on every plan() call.
            parts.append(edges.weights[idx].view(np.int64))
        sample = tuple(np.concatenate(parts).tolist())
    return ("edges", int(edges.n_vertices), int(s), edges.weights is not None, sample)


def csr_fingerprint(csr) -> Tuple:
    """Sampled fingerprint of a CSR adjacency (for CSR-adopted graphs).

    CSR-adopted :class:`~repro.graph.facade.Graph` objects treat the CSR as
    the source of truth (the edge-list view is a derived snapshot), so
    mutation detection must sample the CSR arrays themselves.
    """
    s = csr.n_edges
    if s == 0:
        sample: Tuple = ()
    else:
        idx = np.unique(
            np.linspace(0, s - 1, num=min(s, _FINGERPRINT_SAMPLES)).astype(np.int64)
        )
        pidx = np.unique(
            np.linspace(
                0, csr.indptr.size - 1, num=min(csr.indptr.size, _FINGERPRINT_SAMPLES)
            ).astype(np.int64)
        )
        sample = tuple(
            np.concatenate(
                [csr.indices[idx], csr.indptr[pidx], csr.weights[idx].view(np.int64)]
            ).tolist()
        )
    return ("csr", int(csr.n_vertices), int(s), sample)


def edge_fingerprint_full(edges) -> Tuple:
    """An exact fingerprint hashing *every* edge (O(s), not sampled).

    The sampled :func:`edge_fingerprint` is O(1) but best-effort for
    in-place mutation: edits that touch only un-sampled edges go undetected
    beyond ~32 edges.  This variant digests the full ``src``/``dst``/weight
    arrays, so any content change trips the plan cache — the mode
    ``graph.plan(K, fingerprint="full")`` selects.  The digest is a few
    GB/s of hashing; cheap next to an embed, but not free, which is why
    sampling stays the default.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(edges.src).tobytes())
    h.update(np.ascontiguousarray(edges.dst).tobytes())
    if edges.weights is not None:
        h.update(np.ascontiguousarray(edges.weights).tobytes())
    return (
        "edges-full",
        int(edges.n_vertices),
        int(edges.n_edges),
        edges.weights is not None,
        h.hexdigest(),
    )


def csr_fingerprint_full(csr) -> Tuple:
    """Exact (every entry hashed) fingerprint of a CSR adjacency."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(csr.indptr).tobytes())
    h.update(np.ascontiguousarray(csr.indices).tobytes())
    h.update(np.ascontiguousarray(csr.weights).tobytes())
    return ("csr-full", int(csr.n_vertices), int(csr.n_edges), h.hexdigest())


class EmbedPlan:
    """Per-``(graph, K)`` compiled artifact for repeated GEE edge passes.

    Compilation is tiered so one-shot fits don't pay for views they never
    read.  Construction itself is O(1): only the dimensions and fingerprint
    are captured.  Every heavier artifact is built on first access and
    cached for the plan's lifetime (each is read by only some consumers,
    and the CSR/CSC caches live on the shared ``Graph``/``CSRGraph`` so
    nothing is ever rebuilt):

    * the validated edge arrays (``src``, ``dst``, materialised
      ``weights``) — the scatter kernels' input; CSR-consuming backends
      never expand them;
    * the flat-index components ``src*K`` and ``dst*K`` the vectorised
      scatter kernels otherwise recompute per call;
    * the CSR out-adjacency and CSC (reverse) in-adjacency views;
    * unweighted out-/in-degree vectors (the degree scales used by row
      partitioning);
    * the reusable flat ``(n*K,)`` output buffer;
    * the scipy adjacency pair and the per-worker-count row partitions.

    Do not construct directly — use :meth:`repro.graph.facade.Graph.plan`,
    which caches one plan per ``K`` and handles invalidation.
    """

    #: Class-level dispatch flag: chunk-aware consumers check it instead of
    #: isinstance so the two plan kinds stay duck-compatible.
    is_chunked = False

    def __init__(self, graph, n_classes: int, *, fingerprint: Optional[Tuple] = None):
        from ..graph.facade import Graph

        if not isinstance(graph, Graph):  # pragma: no cover - defensive
            raise TypeError("EmbedPlan compiles a Graph facade; use Graph.coerce first")
        k = int(n_classes)
        if k <= 0:
            raise ValueError("n_classes must be positive")
        if graph.n_vertices == 0:
            raise ValueError("GEE requires at least one vertex")

        self.graph = graph
        self.n_classes = k
        self.n_vertices = int(graph.n_vertices)
        self.n_edges = int(graph.n_edges)

        self.fingerprint = (
            edge_fingerprint(graph.edges) if fingerprint is None else fingerprint
        )

        # Lazily-built views, reusable buffers and per-backend caches.
        self._src: Optional[np.ndarray] = None
        self._dst: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._src_flat: Optional[np.ndarray] = None
        self._dst_flat: Optional[np.ndarray] = None
        self._Z_flat: Optional[np.ndarray] = None
        self._in_degrees: Optional[np.ndarray] = None
        self._row_ranges: Dict[int, List[Tuple[int, int]]] = {}
        self._scipy_adj = None
        self._scipy_adj_T = None
        #: Resource-free Ligra engines cached per engine-backend name (the
        #: serial/vectorized schedules only — thread/process engines hold
        #: worker pools and stay per-call).
        self._ligra_engines: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Edge arrays and flat scatter-index components (vectorised kernels)
    # ------------------------------------------------------------------ #
    def _materialise_edges(self) -> None:
        edges = validate_edges(self.graph.edges)
        self._src = edges.src
        self._dst = edges.dst
        self._weights = edges.effective_weights()

    @property
    def src(self) -> np.ndarray:
        """Validated edge sources (materialised on first access)."""
        if self._src is None:
            self._materialise_edges()
        return self._src  # type: ignore[return-value]

    @property
    def dst(self) -> np.ndarray:
        """Validated edge destinations (materialised on first access)."""
        if self._dst is None:
            self._materialise_edges()
        return self._dst  # type: ignore[return-value]

    @property
    def weights(self) -> np.ndarray:
        """Materialised edge weights (unit weights for unweighted graphs)."""
        if self._weights is None:
            self._materialise_edges()
        return self._weights  # type: ignore[return-value]

    @property
    def src_flat(self) -> np.ndarray:
        """Y-independent flat-index component: ``flat = src_flat + Y[dst]``."""
        if self._src_flat is None:
            self._src_flat = self.src * self.n_classes
        return self._src_flat

    @property
    def dst_flat(self) -> np.ndarray:
        """Y-independent flat-index component: ``flat = dst_flat + Y[src]``."""
        if self._dst_flat is None:
            self._dst_flat = self.dst * self.n_classes
        return self._dst_flat

    # ------------------------------------------------------------------ #
    # Adjacency and degree views (cached on the shared Graph / CSRGraph)
    # ------------------------------------------------------------------ #
    @property
    def csr(self):
        """The CSR out-adjacency (the graph facade's cached view).

        Accessing :attr:`~repro.graph.csr.CSRGraph.in_indptr` on it builds
        the CSC (in-adjacency) triple, which the CSRGraph then caches — so
        the parallel/Ligra/delta consumers pay that build at most once per
        graph, and edge-array-only backends never pay it.
        """
        return self.graph.csr

    @property
    def out_degrees(self) -> np.ndarray:
        """Unweighted out-degree of every vertex (cached on the graph)."""
        return self.graph.out_degrees

    @property
    def in_degrees(self) -> np.ndarray:
        """Unweighted in-degree of every vertex (cached)."""
        if self._in_degrees is None:
            self._in_degrees = self.csr.in_degrees()
        return self._in_degrees

    # ------------------------------------------------------------------ #
    # Per-call helpers
    # ------------------------------------------------------------------ #
    def validate_labels(self, labels: np.ndarray) -> np.ndarray:
        """Validate a label vector against the compiled ``(n, K)`` (O(n))."""
        y, _ = validate_labels(labels, self.n_vertices, self.n_classes)
        return y

    def zeroed_output(self) -> np.ndarray:
        """The reusable flat ``(n*K,)`` output buffer, zeroed.

        The same buffer backs every plan-based call, so the embedding a
        backend returns from it is only valid until the next call on this
        plan; :meth:`EmbeddingResult.detached` copies it out.
        """
        if self._Z_flat is None:
            self._Z_flat = np.zeros(self.n_vertices * self.n_classes, dtype=np.float64)
        else:
            self._Z_flat.fill(0.0)
        return self._Z_flat

    def output_matrix(self) -> np.ndarray:
        """``(n, K)`` view of the reusable output buffer (not zeroed)."""
        if self._Z_flat is None:
            self._Z_flat = np.zeros(self.n_vertices * self.n_classes, dtype=np.float64)
        return self._Z_flat.reshape(self.n_vertices, self.n_classes)

    def row_ranges(self, n_parts: int) -> List[Tuple[int, int]]:
        """Degree-balanced owner-computes row ranges, cached per part count.

        Used by the process-parallel backend: the partition depends only on
        the degree profile, so a worker sweep over one plan computes each
        partition once.
        """
        n_parts = int(n_parts)
        cached = self._row_ranges.get(n_parts)
        if cached is None:
            from .gee_parallel import _balanced_row_ranges

            cached = _balanced_row_ranges(self.csr.indptr, self.csr.in_indptr, n_parts)
            self._row_ranges[n_parts] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Copy-on-write extension (append-only graph mutations)
    # ------------------------------------------------------------------ #
    def extended(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray,
        *,
        graph,
        fingerprint: Tuple,
    ) -> "EmbedPlan":
        """A plan for the append-extended graph, reusing this plan's artifacts.

        The fast path behind append-only :class:`~repro.stream.dynamic.DynamicGraph`
        commits: instead of recompiling against the new version's edge
        arrays (re-validating all ``E`` edges, rebuilding the flat
        scatter-index components), the returned plan seeds its lazy fields
        by concatenating the ``Δ`` appended edges onto whichever artifacts
        this plan already materialised — no validation, and index
        arithmetic only on the ``Δ`` tail.

        Copy-on-write: *this* plan is left untouched, so snapshot readers
        of the previous version who hold it keep embedding exactly their
        version's edge set.  ``graph`` must be the post-append facade over
        the same vertex set; the appended endpoint arrays must already be
        validated (they come from a committed mutation batch).
        """
        if int(graph.n_vertices) != self.n_vertices:
            raise ValueError(
                "extended() cannot change the vertex set "
                f"({self.n_vertices} -> {int(graph.n_vertices)}); recompile the plan"
            )
        new = EmbedPlan(graph, self.n_classes, fingerprint=fingerprint)
        if self._src is not None:
            new._src = np.concatenate((self._src, src))
            new._dst = np.concatenate((self._dst, dst))
            new._weights = np.concatenate((self._weights, weights))
        if self._src_flat is not None:
            new._src_flat = np.concatenate((self._src_flat, src * self.n_classes))
        if self._dst_flat is not None:
            new._dst_flat = np.concatenate((self._dst_flat, dst * self.n_classes))
        return new

    def scipy_adjacency(self):
        """The adjacency as ``scipy.sparse.csr_matrix``, cached."""
        if self._scipy_adj is None:
            self._scipy_adj = self.csr.to_scipy()
        return self._scipy_adj

    def scipy_adjacency_T(self):
        """The transposed adjacency as CSR (i.e. CSC of ``A``), cached."""
        if self._scipy_adj_T is None:
            self._scipy_adj_T = self.scipy_adjacency().T.tocsr()
        return self._scipy_adj_T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EmbedPlan(n={self.n_vertices}, s={self.n_edges}, "
            f"K={self.n_classes})"
        )


class ChunkedPlan:
    """Per-``(source, K)`` compiled artifact for bounded-memory edge passes.

    The out-of-core counterpart of :class:`EmbedPlan`: where the full plan
    materialises the ``u*K``/``v*K`` flat scatter indices for all ``E``
    edges once, the chunked plan compiles them *per block* as
    :meth:`iter_compiled` streams the source — the only full-length
    allocation a chunk consumer ever makes is the ``(n*K,)`` output buffer
    the per-block scatter-adds accumulate into (scatter-add is associative,
    so the block-wise sums equal the one-shot pass exactly, up to
    floating-point summation order).

    ``source`` is a :class:`~repro.graph.io.ChunkedEdgeSource` (memory-mapped
    on-disk store or a re-blocked in-memory edge list).  ``graph`` is the
    owning :class:`~repro.graph.facade.Graph` when the plan was compiled via
    ``graph.plan(K, chunk_edges=...)`` and ``None`` for standalone
    file-backed sources — chunk consumers must not touch ``graph`` (a
    file-backed source has no in-memory views to offer).

    Like :class:`EmbedPlan`, the output buffer is reused across calls on the
    same plan (see :meth:`zeroed_output`).
    """

    is_chunked = True

    def __init__(
        self,
        source,
        n_classes: int,
        *,
        graph=None,
        fingerprint: Optional[Tuple] = None,
    ):
        from ..graph.io import ChunkedEdgeSource

        if not isinstance(source, ChunkedEdgeSource):  # pragma: no cover - defensive
            raise TypeError(
                f"ChunkedPlan compiles a ChunkedEdgeSource, got {type(source)!r}"
            )
        k = int(n_classes)
        if k <= 0:
            raise ValueError("n_classes must be positive")
        self.source = source
        self.graph = graph
        self.n_classes = k
        self.n_vertices = int(source.n_vertices)
        self.n_edges = int(source.n_edges)
        self.chunk_edges = int(source.chunk_edges)
        self.fingerprint = fingerprint
        self._Z_flat: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Per-call helpers (same contract as EmbedPlan)
    # ------------------------------------------------------------------ #
    def validate_labels(self, labels: np.ndarray) -> np.ndarray:
        """Validate a label vector against the compiled ``(n, K)`` (O(n))."""
        y, _ = validate_labels(labels, self.n_vertices, self.n_classes)
        return y

    def zeroed_output(self) -> np.ndarray:
        """The reusable flat ``(n*K,)`` output buffer, zeroed.

        Same sharp edge as :meth:`EmbedPlan.zeroed_output`: the buffer backs
        every call on this plan, so returned embeddings are valid until the
        next plan-based call (``EmbeddingResult.detached`` copies one out).
        """
        if self._Z_flat is None:
            self._Z_flat = np.zeros(self.n_vertices * self.n_classes, dtype=np.float64)
        else:
            self._Z_flat.fill(0.0)
        return self._Z_flat

    def output_matrix(self) -> np.ndarray:
        """``(n, K)`` view of the reusable output buffer (not zeroed)."""
        if self._Z_flat is None:
            self._Z_flat = np.zeros(self.n_vertices * self.n_classes, dtype=np.float64)
        return self._Z_flat.reshape(self.n_vertices, self.n_classes)

    # ------------------------------------------------------------------ #
    # Streaming compilation
    # ------------------------------------------------------------------ #
    def iter_compiled(
        self, chunk_lo: int = 0, chunk_hi: Optional[int] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Stream ``(src, dst, w, src*K, dst*K)`` blocks, compiled lazily.

        Each block's flat-index components are O(chunk) temporaries built
        here and dropped when the consumer moves on — never the O(E) arrays
        the full plan would pin.  ``chunk_lo``/``chunk_hi`` restrict the
        stream to a contiguous chunk-index range (how the parallel backend
        hands each worker its slab).
        """
        k = self.n_classes
        for src, dst, w in self.source.iter_chunks(chunk_lo, chunk_hi):
            yield src, dst, w, src * k, dst * k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedPlan(n={self.n_vertices}, s={self.n_edges}, "
            f"K={self.n_classes}, chunk_edges={self.chunk_edges})"
        )
