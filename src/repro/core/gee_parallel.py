"""Edge-parallel GEE over forked workers and shared memory.

This is the dedicated kernel behind the strong-scaling experiment
(Figure 3): it exposes the worker count explicitly, reports a per-phase
timing breakdown, and keeps the parallel machinery visible (row
partitioning, shared-memory output) rather than hiding it inside the
engine.  ``gee_ligra`` and this function compute the same embedding; this
one exists so the scaling study can sweep workers cheaply.

Parallelisation strategy
------------------------
Ligra's ``edgeMapDense`` iterates over *destination* vertices and their
in-edges, which makes every embedding row single-writer; the atomics only
guard the much rarer source-row updates.  The kernel here takes that idea
to its limit with an **owner-computes row partition**:

* the embedding rows (vertices) are split into ``p`` ranges balanced by
  total (in + out) degree;
* worker ``j`` computes *all* contributions that land in its row range —
  the out-edge contributions ``Z[u, Y[v]]`` for its ``u`` range (read from
  the CSR out-adjacency) and the in-edge contributions ``Z[v, Y[u]]`` for
  its ``v`` range (read from the CSC in-adjacency);
* each worker writes its block of the shared-memory ``Z`` directly.

No two workers ever write the same row, so there are no atomics, no locks
and no reduction — the CPython substitute for Ligra's lock-free writeAdd
that preserves the edge-parallel structure (every edge is still visited
exactly twice, once per endpoint) while sidestepping the GIL entirely.

Worker management mirrors how Ligra treats its thread pool: the workers are
a long-lived resource created once per session (``fork`` is two orders of
magnitude more expensive than dispatching a task to an already-forked
worker in this environment), and each embedding call only dispatches row
ranges to them.  All inputs and the output travel through named POSIX
shared memory; the shared copy of the adjacency is cached between calls on
the same graph, so repeated runs (benchmark repeats, worker sweeps) pay the
one-time copy only once — the analogue of Ligra having loaded the graph
before the timed region starts.
"""

from __future__ import annotations

import atexit
import time
import weakref
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.edgelist import EdgeList
from ..graph.facade import Graph
from ..parallel.partition import block_ranges
from ..parallel.pool import (
    ForkWorkerPool,
    effective_worker_count,
    fork_available,
    resolve_worker_count,
)
from ..analysis.annotations import hot_path
from ..obs import trace
from ..parallel.shm import SharedArrayHandle, SharedArraySet, attach_many
from .gee_vectorized import scatter_add
from .projection import projection_from_scales, projection_scales
from .result import EmbeddingResult
from .validation import UNKNOWN_LABEL, validate_edges, validate_labels

__all__ = [
    "gee_parallel",
    "gee_parallel_with_plan",
    "gee_parallel_chunked",
    "owner_rows_accumulate",
    "patch_sums_parallel",
    "shutdown_workers",
]


@hot_path(reason="parallel O(Δ) incremental patch kernel")
def patch_sums_parallel(
    S_flat: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    delta_w: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    *,
    n_workers: Optional[int] = None,
) -> None:
    """Apply a signed edge delta to flat raw per-class sums, in place.

    The parallel O(Δ) patch kernel: the *gather* half of the patch (label
    gathers, known-label masks, flat-index arithmetic — the bulk of the work
    for typical deltas) is split into contiguous edge slabs processed by a
    thread pool, NumPy releasing the GIL for the array ops; the final
    scatter runs serially over the slab results in slab order, so the
    update is deterministic (fixed association order) like the owner-computes
    full kernel.  Forked workers would lose here: a delta batch is far too
    small to amortise shipping it through shared memory.

    Deltas below a few thousand edges skip the pool entirely — thread
    dispatch would cost more than it saves.
    """
    k = int(n_classes)
    m = int(src.size)
    workers = effective_worker_count(n_workers)
    if m < 4096 or workers <= 1:
        from .gee_vectorized import patch_sums_vectorized

        patch_sums_vectorized(S_flat, src, dst, delta_w, labels, k)
        return
    from concurrent.futures import ThreadPoolExecutor

    slabs = [r for r in block_ranges(m, min(workers, m)) if r[0] < r[1]]

    def gather(slab: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = slab
        s, d, w = src[lo:hi], dst[lo:hi], delta_w[lo:hi]
        y_d = labels[d]
        y_s = labels[s]
        known_d = y_d != UNKNOWN_LABEL
        known_s = y_s != UNKNOWN_LABEL
        # repro: ignore[hot-path-alloc] O(Δ) slab temporaries, not O(E): the slab is a delta slice
        flat = np.concatenate(
            (s[known_d] * k + y_d[known_d], d[known_s] * k + y_s[known_s])
        )
        contrib = np.concatenate((w[known_d], w[known_s]))
        return flat, contrib

    with ThreadPoolExecutor(max_workers=len(slabs)) as pool:
        parts = list(pool.map(gather, slabs))
    flat = np.concatenate([p[0] for p in parts])
    contrib = np.concatenate([p[1] for p in parts])
    scatter_add(S_flat, flat, contrib)


@hot_path(reason="owner-computes row kernel run by every forked worker")
def owner_rows_accumulate(
    row_lo: int,
    row_hi: int,
    out_indptr: np.ndarray,
    out_indices: np.ndarray,
    out_weights: np.ndarray,
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    in_weights: np.ndarray,
    labels: np.ndarray,
    scales: np.ndarray,
    n_classes: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute the embedding rows ``row_lo:row_hi`` from scratch.

    Combines the out-edge contributions (``Z[u, Y[v]] += scale[v]·w`` for
    ``u`` in the row range) and the in-edge contributions
    (``Z[v, Y[u]] += scale[u]·w`` for ``v`` in the row range) of every edge
    incident to the range.  Returns the dense ``(row_hi-row_lo, K)`` block.
    ``out`` may supply a reusable flat ``(n_rows*K,)`` buffer (zeroed here).
    """
    n_rows = row_hi - row_lo
    if out is None:
        # repro: ignore[hot-path-alloc] per-worker private row block; callers pass out= to reuse it
        block = np.zeros(n_rows * n_classes, dtype=np.float64)
    else:
        block = out
        block.fill(0.0)
    if n_rows <= 0:
        return block.reshape(0, n_classes)

    # Out-edges of the owned rows: source row gets the destination's class.
    lo, hi = int(out_indptr[row_lo]), int(out_indptr[row_hi])
    if hi > lo:
        dst = out_indices[lo:hi]
        w = out_weights[lo:hi]
        deg = np.diff(out_indptr[row_lo : row_hi + 1])
        src_local = np.repeat(np.arange(n_rows, dtype=np.int64), deg)
        y_dst = labels[dst]
        known = y_dst != UNKNOWN_LABEL
        if np.any(known):
            flat = src_local[known] * n_classes + y_dst[known]
            scatter_add(block, flat, scales[dst[known]] * w[known])

    # In-edges of the owned rows: destination row gets the source's class.
    lo, hi = int(in_indptr[row_lo]), int(in_indptr[row_hi])
    if hi > lo:
        src = in_indices[lo:hi]
        w = in_weights[lo:hi]
        deg = np.diff(in_indptr[row_lo : row_hi + 1])
        dst_local = np.repeat(np.arange(n_rows, dtype=np.int64), deg)
        y_src = labels[src]
        known = y_src != UNKNOWN_LABEL
        if np.any(known):
            flat = dst_local[known] * n_classes + y_src[known]
            scatter_add(block, flat, scales[src[known]] * w[known])
    return block.reshape(n_rows, n_classes)


#: Worker-process cache of shared-memory attachments, keyed by segment name.
#: Re-mapping (and therefore re-faulting) hundreds of megabytes of adjacency
#: on every task would dominate the runtime in this sandbox, so each worker
#: attaches a given segment once and keeps the mapping warm; the cache is
#: LRU-bounded so segments of evicted plans/graphs (whose parent-side
#: finalizers already unlinked them) don't pin O(E) pages per plan forever.
_WORKER_ATTACHMENTS: Dict[str, tuple] = {}

#: Mappings kept per worker.  Generous relative to one call's segment count
#: (~10), tight enough that a K-sweep over many layout plans cannot grow a
#: worker's RSS without bound.
_MAX_WORKER_ATTACHMENTS = 32


def _attach_cached(handles: Dict[str, SharedArrayHandle]) -> Dict[str, np.ndarray]:
    """Attach to every handle, reusing LRU-bounded mappings in this process."""
    from ..parallel.shm import attach

    views: Dict[str, np.ndarray] = {}
    for name, handle in handles.items():
        cached = _WORKER_ATTACHMENTS.pop(handle.shm_name, None)
        if cached is None:
            view, seg = attach(handle)
            cached = (view, seg)
        # Re-insert at the end: plain dicts preserve insertion order, so
        # the front of the dict is always the least-recently-used mapping.
        _WORKER_ATTACHMENTS[handle.shm_name] = cached
        views[name] = cached[0]
    while len(_WORKER_ATTACHMENTS) > _MAX_WORKER_ATTACHMENTS:
        stale_name = next(iter(_WORKER_ATTACHMENTS))
        if stale_name in {h.shm_name for h in handles.values()}:
            break  # everything older is part of the current task
        view, seg = _WORKER_ATTACHMENTS.pop(stale_name)
        del view  # release the exported buffer before closing the mapping
        try:
            seg.close()
        except BufferError:  # pragma: no cover - defensive
            pass
    return views


def _pool_task(
    _context: dict,
    handles: Dict[str, SharedArrayHandle],
    row_lo: int,
    row_hi: int,
    n_classes: int,
) -> None:
    """Worker task: fill the owned row block of the shared embedding.

    Runs inside a long-lived pool worker; all arrays are reached through the
    shared-memory handles, so the task payload is a few hundred bytes.
    """
    views = _attach_cached(handles)
    block = owner_rows_accumulate(
        row_lo,
        row_hi,
        views["out_indptr"],
        views["out_indices"],
        views["out_weights"],
        views["in_indptr"],
        views["in_indices"],
        views["in_weights"],
        views["labels"],
        views["scales"],
        n_classes,
    )
    views["Z"][row_lo:row_hi, :] = block


# --------------------------------------------------------------------------- #
# Long-lived worker pool and shared-graph cache
# --------------------------------------------------------------------------- #
_POOL: Optional[ForkWorkerPool] = None


def _get_pool(n_workers: Optional[int] = None) -> ForkWorkerPool:
    """The session-wide worker pool (created lazily, reused across calls).

    The pool grows to the largest worker count requested so far: a request
    for more workers than the current pool holds recreates it at the new
    size, so an explicit ``n_workers`` is always genuinely honoured.
    """
    global _POOL
    needed = effective_worker_count(None) if n_workers is None else int(n_workers)
    if _POOL is None or _POOL._closed:  # noqa: SLF001 - own class
        _POOL = ForkWorkerPool(needed)
    elif _POOL.n_workers < needed:
        _POOL.close()
        _POOL = ForkWorkerPool(needed)
    return _POOL


def shutdown_workers() -> None:
    """Terminate the session's GEE worker pool and drop the graph cache.

    Mostly useful in tests and at interpreter shutdown; a subsequent
    :func:`gee_parallel` call transparently recreates the pool.
    """
    global _POOL, _WORKSPACE
    if _POOL is not None:
        _POOL.close()
        _POOL = None
    for entry in list(_GRAPH_CACHE.values()):
        entry.close()
    _GRAPH_CACHE.clear()
    for entry in list(_FUSED_CACHE.values()):
        entry.close()
    _FUSED_CACHE.clear()
    if _WORKSPACE is not None:
        _WORKSPACE.close()
        _WORKSPACE = None


atexit.register(shutdown_workers)


class _SharedGraph:
    """Shared-memory copy of one graph's adjacency arrays."""

    def __init__(self, csr: CSRGraph) -> None:
        with trace("shm.ship", what="graph", n_edges=csr.n_edges):
            self.shm = SharedArraySet()
            self.shm.share("out_indptr", csr.indptr)
            self.shm.share("out_indices", csr.indices)
            self.shm.share("out_weights", csr.weights)
            self.shm.share("in_indptr", csr.in_indptr)
            self.shm.share("in_indices", csr.in_indices)
            self.shm.share("in_weights", csr.in_weights)
            self.handles = self.shm.handles()

    def close(self) -> None:
        self.shm.close()


#: Cache of shared-memory graphs keyed by the id() of the CSRGraph; entries
#: are dropped automatically when the CSRGraph is garbage collected.
_GRAPH_CACHE: Dict[int, _SharedGraph] = {}


def evict_shared_graph(csr: CSRGraph) -> None:
    """Drop the shared-memory copy of ``csr``'s adjacency, if one exists.

    Needed when a long-lived CSR is mutated in place
    (``Graph.invalidate_cache`` calls this): the cache is keyed by object
    identity, so without eviction the fork workers would keep reading the
    pre-mutation shared copy.
    """
    stale = _GRAPH_CACHE.pop(id(csr), None)
    if stale is not None:
        stale.close()


class _SharedFused:
    """Shared-memory copy of one plan's fused-layout incidence arrays."""

    def __init__(self, fused) -> None:
        with trace("shm.ship", what="fused-layout"):
            self.shm = SharedArraySet()
            self.shm.share("f_owner_flat", fused.owner_flat)
            self.shm.share("f_partner", fused.partner)
            if fused.weights is not None:
                self.shm.share("f_weights", fused.weights)
            self.handles = self.shm.handles()

    def close(self) -> None:
        self.shm.close()


#: Cache of shared-memory fused layouts keyed by id() of the FusedLayout;
#: entries drop automatically when the layout is garbage collected (the
#: layout lives on its EmbedPlan, which the Graph's plan cache owns).
_FUSED_CACHE: Dict[int, _SharedFused] = {}


def _shared_fused_for(fused) -> _SharedFused:
    key = id(fused)
    cached = _FUSED_CACHE.get(key)
    if cached is not None:
        return cached
    entry = _SharedFused(fused)
    _FUSED_CACHE[key] = entry

    def _evict(_ref, key=key) -> None:
        stale = _FUSED_CACHE.pop(key, None)
        if stale is not None:
            stale.close()

    weakref.finalize(fused, _evict, None)
    return entry


def _fused_pool_task(
    _context: dict,
    handles: Dict[str, SharedArrayHandle],
    row_lo: int,
    row_hi: int,
    n_classes: int,
    rows_per_block: int,
    fully_labelled: bool,
) -> None:
    """Worker task for the fused (sorted-layout) path: fill owned rows.

    Locates its row range in the shared sorted incidence arrays with two
    binary searches, runs the block-local segment sums into its slice of
    the shared ``Z``, and applies the per-column ``1/n_c`` rescale (written
    once by the parent into the shared ``inv`` vector) to its own rows — no
    two tasks ever write the same row, and the O(nK) rescale multiply runs
    inside the row partition instead of serially in the parent.
    """
    from .gee_vectorized import accumulate_fused_rows_sorted

    views = _attach_cached(handles)
    labels = views["labels"]
    owner_flat = views["f_owner_flat"]
    y_idx = labels.astype(owner_flat.dtype, copy=False)
    Z = views["Z"]
    accumulate_fused_rows_sorted(
        Z.reshape(-1),
        owner_flat,
        views["f_partner"],
        views.get("f_weights"),
        y_idx,
        n_classes,
        rows_per_block,
        row_lo,
        row_hi,
        fully_labelled=fully_labelled,
    )
    Z[row_lo:row_hi] *= views["inv"][None, :]


class _Workspace:
    """Reusable per-call shared buffers (labels, scales, embedding output).

    Reusing the same named segments across calls lets the pool workers keep
    their mappings warm (see ``_WORKER_ATTACHMENTS``); only the small label
    and scale vectors are rewritten per call.
    """

    def __init__(self, n: int, k: int) -> None:
        self.n, self.k = n, k
        self.shm = SharedArraySet()
        self.labels = self.shm.empty("labels", (n,), np.int64)
        self.scales = self.shm.empty("scales", (n,), np.float64)
        #: Per-column ``1/n_c`` rescale vector for the fused path (written
        #: once per call by the parent; workers multiply their row slices).
        self.inv = self.shm.empty("inv", (k,), np.float64)
        self.Z = self.shm.empty("Z", (n, k), np.float64)
        self.handles = self.shm.handles()

    def close(self) -> None:
        self.shm.close()


_WORKSPACE: Optional[_Workspace] = None


def _workspace_for(n: int, k: int) -> _Workspace:
    global _WORKSPACE
    if _WORKSPACE is None or _WORKSPACE.n != n or _WORKSPACE.k != k:
        if _WORKSPACE is not None:
            _WORKSPACE.close()
        _WORKSPACE = _Workspace(n, k)
    return _WORKSPACE


def _shared_graph_for(csr: CSRGraph) -> _SharedGraph:
    key = id(csr)
    cached = _GRAPH_CACHE.get(key)
    if cached is not None:
        return cached
    entry = _SharedGraph(csr)
    _GRAPH_CACHE[key] = entry

    def _evict(_ref, key=key) -> None:
        stale = _GRAPH_CACHE.pop(key, None)
        if stale is not None:
            stale.close()

    weakref.finalize(csr, _evict, None)
    return entry


def balanced_ranges_from_work(work: np.ndarray, n_parts: int) -> list:
    """Split ``len(work)`` rows into ranges with near-equal total work."""
    n = work.size
    cum = np.concatenate([[0], np.cumsum(work)])
    total = cum[-1]
    if total == 0:
        return block_ranges(n, n_parts)
    targets = np.linspace(0, total, n_parts + 1)
    cuts = np.searchsorted(cum, targets, side="left")
    cuts[0], cuts[-1] = 0, n
    cuts = np.maximum.accumulate(np.clip(cuts, 0, n))
    return [(int(cuts[i]), int(cuts[i + 1])) for i in range(n_parts)]


def _balanced_row_ranges(
    out_indptr: np.ndarray, in_indptr: np.ndarray, n_parts: int
) -> list:
    """Split vertices into ranges with near-equal total (in+out) edge work."""
    work = out_indptr[1:] - out_indptr[:-1] + in_indptr[1:] - in_indptr[:-1]
    return balanced_ranges_from_work(work, n_parts)


def gee_parallel(
    edges: Union[EdgeList, CSRGraph, Graph],
    labels: np.ndarray,
    n_classes: Optional[int] = None,
    *,
    n_workers: Optional[int] = None,
) -> EmbeddingResult:
    """One-Hot Graph Encoder Embedding, process-parallel over shared memory.

    Parameters
    ----------
    edges:
        The graph as a :class:`~repro.graph.facade.Graph`, an
        :class:`EdgeList`, a prebuilt :class:`CSRGraph`, or any other
        graph-like input (coerced through :meth:`Graph.coerce`).  Adjacency
        construction (the equivalent of Ligra loading its graph) is reported
        separately under the ``"preprocess"`` timing and is not part of the
        embedding time; passing a ``Graph`` reuses its cached CSR views.
    labels, n_classes:
        As in :func:`repro.core.gee_python.gee_python`.
    n_workers:
        Number of forked workers; ``None`` uses every available CPU, ``1``
        runs the kernel in-process (no fork) which is the serial anchor of
        the strong-scaling curve.  An explicit request is *honoured exactly*
        — it is never silently clamped or degraded; an impossible request
        (absurd oversubscription, or >1 workers on a platform without
        ``fork``) raises instead.
    """
    timings: Dict[str, float] = {}
    t_pre = time.perf_counter()
    if isinstance(edges, Graph):
        csr = edges.csr
    elif isinstance(edges, CSRGraph):
        csr = edges
    else:
        edges = validate_edges(edges)
        csr = edges.to_csr()
    n = csr.n_vertices
    # Force construction of the in-adjacency before timing the edge pass.
    in_indptr = csr.in_indptr
    in_indices = csr.in_indices
    in_weights = csr.in_weights
    timings["preprocess"] = time.perf_counter() - t_pre

    y, k = validate_labels(labels, n, n_classes)
    explicit = n_workers is not None and int(n_workers) > 0
    requested = resolve_worker_count(n_workers)
    if explicit and requested > 1 and not fork_available():
        raise RuntimeError(
            f"gee_parallel: n_workers={requested} requested but the 'fork' start "
            "method is unavailable on this platform; pass n_workers=1 (or None "
            "for the automatic fallback)"
        )

    t0 = time.perf_counter()
    # Algorithm 2 lines 3-6, in the compact per-vertex form: the scales are
    # O(n) to build and the dense W follows with one vectorised assignment.
    scales = projection_scales(y, k)
    W = projection_from_scales(y, scales, k)
    t1 = time.perf_counter()
    timings["projection"] = t1 - t0

    if requested == 1 or not fork_available() or csr.n_edges == 0 or n == 0:
        Z = owner_rows_accumulate(
            0,
            n,
            csr.indptr,
            csr.indices,
            csr.weights,
            in_indptr,
            in_indices,
            in_weights,
            y,
            scales,
            k,
        )
        t2 = time.perf_counter()
        timings["edge_pass"] = t2 - t1
        timings["total"] = t2 - t0
        return EmbeddingResult(
            embedding=Z, projection=W, timings=timings, method="gee-parallel", n_workers=1
        )

    ranges = _balanced_row_ranges(csr.indptr, in_indptr, requested)
    # Shared-memory plumbing: the adjacency copy is cached per graph (graph
    # loading, reported as preprocess); labels/scales/Z are per call.
    t_share = time.perf_counter()
    shared_graph = _shared_graph_for(csr)
    pool = _get_pool(requested)
    timings["preprocess"] += time.perf_counter() - t_share

    workspace, handles = _prepare_workspace(csr, shared_graph, y, scales, k)

    t_edge = time.perf_counter()
    Z = _run_ranges(pool, handles, ranges, k, workspace, out=None)
    t2 = time.perf_counter()
    timings["edge_pass"] = t2 - t_edge
    timings["total"] = t2 - t0

    return EmbeddingResult(
        embedding=Z, projection=W, timings=timings, method="gee-parallel", n_workers=requested
    )


def _prepare_workspace(
    csr: CSRGraph,
    shared_graph: "_SharedGraph",
    y: np.ndarray,
    scales: np.ndarray,
    k: int,
):
    """Stage one call's inputs in shared memory (outside the timed region).

    Only the label and scale vectors are rewritten per call — the adjacency
    arrays were shipped once when the shared graph was first cached.
    Returns ``(workspace, handles)`` for :func:`_run_ranges`.
    """
    workspace = _workspace_for(csr.n_vertices, k)
    workspace.labels[:] = y
    workspace.scales[:] = scales
    handles = dict(shared_graph.handles)
    handles.update(workspace.handles)
    return workspace, handles


def _run_ranges(
    pool: ForkWorkerPool,
    handles: Dict[str, SharedArrayHandle],
    ranges: list,
    k: int,
    workspace: "_Workspace",
    out: Optional[np.ndarray],
) -> np.ndarray:
    """The timed edge pass: dispatch row ranges and collect ``Z``."""
    with trace("parallel.dispatch", backend="parallel", n_tasks=len(ranges)):
        pool.map(
            _pool_task,
            [(handles, row_lo, row_hi, k) for row_lo, row_hi in ranges],
            labels=[
                f"backend=parallel rows[{row_lo}:{row_hi}]"
                for row_lo, row_hi in ranges
            ],
        )
    if out is None:
        return np.array(workspace.Z, dtype=np.float64, copy=True)
    np.copyto(out, workspace.Z)
    return out


def _chunked_pool_task(
    _context: dict,
    handles: Dict[str, SharedArrayHandle],
    source_token: dict,
    chunk_lo: int,
    chunk_hi: int,
    n_classes: int,
    slot: int,
) -> None:
    """Worker task for the out-of-core path: accumulate one chunk slab.

    Re-opens the edge source inside the worker — a file-backed store is
    memory-mapped independently (no edge data ever travels between
    processes); an in-memory source reads the shared-memory copy staged by
    the caller.  The slab's contributions go into this task's private row of
    the shared ``partials`` matrix; no two tasks write the same row, and
    the caller reduces with one sum.

    Attaches per call (chunked calls ship a fresh segment set, unlike the
    long-lived workspace of the dense path) and detaches before returning
    so per-call segments are never pinned by worker-side caches.
    """
    from ..graph.io import ChunkedEdgeSource
    from .gee_vectorized import accumulate_chunked_plan
    from .plan import ChunkedPlan

    views, segments = attach_many(handles)
    try:
        if source_token["kind"] == "file":
            source = ChunkedEdgeSource.open(
                source_token["path"], chunk_edges=source_token["chunk_edges"]
            )
        else:
            source = ChunkedEdgeSource(
                views["e_src"],
                views["e_dst"],
                views.get("e_weights"),
                source_token["n_vertices"],
                chunk_edges=source_token["chunk_edges"],
            )
        plan = ChunkedPlan(
            source, n_classes, layout=source_token.get("layout", "none")
        )
        accumulate_chunked_plan(
            views["partials"][slot],
            plan,
            views["labels"],
            views["scales"],
            chunk_lo,
            chunk_hi,
        )
    finally:
        del views
        for seg in segments:
            seg.close()


def gee_parallel_chunked(
    plan,
    labels: np.ndarray,
    *,
    n_workers: Optional[int] = None,
) -> EmbeddingResult:
    """Out-of-core process-parallel GEE on a :class:`~repro.core.plan.ChunkedPlan`.

    The source's chunks are split into contiguous slabs, one per worker;
    each worker streams its slab under the same per-chunk memory bound as
    the serial chunked kernel and accumulates into a private ``(n*K,)``
    partial in shared memory, which the caller reduces with one sum.  A
    file-backed source is re-opened (memory-mapped) inside each worker, so
    the only per-call interprocess traffic is the label/scale vectors and
    the partials — never edge data.  For an in-memory source the edge
    arrays are staged into shared memory once per call.

    Vertex-side state still has to fit: the reduction holds one ``n*K``
    partial per worker (out-of-core bounds the *edge*-side working set).
    Worker-count semantics follow :func:`gee_parallel` (an explicit request
    sizes the pool exactly or raises), with one structural cap: a call can
    run at most one worker per chunk, so the result's ``n_workers`` reports
    the slab count actually executed (``min(requested, n_chunks)``), never
    the nominal request.
    """
    from .gee_vectorized import accumulate_chunked_plan

    y = plan.validate_labels(labels)
    k = plan.n_classes
    n = plan.n_vertices
    timings: Dict[str, float] = {}

    explicit = n_workers is not None and int(n_workers) > 0
    requested = resolve_worker_count(n_workers)
    if explicit and requested > 1 and not fork_available():
        raise RuntimeError(
            f"gee_parallel: n_workers={requested} requested but the 'fork' start "
            "method is unavailable on this platform; pass n_workers=1 (or None "
            "for the automatic fallback)"
        )

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    t1 = time.perf_counter()
    timings["projection"] = t1 - t0

    layout = getattr(plan, "layout", "none")
    source = plan.source
    n_chunks = source.n_chunks
    if requested == 1 or not fork_available() or n_chunks <= 1:
        Z_flat = plan.zeroed_output()
        accumulate_chunked_plan(Z_flat, plan, y, scales)
        workers = 1
        Z = Z_flat.reshape(n, k)
        if layout == "sorted":
            from .gee_vectorized import class_rescale

            class_rescale(Z, y, k)
        t2 = time.perf_counter()
        timings["edge_pass"] = t2 - t1
    else:
        n_tasks = min(requested, n_chunks)
        workers = n_tasks
        cuts = np.linspace(0, n_chunks, n_tasks + 1).astype(np.int64)
        t_share = time.perf_counter()
        pool = _get_pool(requested)
        shm = SharedArraySet()
        try:
            shm.share("labels", y)
            shm.share("scales", scales)
            partials = shm.zeros("partials", (n_tasks, n * k), np.float64)
            if source.path is not None:
                token = {
                    "kind": "file",
                    "path": str(source.path),
                    "chunk_edges": source.chunk_edges,
                    "layout": layout,
                }
            else:
                shm.share("e_src", np.asarray(source.src, dtype=np.int64))
                shm.share("e_dst", np.asarray(source.dst, dtype=np.int64))
                if source.weights is not None:
                    shm.share(
                        "e_weights", np.asarray(source.weights, dtype=np.float64)
                    )
                token = {
                    "kind": "shm",
                    "n_vertices": n,
                    "chunk_edges": source.chunk_edges,
                    "layout": layout,
                }
            handles = shm.handles()
            timings["preprocess"] = time.perf_counter() - t_share
            t_edge = time.perf_counter()
            with trace(
                "parallel.dispatch", backend="parallel-chunked", n_tasks=n_tasks
            ):
                pool.map(
                    _chunked_pool_task,
                    [
                        (handles, token, int(cuts[i]), int(cuts[i + 1]), k, i)
                        for i in range(n_tasks)
                    ],
                    labels=[
                        f"backend=parallel-chunked chunks[{int(cuts[i])}:"
                        f"{int(cuts[i + 1])}) slot={i}"
                        for i in range(n_tasks)
                    ],
                )
            Z_flat = plan.zeroed_output()
            np.sum(partials, axis=0, out=Z_flat)
            Z = Z_flat.reshape(n, k)
            if layout == "sorted":
                from .gee_vectorized import class_rescale

                class_rescale(Z, y, k)
            t2 = time.perf_counter()
            timings["edge_pass"] = t2 - t_edge
        finally:
            shm.close()
    timings["total"] = t2 - t0

    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(y, scales, k),
        timings=timings,
        method="gee-parallel",
        n_workers=workers,
        buffer_view=True,
        layout=layout,
    )


def _gee_parallel_fused(
    plan,
    labels: np.ndarray,
    *,
    n_workers: Optional[int] = None,
) -> EmbeddingResult:
    """Owner-computes parallel GEE over a plan's *sorted* fused layout.

    Same owner-computes guarantees as the classic path (every row
    single-writer, deterministic, no atomics), but the workers read the
    plan's sorted incidence arrays instead of CSR/CSC adjacency: each
    locates its degree-balanced row range with two binary searches and runs
    the block-local segment-sum kernel into its slice of the shared output,
    then rescales its own rows by ``diag(1/n_c)``.  Only the label vector
    travels per call; the incidence arrays ship through shared memory once
    per plan.
    """
    from .gee_vectorized import accumulate_fused, class_rescale

    y = plan.validate_labels(labels)
    k = plan.n_classes
    n = plan.n_vertices
    timings: Dict[str, float] = {}

    t_pre = time.perf_counter()
    fused = plan.fused  # compiled once, cached on the plan
    timings["preprocess"] = time.perf_counter() - t_pre

    explicit = n_workers is not None and int(n_workers) > 0
    requested = resolve_worker_count(n_workers)
    if explicit and requested > 1 and not fork_available():
        raise RuntimeError(
            f"gee_parallel: n_workers={requested} requested but the 'fork' start "
            "method is unavailable on this platform; pass n_workers=1 (or None "
            "for the automatic fallback)"
        )

    t0 = time.perf_counter()
    fully = bool(y.size) and int(y.min()) != UNKNOWN_LABEL
    y_idx = y.astype(fused.index_dtype, copy=False)
    t1 = time.perf_counter()
    timings["projection"] = t1 - t0

    if requested == 1 or not fork_available() or plan.n_edges == 0:
        t_edge = time.perf_counter()
        Z = plan.output_matrix()
        accumulate_fused(Z.reshape(-1), fused, y_idx, fully_labelled=fully)
        class_rescale(Z, y, k)
        workers = 1
    else:
        from .validation import class_counts, inverse_class_counts

        ranges = plan.fused_row_ranges(requested)
        t_share = time.perf_counter()
        shared_fused = _shared_fused_for(fused)
        pool = _get_pool(requested)
        workspace = _workspace_for(n, k)
        workspace.labels[:] = y
        workspace.inv[:] = inverse_class_counts(class_counts(y, k))
        handles = dict(shared_fused.handles)
        handles.update(workspace.handles)
        timings["preprocess"] += time.perf_counter() - t_share
        t_edge = time.perf_counter()
        with trace(
            "parallel.dispatch", backend="parallel-fused", n_tasks=len(ranges)
        ):
            pool.map(
                _fused_pool_task,
                [
                    (handles, row_lo, row_hi, k, fused.rows_per_block, fully)
                    for row_lo, row_hi in ranges
                ],
                labels=[
                    f"backend=parallel-fused rows[{row_lo}:{row_hi}]"
                    for row_lo, row_hi in ranges
                ],
            )
        Z = plan.output_matrix()
        np.copyto(Z, workspace.Z)
        workers = requested
    t2 = time.perf_counter()
    timings["edge_pass"] = t2 - t_edge
    timings["total"] = t2 - t0

    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(
            y, projection_scales(y, k), k
        ),
        timings=timings,
        method="gee-parallel",
        n_workers=workers,
        buffer_view=True,
        layout=fused.layout,
    )


def gee_parallel_with_plan(
    plan,
    labels: np.ndarray,
    *,
    n_workers: Optional[int] = None,
) -> EmbeddingResult:
    """Process-parallel GEE on a compiled :class:`~repro.core.plan.EmbedPlan`.

    The plan's CSR/CSC views were forced at compilation and its
    shared-memory copy is cached after the first call, so per call only the
    label and scale vectors travel to the worker pool; the degree-balanced
    row partition is cached on the plan per worker count (worker sweeps
    partition once per count).  The returned embedding is a view of the
    plan's reused output buffer.

    Layout plans route to the fused segment-sum kernels: ``"sorted"``
    supports the full owner-computes worker partition
    (:func:`_gee_parallel_fused`); ``"blocked"`` buckets cannot be split by
    row range, so it runs the serial fused kernel in-process.
    """
    if plan.layout == "sorted":
        return _gee_parallel_fused(plan, labels, n_workers=n_workers)
    if plan.layout == "blocked":
        # Blocked buckets keep arrival order inside each block, so they
        # cannot be split into single-writer row ranges; the kernel is
        # inherently serial.  An explicit multi-worker request is therefore
        # unsatisfiable and raises (same contract as every other
        # impossible explicit n_workers), instead of silently degrading.
        if n_workers is not None and int(n_workers) > 1:
            raise RuntimeError(
                f"gee_parallel: n_workers={int(n_workers)} requested but a "
                'layout="blocked" plan runs the serial fused kernel (its '
                "buckets cannot be row-partitioned); use layout=\"sorted\" "
                "for the parallel fused path, or drop n_workers"
            )
        from .gee_vectorized import gee_fused_with_plan

        result = gee_fused_with_plan(plan, labels)
        result.method = "gee-parallel"
        return result
    y = plan.validate_labels(labels)
    k = plan.n_classes
    n = plan.n_vertices
    timings: Dict[str, float] = {}

    # Materialise the plan's adjacency views (cached after the first call)
    # before any timed region starts — same treatment as classic
    # gee_parallel's "preprocess" phase.
    t_pre = time.perf_counter()
    csr = plan.csr
    in_indptr = csr.in_indptr
    timings["preprocess"] = time.perf_counter() - t_pre

    explicit = n_workers is not None and int(n_workers) > 0
    requested = resolve_worker_count(n_workers)
    if explicit and requested > 1 and not fork_available():
        raise RuntimeError(
            f"gee_parallel: n_workers={requested} requested but the 'fork' start "
            "method is unavailable on this platform; pass n_workers=1 (or None "
            "for the automatic fallback)"
        )

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    t1 = time.perf_counter()
    timings["projection"] = t1 - t0

    if requested == 1 or not fork_available() or csr.n_edges == 0 or n == 0:
        t_edge = time.perf_counter()
        Z = owner_rows_accumulate(
            0,
            n,
            csr.indptr,
            csr.indices,
            csr.weights,
            in_indptr,
            csr.in_indices,
            csr.in_weights,
            y,
            scales,
            k,
            out=plan.zeroed_output(),
        )
        workers = 1
    else:
        ranges = plan.row_ranges(requested)
        t_share = time.perf_counter()
        shared_graph = _shared_graph_for(csr)
        pool = _get_pool(requested)
        timings["preprocess"] += time.perf_counter() - t_share
        workspace, handles = _prepare_workspace(csr, shared_graph, y, scales, k)
        t_edge = time.perf_counter()
        Z = _run_ranges(pool, handles, ranges, k, workspace, out=plan.output_matrix())
        workers = requested
    t2 = time.perf_counter()
    timings["edge_pass"] = t2 - t_edge
    # Same semantics as classic gee_parallel: total spans projection start
    # to edge-pass end, including the per-call O(n) label/scale staging
    # (after the first call the shared graph and row ranges are cache hits,
    # so the extra span over projection+edge_pass is the staging cost).
    timings["total"] = t2 - t0

    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(y, scales, k),
        timings=timings,
        method="gee-parallel",
        n_workers=workers,
        buffer_view=True,
    )
