"""Reference GEE: Algorithm 1 of the paper, as a pure-Python edge loop.

This is the faithful re-implementation of the original interpreted
implementation the paper benchmarks as "GEE-Python": a ``for`` loop over
the edge list performing two scalar updates per edge.  It is intentionally
*not* optimised — it is the baseline every other implementation is compared
against (Table I column 1) and the oracle the equivalence tests trust.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..graph.edgelist import EdgeList
from .projection import build_projection, projection_from_scales, projection_scales
from .result import EmbeddingResult
from .validation import UNKNOWN_LABEL, validate_edges, validate_labels

__all__ = ["gee_python", "gee_python_with_plan"]


def gee_python(
    edges: EdgeList,
    labels: np.ndarray,
    n_classes: Optional[int] = None,
) -> EmbeddingResult:
    """One-Hot Graph Encoder Embedding, reference implementation.

    Parameters
    ----------
    edges:
        Directed, optionally weighted edge list (``E ∈ R^{s×3}``).  For an
        undirected graph pass both edge directions (see
        :func:`repro.graph.builders.symmetrize`).
    labels:
        Per-vertex class labels; ``-1`` marks an unknown label (the paper's
        ``Y = 0``).  At least one vertex must be labelled unless
        ``n_classes`` is given.
    n_classes:
        Number of classes ``K``; inferred from the labels when omitted.

    Returns
    -------
    EmbeddingResult
        with ``Z ∈ R^{n×K}``, ``W ∈ R^{n×K}`` and phase timings.
    """
    edges = validate_edges(edges)
    y, k = validate_labels(labels, edges.n_vertices, n_classes)
    n = edges.n_vertices

    t0 = time.perf_counter()
    W = build_projection(y, k)
    t1 = time.perf_counter()

    Z = np.zeros((n, k), dtype=np.float64)
    src = edges.src
    dst = edges.dst
    weights = edges.effective_weights()
    # Algorithm 1, lines 7-12: single pass over the edges.
    for i in range(edges.n_edges):
        u = int(src[i])
        v = int(dst[i])
        w = float(weights[i])
        yv = int(y[v])
        yu = int(y[u])
        if yv != UNKNOWN_LABEL:
            Z[u, yv] += W[v, yv] * w
        if yu != UNKNOWN_LABEL:
            Z[v, yu] += W[u, yu] * w
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection=W,
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-python",
        n_workers=1,
    )


def gee_python_with_plan(plan, labels: np.ndarray) -> EmbeddingResult:
    """Reference loop on a compiled :class:`~repro.core.plan.EmbedPlan`.

    Skips edge validation and the output allocation (both done at plan
    compilation) and reads the per-vertex scales instead of the dense ``W``
    — the per-edge loop itself is unchanged, it *is* the baseline.  The
    returned embedding is a view of the plan's reused output buffer.
    """
    y = plan.validate_labels(labels)
    k = plan.n_classes

    t0 = time.perf_counter()
    scales = projection_scales(y, k)
    t1 = time.perf_counter()

    Z = plan.zeroed_output().reshape(plan.n_vertices, k)
    src, dst, weights = plan.src, plan.dst, plan.weights
    for i in range(plan.n_edges):
        u = int(src[i])
        v = int(dst[i])
        w = float(weights[i])
        yv = int(y[v])
        yu = int(y[u])
        if yv != UNKNOWN_LABEL:
            Z[u, yv] += scales[v] * w
        if yu != UNKNOWN_LABEL:
            Z[v, yu] += scales[u] * w
    t2 = time.perf_counter()

    return EmbeddingResult(
        embedding=Z,
        projection_builder=lambda: projection_from_scales(y, scales, k),
        timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
        method="gee-python",
        n_workers=1,
        buffer_view=True,
    )
