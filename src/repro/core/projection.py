"""Construction of the GEE projection matrix ``W``.

Algorithm 1, lines 2–6: for each class ``k``, every vertex with label ``k``
gets ``W[vertex, k] = 1 / count(Y == k)``; all other entries are zero.
Algorithm 2 parallelises this loop over classes (it costs ``O(nK)`` and
becomes the dominant term only for very sparse graphs, §III) — both the
serial and the class-parallel construction are provided, plus the compact
"per-vertex scale" form the fast kernels use (they never materialise the
dense ``W``; only ``W[v, Y[v]] = 1 / n_{Y[v]}`` is ever read).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

import numpy as np

from .validation import UNKNOWN_LABEL, class_counts, inverse_class_counts

__all__ = [
    "build_projection",
    "build_projection_parallel",
    "projection_scales",
    "projection_from_scales",
]


def build_projection(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Serial construction of ``W`` (Algorithm 1, lines 2–6)."""
    n = labels.shape[0]
    W = np.zeros((n, n_classes), dtype=np.float64)
    counts = class_counts(labels, n_classes)
    for k in range(n_classes):
        if counts[k] == 0:
            continue
        idx = np.flatnonzero(labels == k)
        W[idx, k] = 1.0 / counts[k]
    return W


def build_projection_parallel(
    labels: np.ndarray, n_classes: int, *, n_workers: Optional[int] = None
) -> np.ndarray:
    """Class-parallel construction of ``W`` (Algorithm 2, lines 3–6).

    Each class's column is independent, so the loop over ``k`` is a natural
    parallel-for.  Threads are sufficient here because the per-class work is
    a NumPy masked assignment (the GIL is released inside NumPy for the bulk
    of it) and the total work is only ``O(nK)``.
    """
    n = labels.shape[0]
    W = np.zeros((n, n_classes), dtype=np.float64)
    counts = class_counts(labels, n_classes)

    def fill(k: int) -> None:
        if counts[k] == 0:
            return
        idx = np.flatnonzero(labels == k)
        W[idx, k] = 1.0 / counts[k]

    if n_classes == 0:
        return W
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        list(pool.map(fill, range(n_classes)))
    return W


def projection_scales(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Per-vertex scale ``W[v, Y[v]]`` (0 for unlabelled vertices).

    The edge pass only ever reads ``W(v, Y(v))`` (Algorithm 1, lines 10–11),
    so the fast kernels carry this length-``n`` vector instead of the dense
    ``n×K`` matrix — same values, ``K×`` less memory traffic.
    """
    scales = np.zeros(labels.shape[0], dtype=np.float64)
    known = labels != UNKNOWN_LABEL
    lab = labels[known]
    inv = inverse_class_counts(class_counts(labels, n_classes))
    scales[known] = inv[lab]
    return scales


def projection_from_scales(labels: np.ndarray, scales: np.ndarray, n_classes: int) -> np.ndarray:
    """Rebuild the dense ``W`` from per-vertex scales (for reporting/tests)."""
    n = labels.shape[0]
    W = np.zeros((n, n_classes), dtype=np.float64)
    known = np.flatnonzero(labels != UNKNOWN_LABEL)
    W[known, labels[known]] = scales[known]
    return W
