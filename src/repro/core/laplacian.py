"""Laplacian variant of GEE.

The original GEE paper defines two encoder embeddings: the adjacency
version (what Algorithms 1/2 compute directly) and the Laplacian version,
which runs the same single pass over edges whose weights have been rescaled
by the normalised graph Laplacian factor ``1 / sqrt(d_u * d_v)``.  The
IPPS paper omits this preprocessing "for brevity" (§II) but the public GEE
code supports it, so the reproduction does too: :func:`laplacian_reweight`
performs the preprocessing and :func:`gee_laplacian` composes it with any of
the GEE implementations.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..graph.edgelist import EdgeList
from .gee_vectorized import gee_vectorized
from .result import EmbeddingResult

__all__ = ["weighted_total_degrees", "laplacian_reweight", "gee_laplacian"]


def weighted_total_degrees(edges: EdgeList) -> np.ndarray:
    """Weighted total degree (out + in) of every vertex.

    For a symmetrised graph this is twice the undirected weighted degree;
    the constant factor only rescales the embedding uniformly and does not
    affect its class structure.
    """
    w = edges.effective_weights()
    out_deg = np.bincount(edges.src, weights=w, minlength=edges.n_vertices)
    in_deg = np.bincount(edges.dst, weights=w, minlength=edges.n_vertices)
    return out_deg + in_deg


def laplacian_reweight(
    edges: EdgeList, *, degrees: Optional[np.ndarray] = None
) -> EdgeList:
    """Rescale every edge weight by ``1 / sqrt(d_u * d_v)``.

    Vertices with zero degree cannot appear as edge endpoints, so the
    division is always well defined for actual edges.  ``degrees`` lets a
    caller with a cached :func:`weighted_total_degrees` vector (the
    :class:`~repro.graph.facade.Graph` facade) skip recomputing it.
    """
    deg = weighted_total_degrees(edges) if degrees is None else degrees
    w = edges.effective_weights()
    du = deg[edges.src]
    dv = deg[edges.dst]
    new_w = w / np.sqrt(du * dv)
    return edges.with_weights(new_w)


def gee_laplacian(
    edges: EdgeList,
    labels: np.ndarray,
    n_classes: Optional[int] = None,
    *,
    implementation: Callable[..., EmbeddingResult] = gee_vectorized,
    **kwargs,
) -> EmbeddingResult:
    """Laplacian GEE: reweight edges, then run any GEE implementation.

    ``implementation`` is one of :func:`~repro.core.gee_python.gee_python`,
    :func:`~repro.core.gee_vectorized.gee_vectorized`,
    :func:`~repro.core.gee_ligra.gee_ligra` or
    :func:`~repro.core.gee_parallel.gee_parallel`; extra keyword arguments
    are forwarded to it.
    """
    reweighted = laplacian_reweight(edges)
    result = implementation(reweighted, labels, n_classes, **kwargs)
    result.method = f"{result.method}+laplacian"
    return result
