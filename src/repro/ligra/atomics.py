"""Atomic update primitives over NumPy arrays.

Ligra's ``writeAdd`` / ``writeMin`` / ``CAS`` are single hardware
instructions.  CPython cannot emit those against an arbitrary buffer, so
this module provides the same *semantics* — race-free read-modify-write on
individual array elements — using striped locks.  The paper reports that
turning atomics off made no measurable difference for GEE (§IV); the
ablation bench ``bench_ablation_atomics.py`` reproduces that comparison by
running the same kernel with :class:`AtomicArray` (locked) and
:class:`UnsafeArray` (plain adds).

Two implementation notes:

* Lock striping (``n_locks`` locks shared by hashing the flat index) keeps
  the memory overhead constant, at the cost of occasional false conflicts —
  exactly like a hardware LL/SC reservation granule.
* Under the GIL, ``arr[i] += v`` on a NumPy scalar is *not* atomic (it is a
  read, an add and a write, and the GIL can be released between them), so
  the locks are genuinely required for the thread backend.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["AtomicArray", "UnsafeArray", "make_accumulator"]

IndexLike = Union[int, tuple]


class AtomicArray:
    """A NumPy array with lock-protected element-wise atomic operations."""

    def __init__(self, array: np.ndarray, n_locks: int = 1024) -> None:
        if n_locks <= 0:
            raise ValueError("n_locks must be positive")
        self._array = array
        self._n_locks = int(n_locks)
        self._locks = [threading.Lock() for _ in range(self._n_locks)]

    # ------------------------------------------------------------------ #
    @property
    def array(self) -> np.ndarray:
        """The wrapped array (reads are always safe; writes must go through
        the atomic methods while other threads may be writing)."""
        return self._array

    @property
    def shape(self):
        return self._array.shape

    def _lock_for(self, index: IndexLike) -> threading.Lock:
        if isinstance(index, tuple):
            flat = int(np.ravel_multi_index(index, self._array.shape))
        else:
            flat = int(index)
        return self._locks[flat % self._n_locks]

    # ------------------------------------------------------------------ #
    # Ligra primitives
    # ------------------------------------------------------------------ #
    def write_add(self, index: IndexLike, value: float) -> None:
        """Atomically ``array[index] += value`` (Ligra's ``writeAdd``)."""
        with self._lock_for(index):
            self._array[index] += value

    def write_min(self, index: IndexLike, value: float) -> bool:
        """Atomically set ``array[index] = min(array[index], value)``.

        Returns True when the stored value changed (Ligra's ``writeMin``
        convention, used by BFS/CC style algorithms to detect the winner).
        """
        with self._lock_for(index):
            if value < self._array[index]:
                self._array[index] = value
                return True
            return False

    def compare_and_swap(self, index: IndexLike, expected, new) -> bool:
        """Atomic CAS: store ``new`` iff the current value equals ``expected``."""
        with self._lock_for(index):
            if self._array[index] == expected:
                self._array[index] = new
                return True
            return False

    def add_at(self, indices, values) -> None:
        """Bulk scatter-add with a single coarse lock pass.

        Used by block-level updates: each call locks once per unique stripe
        touched rather than once per element, then performs an unbuffered
        ``np.add.at``.  Semantically equivalent to a loop of
        :meth:`write_add`.
        """
        # Lock every stripe in a canonical order to avoid deadlock with
        # concurrent bulk calls.
        flat = np.ravel_multi_index(indices, self._array.shape) if isinstance(indices, tuple) else np.asarray(indices)
        stripes = np.unique(flat % self._n_locks)
        acquired = []
        try:
            for s in stripes:
                lock = self._locks[int(s)]
                lock.acquire()
                acquired.append(lock)
            # repro: ignore[no-add-at] duplicate-safe scatter under held stripe locks; cold path
            np.add.at(self._array, indices, values)
        finally:
            for lock in reversed(acquired):
                lock.release()


class UnsafeArray:
    """Same interface as :class:`AtomicArray` but with no locking.

    This is the "atomics off, unsafe updates" configuration the paper runs
    to show that the lock-free atomics are not the scaling bottleneck.
    """

    def __init__(self, array: np.ndarray) -> None:
        self._array = array

    @property
    def array(self) -> np.ndarray:
        return self._array

    @property
    def shape(self):
        return self._array.shape

    def write_add(self, index: IndexLike, value: float) -> None:
        self._array[index] += value

    def write_min(self, index: IndexLike, value: float) -> bool:
        if value < self._array[index]:
            self._array[index] = value
            return True
        return False

    def compare_and_swap(self, index: IndexLike, expected, new) -> bool:
        if self._array[index] == expected:
            self._array[index] = new
            return True
        return False

    def add_at(self, indices, values) -> None:
        # repro: ignore[no-add-at] the "unsafe updates" ablation is defined as the buffered scatter
        np.add.at(self._array, indices, values)


def make_accumulator(array: np.ndarray, *, atomic: bool = True, n_locks: int = 1024):
    """Factory returning an :class:`AtomicArray` or :class:`UnsafeArray`."""
    if atomic:
        return AtomicArray(array, n_locks=n_locks)
    return UnsafeArray(array)
