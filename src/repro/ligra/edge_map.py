"""The ``edgeMap`` primitive and the function protocol it maps.

This is the heart of the Ligra programming model (paper §II): apply a
user-supplied update function to every out-edge of a frontier, returning
the frontier of destinations whose update "fired".  Two traversal modes are
provided, mirroring Ligra:

* **sparse** (``edgeMapSparse``) — iterate the out-edges of each frontier
  vertex; best for small frontiers (BFS-style algorithms).
* **dense** (``edgeMapDense``) — iterate every vertex's edge list; best when
  the frontier covers most of the graph.  GEE-Ligra always runs in this
  mode because its frontier is the whole vertex set (paper §III), with one
  worker per vertex edge list.

The user function is an :class:`EdgeMapFunction`.  Backends use the richest
hook the function provides: per-edge scalar calls always work, a
``update_block`` hook lets a backend hand a whole vertex edge list to NumPy,
and ``update_batch`` lets the vectorised backend process an arbitrary flat
slab of edges at once.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from .vertex_subset import VertexSubset

__all__ = ["EdgeMapFunction", "edge_map_sparse", "edge_map_dense_serial"]


class EdgeMapFunction:
    """Base class for functions mapped over edges.

    Subclasses must implement :meth:`update`; the other hooks have sensible
    defaults and are optional accelerators.
    """

    def update(self, u: int, v: int, w: float) -> bool:
        """Apply the edge ``(u, v, w)``; return True if the destination
        should join the output frontier.  May assume no concurrent call
        touches the same destination (dense mode orders them)."""
        raise NotImplementedError

    def update_atomic(self, u: int, v: int, w: float) -> bool:
        """Race-safe version of :meth:`update`, used when different workers
        may target the same destination concurrently.  Defaults to
        :meth:`update` (correct for serial execution)."""
        return self.update(u, v, w)

    def cond(self, v: int) -> bool:
        """Whether destination ``v`` still accepts updates (Ligra's ``cond``);
        returning False lets dense traversal skip or early-exit a vertex."""
        return True

    # ------------------------------------------------------------------ #
    # Optional bulk hooks
    # ------------------------------------------------------------------ #
    def update_block(
        self, u: int, dsts: np.ndarray, weights: np.ndarray
    ) -> Optional[np.ndarray]:
        """Process the whole out-edge list of source ``u`` at once.

        Return a boolean mask (aligned with ``dsts``) of destinations that
        joined the output frontier, or ``None`` to fall back to per-edge
        calls.  Implementing this hook is what makes an edge map fast in
        pure Python: the backend loops over *vertices*, NumPy loops over
        their edges.
        """
        return None

    def update_batch(
        self, srcs: np.ndarray, dsts: np.ndarray, weights: np.ndarray
    ) -> Optional[np.ndarray]:
        """Process an arbitrary flat batch of edges at once.

        Used by the vectorised backend and by parallel workers, which hand
        each worker's edge range to this hook in one call.  Return a boolean
        mask of destinations that fired or ``None`` to fall back.
        """
        return None

    def cond_mask(self, n_vertices: int) -> Optional[np.ndarray]:
        """Dense form of :meth:`cond`: a boolean array over all vertices, or
        ``None`` if per-vertex calls should be used."""
        return None


def edge_map_sparse(
    graph: CSRGraph, frontier: VertexSubset, fn: EdgeMapFunction
) -> VertexSubset:
    """Serial ``edgeMapSparse``: traverse out-edges of frontier vertices."""
    out_mask = np.zeros(graph.n_vertices, dtype=bool)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    for u in frontier.indices().tolist():
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        if lo == hi:
            continue
        dsts = indices[lo:hi]
        ws = weights[lo:hi]
        block = fn.update_block(u, dsts, ws)
        if block is not None:
            out_mask[dsts[block]] = True
            continue
        for j in range(hi - lo):
            v = int(dsts[j])
            if fn.cond(v) and fn.update_atomic(u, v, float(ws[j])):
                out_mask[v] = True
    return VertexSubset(graph.n_vertices, mask=out_mask)


def edge_map_dense_serial(
    graph: CSRGraph, frontier: VertexSubset, fn: EdgeMapFunction
) -> VertexSubset:
    """Serial ``edgeMapDense``: walk every vertex's out-edge list.

    Following the paper's description (§III), the dense traversal processes
    the out-edge list of each source vertex sequentially; only edges whose
    source is in the frontier are applied.  With a full frontier this visits
    every edge exactly once.
    """
    out_mask = np.zeros(graph.n_vertices, dtype=bool)
    fmask = frontier.mask()
    full = len(frontier) == graph.n_vertices
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    for u in range(graph.n_vertices):
        if not full and not fmask[u]:
            continue
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        if lo == hi:
            continue
        dsts = indices[lo:hi]
        ws = weights[lo:hi]
        block = fn.update_block(u, dsts, ws)
        if block is not None:
            out_mask[dsts[block]] = True
            continue
        for j in range(hi - lo):
            v = int(dsts[j])
            if fn.cond(v) and fn.update(u, v, float(ws[j])):
                out_mask[v] = True
    return VertexSubset(graph.n_vertices, mask=out_mask)
