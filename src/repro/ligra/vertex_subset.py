"""Vertex subsets (frontiers) in sparse and dense form.

Ligra's central data type is the ``vertexSubset``: the set of "active"
vertices whose out-edges the next ``edgeMap`` will traverse.  Ligra keeps
the subset either as a sparse list of ids or as a dense boolean array and
converts between the two based on the subset's size; this class mirrors
that behaviour, including the automatic representation switch used by
:func:`repro.ligra.edge_map.edge_map` to pick the dense or sparse traversal.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

import numpy as np

__all__ = ["VertexSubset"]


class VertexSubset:
    """A subset of the vertices ``0 .. n-1``.

    Construct with either a sparse index array or a dense boolean mask; both
    representations are cached once computed.
    """

    def __init__(
        self,
        n_vertices: int,
        *,
        indices: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        if n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        self.n_vertices = int(n_vertices)
        self._indices: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None
        if indices is not None and mask is not None:
            raise ValueError("pass either indices or mask, not both")
        if indices is not None:
            idx = np.unique(np.asarray(indices, dtype=np.int64))
            if idx.size and (idx[0] < 0 or idx[-1] >= n_vertices):
                raise ValueError("vertex ids out of range")
            self._indices = idx
        elif mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (n_vertices,):
                raise ValueError(f"mask must have shape ({n_vertices},)")
            self._mask = mask.copy()
        else:
            self._indices = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, n_vertices: int) -> "VertexSubset":
        """The empty frontier."""
        return cls(n_vertices, indices=np.empty(0, dtype=np.int64))

    @classmethod
    def full(cls, n_vertices: int) -> "VertexSubset":
        """The frontier containing every vertex (GEE-Ligra's frontier)."""
        return cls(n_vertices, mask=np.ones(n_vertices, dtype=bool))

    @classmethod
    def single(cls, n_vertices: int, vertex: int) -> "VertexSubset":
        """A frontier holding one vertex (e.g. a BFS source)."""
        return cls(n_vertices, indices=np.asarray([vertex], dtype=np.int64))

    @classmethod
    def from_iterable(cls, n_vertices: int, vertices: Iterable[int]) -> "VertexSubset":
        """Build from any iterable of vertex ids."""
        return cls(n_vertices, indices=np.fromiter(vertices, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Representations
    # ------------------------------------------------------------------ #
    def indices(self) -> np.ndarray:
        """Sorted sparse index representation."""
        if self._indices is None:
            self._indices = np.flatnonzero(self._mask).astype(np.int64)
        return self._indices

    def mask(self) -> np.ndarray:
        """Dense boolean representation."""
        if self._mask is None:
            m = np.zeros(self.n_vertices, dtype=bool)
            m[self._indices] = True
            self._mask = m
        return self._mask

    # ------------------------------------------------------------------ #
    # Set protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self._indices is not None:
            return int(self._indices.size)
        return int(np.count_nonzero(self._mask))

    def __bool__(self) -> bool:
        return len(self) > 0

    def __contains__(self, vertex: int) -> bool:
        if not 0 <= vertex < self.n_vertices:
            return False
        return bool(self.mask()[vertex])

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices().tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexSubset):
            return NotImplemented
        return self.n_vertices == other.n_vertices and np.array_equal(
            self.indices(), other.indices()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VertexSubset({len(self)}/{self.n_vertices})"

    # ------------------------------------------------------------------ #
    # Set algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "VertexSubset") -> "VertexSubset":
        """Set union."""
        self._check_compatible(other)
        return VertexSubset(self.n_vertices, mask=self.mask() | other.mask())

    def intersection(self, other: "VertexSubset") -> "VertexSubset":
        """Set intersection."""
        self._check_compatible(other)
        return VertexSubset(self.n_vertices, mask=self.mask() & other.mask())

    def difference(self, other: "VertexSubset") -> "VertexSubset":
        """Set difference (``self`` minus ``other``)."""
        self._check_compatible(other)
        return VertexSubset(self.n_vertices, mask=self.mask() & ~other.mask())

    def complement(self) -> "VertexSubset":
        """All vertices not in the subset."""
        return VertexSubset(self.n_vertices, mask=~self.mask())

    def _check_compatible(self, other: "VertexSubset") -> None:
        if self.n_vertices != other.n_vertices:
            raise ValueError("vertex subsets are over different vertex counts")

    # ------------------------------------------------------------------ #
    # Heuristics
    # ------------------------------------------------------------------ #
    def out_degree_sum(self, indptr: np.ndarray) -> int:
        """Total out-degree of the subset, used by the dense/sparse switch."""
        idx = self.indices()
        if idx.size == 0:
            return 0
        indptr = np.asarray(indptr)
        return int(np.sum(indptr[idx + 1] - indptr[idx]))

    def is_dense_preferred(self, indptr: np.ndarray, n_edges: int, threshold_fraction: float = 1 / 20) -> bool:
        """Ligra's switch rule: go dense when ``|U| + sum_deg(U) > m/20``."""
        return len(self) + self.out_degree_sum(indptr) > n_edges * threshold_fraction
