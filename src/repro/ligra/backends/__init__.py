"""Execution backends for the dense edge map."""

from .base import AccumulatingEdgeMapFunction, DenseBackend, frontier_edges
from .processes import ProcessBackend
from .serial import SerialBackend
from .threads import ThreadBackend
from .vectorized import VectorizedBackend

__all__ = [
    "DenseBackend",
    "AccumulatingEdgeMapFunction",
    "frontier_edges",
    "SerialBackend",
    "VectorizedBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]


def make_backend(name: str, n_workers: int | None = None) -> DenseBackend:
    """Create a backend by name: serial, vectorized, threads or processes."""
    name = name.lower()
    if name == "serial":
        return SerialBackend()
    if name == "vectorized":
        return VectorizedBackend()
    if name in ("threads", "thread"):
        return ThreadBackend(n_workers)
    if name in ("processes", "process"):
        return ProcessBackend(n_workers)
    raise ValueError(
        f"unknown backend {name!r}; expected serial, vectorized, threads or processes"
    )
