"""Vectorised dense backend.

Processes the frontier's edges as flat NumPy slabs through the function's
``update_batch`` hook.  This plays the role the Numba JIT plays in the
paper: it removes the per-edge interpreter overhead but still executes on a
single core.  Functions without a batch hook fall back to the serial
traversal.
"""

from __future__ import annotations

import numpy as np

from ...graph.csr import CSRGraph
from ..edge_map import EdgeMapFunction, edge_map_dense_serial
from ..vertex_subset import VertexSubset
from .base import DenseBackend, frontier_edges

__all__ = ["VectorizedBackend"]


class VectorizedBackend(DenseBackend):
    """Single-threaded batch execution of the dense edge map.

    Parameters
    ----------
    chunk_edges:
        Edges per batch call; ``None`` (default) hands the whole edge set to
        one call.  Chunking bounds the size of the temporary index arrays
        the batch hook builds without changing results, but costs one pass
        over the function's output per chunk — only worth it when the edge
        arrays themselves dwarf memory.
    """

    name = "vectorized"

    def __init__(self, chunk_edges: int | None = None) -> None:
        if chunk_edges is not None and chunk_edges <= 0:
            raise ValueError("chunk_edges must be positive")
        self.chunk_edges = None if chunk_edges is None else int(chunk_edges)

    def dense_edge_map(
        self, graph: CSRGraph, frontier: VertexSubset, fn: EdgeMapFunction
    ) -> VertexSubset:
        if type(fn).update_batch is EdgeMapFunction.update_batch:
            # No batch hook implemented: fall back to the serial traversal.
            return edge_map_dense_serial(graph, frontier, fn)
        srcs, dsts, ws = frontier_edges(graph, frontier)
        out_mask = np.zeros(graph.n_vertices, dtype=bool)
        step = self.chunk_edges if self.chunk_edges is not None else max(1, srcs.size)
        for lo in range(0, srcs.size, step):
            hi = min(lo + step, srcs.size)
            fired = fn.update_batch(srcs[lo:hi], dsts[lo:hi], ws[lo:hi])
            if fired is None:
                out_mask[dsts[lo:hi]] = True
            else:
                fired = np.asarray(fired, dtype=bool)
                out_mask[dsts[lo:hi][fired]] = True
        return VertexSubset(graph.n_vertices, mask=out_mask)
