"""Serial dense backend: the reference execution, one edge list at a time."""

from __future__ import annotations

from ...graph.csr import CSRGraph
from ..edge_map import EdgeMapFunction, edge_map_dense_serial
from ..vertex_subset import VertexSubset
from .base import DenseBackend

__all__ = ["SerialBackend"]


class SerialBackend(DenseBackend):
    """Walk every vertex's out-edge list sequentially in the calling thread.

    This is the "GEE-Ligra Serial" configuration of the paper's Table I: the
    same edge-map program as the parallel run, scheduled on one worker.
    """

    name = "serial"

    def dense_edge_map(
        self, graph: CSRGraph, frontier: VertexSubset, fn: EdgeMapFunction
    ) -> VertexSubset:
        return edge_map_dense_serial(graph, frontier, fn)
