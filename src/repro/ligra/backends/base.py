"""Backend interface for dense edge-map execution.

A backend decides *how* the dense traversal of the edge set is executed:
serially, vectorised through NumPy, with threads, or with forked processes
over shared memory.  Algorithms never talk to backends directly — they go
through :class:`repro.ligra.engine.LigraEngine`, which owns one backend.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...graph.csr import CSRGraph
from ..edge_map import EdgeMapFunction
from ..vertex_subset import VertexSubset

__all__ = ["DenseBackend", "AccumulatingEdgeMapFunction", "frontier_edges"]


class AccumulatingEdgeMapFunction(EdgeMapFunction):
    """An edge-map function whose effect is pure accumulation.

    Functions of this form (GEE's ``updateEmb``, PageRank's contribution
    push, degree counting, ...) commute across edges: the result is a sum of
    per-edge contributions into one or more output arrays.  That property is
    what lets the process backend replace Ligra's hardware atomics with
    private per-worker partials plus a reduction, without changing the
    result (see DESIGN.md §2).
    """

    def output_arrays(self) -> dict:
        """The named arrays that edge updates accumulate into (``+=``)."""
        raise NotImplementedError

    def update_batch_into(
        self,
        outputs: dict,
        srcs: np.ndarray,
        dsts: np.ndarray,
        weights: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Accumulate the contribution of a flat edge batch into ``outputs``.

        ``outputs`` maps the same names as :meth:`output_arrays` to arrays
        of the same shapes (possibly private zero-filled copies).  Returns a
        boolean "fired" mask over destinations in the batch (or ``None``
        meaning all fired).
        """
        raise NotImplementedError

    # Default scalar/batch hooks in terms of the accumulate form.
    def update_batch(self, srcs, dsts, weights):  # noqa: D102 - see base class
        return self.update_batch_into(self.output_arrays(), srcs, dsts, weights)

    def update(self, u, v, w):  # noqa: D102 - see base class
        res = self.update_batch_into(
            self.output_arrays(),
            np.asarray([u], dtype=np.int64),
            np.asarray([v], dtype=np.int64),
            np.asarray([w], dtype=np.float64),
        )
        if res is None:
            return True
        return bool(np.asarray(res).ravel()[0])


def frontier_edges(
    graph: CSRGraph, frontier: VertexSubset
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat ``(srcs, dsts, weights)`` arrays of all out-edges of the frontier."""
    if len(frontier) == graph.n_vertices:
        return graph.edge_sources(), graph.indices, graph.weights
    idx = frontier.indices()
    degs = graph.indptr[idx + 1] - graph.indptr[idx]
    srcs = np.repeat(idx, degs)
    # Gather the edge slots of every frontier vertex.
    slots = np.concatenate(
        [np.arange(graph.indptr[u], graph.indptr[u + 1]) for u in idx.tolist()]
    ) if idx.size else np.empty(0, dtype=np.int64)
    slots = slots.astype(np.int64)
    return srcs, graph.indices[slots], graph.weights[slots]


class DenseBackend:
    """Interface implemented by every execution backend."""

    #: human-readable backend name used in reports
    name: str = "base"

    def dense_edge_map(
        self, graph: CSRGraph, frontier: VertexSubset, fn: EdgeMapFunction
    ) -> VertexSubset:
        """Apply ``fn`` to every out-edge of the frontier, dense traversal."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "DenseBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
