"""Process-based dense backend (true shared-memory parallelism).

CPython threads cannot run the edge pass concurrently, so the measured
parallel configuration forks worker processes instead:

* Read-only inputs (the CSR arrays, the projection matrix, labels) are
  inherited by the forked children via copy-on-write — no copies, no
  pickling, the same "all workers see one graph" model as Ligra.
* Each worker accumulates its edge range into a *private* partial of the
  function's output arrays, then adds the partial into a shared-memory
  result under a lock.  For accumulating functions (GEE, PageRank, degree
  counts) this is bit-for-bit the same result as lock-free atomic adds, up
  to floating-point summation order, and costs ``O(n·K)`` extra per worker
  — negligible next to the ``O(s)`` edge pass whenever ``s >> n·K`` (the
  paper's regime).

Only :class:`~repro.ligra.backends.base.AccumulatingEdgeMapFunction`
subclasses can run on this backend; anything else falls back to the serial
traversal (documented, and warned once).
"""

from __future__ import annotations

import multiprocessing as mp
import warnings
from typing import Dict, List, Tuple

import numpy as np

from ...graph.csr import CSRGraph
from ...parallel.partition import block_ranges
from ...parallel.pool import fork_available, resolve_worker_count
from ...parallel.shm import SharedArraySet, attach_many
from ..edge_map import EdgeMapFunction, edge_map_dense_serial
from ..vertex_subset import VertexSubset
from .base import AccumulatingEdgeMapFunction, DenseBackend, frontier_edges

__all__ = ["ProcessBackend"]


def _worker_accumulate(
    fn: AccumulatingEdgeMapFunction,
    srcs: np.ndarray,
    dsts: np.ndarray,
    ws: np.ndarray,
    edge_ranges: List[Tuple[int, int]],
    handles: Dict,
    lock,
    worker_id: int,
) -> None:
    """Run in a forked child: accumulate private partials, merge under lock."""
    views, segments = attach_many(handles)
    try:
        templates = fn.output_arrays()
        partial = {name: np.zeros_like(arr) for name, arr in templates.items()}
        fired_local = np.zeros(views["__fired__"].shape, dtype=bool)
        for lo, hi in edge_ranges:
            if hi <= lo:
                continue
            fired = fn.update_batch_into(partial, srcs[lo:hi], dsts[lo:hi], ws[lo:hi])
            if fired is None:
                fired_local[dsts[lo:hi]] = True
            else:
                fired_local[dsts[lo:hi][np.asarray(fired, dtype=bool)]] = True
        with lock:
            for name, arr in partial.items():
                views[name] += arr
            np.logical_or(views["__fired__"], fired_local, out=views["__fired__"])
    finally:
        for seg in segments:
            seg.close()


class ProcessBackend(DenseBackend):
    """Edge-parallel dense backend over forked worker processes."""

    name = "processes"

    def __init__(self, n_workers: int | None = None) -> None:
        self._explicit_workers = n_workers is not None and int(n_workers) > 0
        self.n_workers = resolve_worker_count(n_workers)
        self._warned_fallback = False

    def _fallback(self, graph, frontier, fn, reason: str) -> VertexSubset:
        if not self._warned_fallback:
            warnings.warn(
                f"ProcessBackend falling back to serial execution: {reason}",
                RuntimeWarning,
                stacklevel=3,
            )
            self._warned_fallback = True
        return edge_map_dense_serial(graph, frontier, fn)

    def dense_edge_map(
        self, graph: CSRGraph, frontier: VertexSubset, fn: EdgeMapFunction
    ) -> VertexSubset:
        if not isinstance(fn, AccumulatingEdgeMapFunction):
            return self._fallback(
                graph, frontier, fn, "function is not an AccumulatingEdgeMapFunction"
            )
        if not fork_available():
            if self._explicit_workers and self.n_workers > 1:
                # An explicit multi-worker request must never degrade silently.
                raise RuntimeError(
                    f"ProcessBackend: n_workers={self.n_workers} requested but the "
                    "'fork' start method is unavailable on this platform; pass "
                    "n_workers=1 (or None for the automatic fallback)"
                )
            return self._fallback(graph, frontier, fn, "fork start method unavailable")

        srcs, dsts, ws = frontier_edges(graph, frontier)
        outputs = fn.output_arrays()
        n_workers = min(self.n_workers, max(1, srcs.size))
        if n_workers == 1 or srcs.size == 0:
            # One worker: accumulate directly into the real outputs.
            fired = fn.update_batch_into(outputs, srcs, dsts, ws)
            mask = np.zeros(graph.n_vertices, dtype=bool)
            if srcs.size:
                if fired is None:
                    mask[dsts] = True
                else:
                    mask[dsts[np.asarray(fired, dtype=bool)]] = True
            return VertexSubset(graph.n_vertices, mask=mask)

        ranges = block_ranges(srcs.size, n_workers)
        ctx = mp.get_context("fork")
        lock = ctx.Lock()
        with SharedArraySet() as shm:
            for name, arr in outputs.items():
                shm.zeros(name, arr.shape, arr.dtype)
            shm.zeros("__fired__", (graph.n_vertices,), np.bool_)
            handles = shm.handles()
            procs = []
            for wid, rng in enumerate(ranges):
                p = ctx.Process(
                    target=_worker_accumulate,
                    args=(fn, srcs, dsts, ws, [rng], handles, lock, wid),
                    daemon=True,
                )
                p.start()
                procs.append(p)
            for p in procs:
                p.join()
            failed = [p.exitcode for p in procs if p.exitcode != 0]
            if failed:
                raise RuntimeError(
                    f"{len(failed)} worker process(es) exited with non-zero status {failed}"
                )
            # Fold the shared accumulators into the function's real outputs.
            for name, arr in outputs.items():
                arr += shm[name]
            mask = np.array(shm["__fired__"], dtype=bool, copy=True)
        return VertexSubset(graph.n_vertices, mask=mask)
