"""Thread-based dense backend.

This backend reproduces Ligra's scheduling structure most literally: the
vertex set is partitioned into degree-balanced ranges and one Python thread
walks each range's edge lists, using the function's atomic update hook
(``update_atomic`` / an :class:`~repro.ligra.atomics.AtomicArray`) so that
concurrent updates to the same destination are race-free — the situation of
the paper's Figure 1.

Because of CPython's GIL, threads only overlap where NumPy releases the GIL
(large per-vertex blocks); for interpreter-bound scalar updates this backend
demonstrates *correctness* of the concurrent formulation rather than
speedup.  The measured-speedup path is the process backend; the roofline
model in :mod:`repro.eval.machine_model` covers the hardware the paper used.
This limitation is exactly the "GIL blocks shared-memory parallelism" gap
called out in DESIGN.md.
"""

from __future__ import annotations

import threading
from typing import List

import numpy as np

from ...graph.csr import CSRGraph
from ...parallel.partition import balanced_edge_ranges_by_vertex
from ...parallel.pool import resolve_worker_count
from ..edge_map import EdgeMapFunction
from ..vertex_subset import VertexSubset
from .base import DenseBackend

__all__ = ["ThreadBackend"]


class ThreadBackend(DenseBackend):
    """Dense edge map over degree-balanced vertex ranges, one thread each."""

    name = "threads"

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = resolve_worker_count(n_workers)

    def dense_edge_map(
        self, graph: CSRGraph, frontier: VertexSubset, fn: EdgeMapFunction
    ) -> VertexSubset:
        n = graph.n_vertices
        out_mask = np.zeros(n, dtype=bool)
        fmask = frontier.mask()
        full = len(frontier) == n
        ranges = balanced_edge_ranges_by_vertex(graph.indptr, self.n_workers)
        indptr, indices, weights = graph.indptr, graph.indices, graph.weights
        errors: List[BaseException] = []

        def work(v_lo: int, v_hi: int) -> None:
            try:
                for u in range(v_lo, v_hi):
                    if not full and not fmask[u]:
                        continue
                    lo, hi = int(indptr[u]), int(indptr[u + 1])
                    if lo == hi:
                        continue
                    dsts = indices[lo:hi]
                    ws = weights[lo:hi]
                    block = fn.update_block(u, dsts, ws)
                    if block is not None:
                        out_mask[dsts[block]] = True
                        continue
                    for j in range(hi - lo):
                        v = int(dsts[j])
                        if fn.cond(v) and fn.update_atomic(u, v, float(ws[j])):
                            out_mask[v] = True
            except BaseException as exc:  # pragma: no cover - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(lo, hi), daemon=True)
            for lo, hi in ranges
            if hi > lo
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return VertexSubset(n, mask=out_mask)
