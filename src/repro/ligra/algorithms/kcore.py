"""k-core decomposition in the Ligra model (peeling algorithm).

The coreness of a vertex is the largest ``k`` such that the vertex belongs
to a subgraph in which every vertex has degree at least ``k``.  The peeling
algorithm repeatedly removes the lowest-degree vertices — a frontier-driven
computation that exercises ``vertex_map`` and the sparse edge map, i.e. the
parts of the engine GEE itself does not touch.
"""

from __future__ import annotations

import numpy as np

from ..edge_map import EdgeMapFunction
from ..engine import LigraEngine, as_engine
from ..vertex_subset import VertexSubset

__all__ = ["kcore_decomposition"]


class _DecrementDegree(EdgeMapFunction):
    """Decrement the remaining degree of destinations of peeled vertices."""

    def __init__(self, degrees: np.ndarray, alive: np.ndarray) -> None:
        self.degrees = degrees
        self.alive = alive

    def update(self, u: int, v: int, w: float) -> bool:
        if self.alive[v]:
            self.degrees[v] -= 1
            return True
        return False

    update_atomic = update

    def update_block(self, u: int, dsts: np.ndarray, weights: np.ndarray):
        mask = self.alive[dsts]
        targets = dsts[mask]
        if targets.size:
            # Aggregate duplicate targets first; frontiers are sparse, so a
            # unique+counts pass beats both np.subtract.at and a dense
            # n-sized bincount.
            uniq, counts = np.unique(targets, return_counts=True)
            self.degrees[uniq] -= counts
        return mask


def kcore_decomposition(engine: LigraEngine) -> np.ndarray:
    """Coreness of every vertex of an undirected (symmetrised) graph.

    The input graph should contain both directions of every edge; degrees
    are taken as out-degrees, which then equal undirected degrees.
    ``engine`` may be a prepared :class:`LigraEngine` or any graph-like input.
    """
    engine = as_engine(engine)
    n = engine.n_vertices
    degrees = engine.graph.out_degrees().astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    remaining = n
    k = 0
    fn = _DecrementDegree(degrees, alive)
    while remaining > 0:
        # Peel every vertex whose remaining degree is <= k.
        to_peel = np.flatnonzero(alive & (degrees <= k))
        if to_peel.size == 0:
            k += 1
            continue
        coreness[to_peel] = k
        alive[to_peel] = False
        remaining -= to_peel.size
        frontier = VertexSubset(n, indices=to_peel)
        engine.edge_map(frontier, fn, mode="sparse")
    return coreness
