"""Breadth-first search expressed in the Ligra model.

BFS is the canonical frontier algorithm (paper §II cites it as the
motivating example for Ligra's sparse/dense switching).  It is included as
a validation workload for the engine: its output is checked against an
independent queue-based BFS in the tests.
"""

from __future__ import annotations

import numpy as np

from ..edge_map import EdgeMapFunction
from ..engine import LigraEngine, as_engine
from ..vertex_subset import VertexSubset

__all__ = ["bfs", "bfs_reference"]


class _BFSVisit(EdgeMapFunction):
    """Claim unvisited destinations and record their parent / level."""

    def __init__(self, parents: np.ndarray) -> None:
        self.parents = parents

    def update(self, u: int, v: int, w: float) -> bool:
        if self.parents[v] == -1:
            self.parents[v] = u
            return True
        return False

    def update_atomic(self, u: int, v: int, w: float) -> bool:
        # CAS-style claim: only the first writer wins.
        if self.parents[v] == -1:
            self.parents[v] = u
            return True
        return False

    def cond(self, v: int) -> bool:
        return self.parents[v] == -1

    def update_block(self, u: int, dsts: np.ndarray, weights: np.ndarray):
        unvisited = self.parents[dsts] == -1
        claim = dsts[unvisited]
        if claim.size:
            self.parents[claim] = u
        return unvisited


def bfs(engine: LigraEngine, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Breadth-first search from ``source``.

    ``engine`` may be a prepared :class:`LigraEngine` or any graph-like
    input (wrapped in a default serial engine).

    Returns
    -------
    (parents, levels):
        ``parents[v]`` is the BFS tree parent of ``v`` (``source`` for the
        root, ``-1`` for unreachable vertices); ``levels[v]`` is the hop
        distance (``-1`` if unreachable).
    """
    engine = as_engine(engine)
    n = engine.n_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    parents = np.full(n, -1, dtype=np.int64)
    levels = np.full(n, -1, dtype=np.int64)
    parents[source] = source
    levels[source] = 0
    frontier = VertexSubset.single(n, source)
    fn = _BFSVisit(parents)
    level = 0
    while len(frontier) > 0:
        level += 1
        frontier = engine.edge_map(frontier, fn)
        if len(frontier):
            levels[frontier.indices()] = level
    return parents, levels


def bfs_reference(indptr: np.ndarray, indices: np.ndarray, source: int) -> np.ndarray:
    """Plain queue-based BFS levels, used as the test oracle."""
    n = indptr.size - 1
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    queue = [source]
    while queue:
        nxt = []
        for u in queue:
            for v in indices[indptr[u] : indptr[u + 1]].tolist():
                if levels[v] == -1:
                    levels[v] = levels[u] + 1
                    nxt.append(v)
        queue = nxt
    return levels
