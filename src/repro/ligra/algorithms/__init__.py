"""Classic graph algorithms implemented on the Ligra-like engine.

These serve two purposes: they validate that the engine faithfully
implements the frontier programming model (tests compare them against
independent oracles), and they demonstrate that the engine is a general
substrate rather than a GEE-only shim.
"""

from .bfs import bfs, bfs_reference
from .connected_components import connected_components_ligra
from .kcore import kcore_decomposition
from .pagerank import pagerank, pagerank_reference
from .triangle_count import count_triangles

__all__ = [
    "bfs",
    "bfs_reference",
    "pagerank",
    "pagerank_reference",
    "connected_components_ligra",
    "kcore_decomposition",
    "count_triangles",
]
