"""PageRank in the Ligra model.

PageRank is the canonical *dense* edge-map workload (every vertex active in
every iteration), which makes it structurally identical to GEE's single
pass: a pure accumulation over all edges.  It therefore exercises the
accumulating-function path of every backend, including the process backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backends.base import AccumulatingEdgeMapFunction
from ..engine import LigraEngine, as_engine

__all__ = ["pagerank", "pagerank_reference"]


class _PushContribution(AccumulatingEdgeMapFunction):
    """Push ``rank[u] / out_degree[u]`` along every out-edge of ``u``."""

    def __init__(self, contrib: np.ndarray, next_rank: np.ndarray) -> None:
        self.contrib = contrib
        self.next_rank = next_rank

    def output_arrays(self):
        return {"next_rank": self.next_rank}

    def update_batch_into(self, outputs, srcs, dsts, weights):
        # Imported lazily: repro.core.__init__ imports gee_ligra, which
        # imports repro.ligra — a module-level import here would cycle.
        from ...core.gee_vectorized import scatter_add

        scatter_add(outputs["next_rank"], dsts, self.contrib[srcs])
        return None


def pagerank(
    engine: LigraEngine,
    *,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Power-iteration PageRank.

    Dangling vertices (no out-edges) redistribute their mass uniformly, so
    the result is a proper probability distribution.  ``engine`` may be a
    prepared :class:`LigraEngine` or any graph-like input.
    """
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    engine = as_engine(engine)
    n = engine.n_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    out_deg = engine.graph.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    rank = (
        np.full(n, 1.0 / n) if initial is None else np.asarray(initial, dtype=np.float64).copy()
    )
    frontier = engine.full_frontier()
    for _ in range(max_iterations):
        contrib = np.where(dangling, 0.0, rank / np.maximum(out_deg, 1.0))
        next_rank = np.zeros(n, dtype=np.float64)
        fn = _PushContribution(contrib, next_rank)
        engine.edge_map(frontier, fn, mode="dense")
        dangling_mass = rank[dangling].sum()
        next_rank = damping * (next_rank + dangling_mass / n) + (1.0 - damping) / n
        delta = np.abs(next_rank - rank).sum()
        rank = next_rank
        if delta < tolerance:
            break
    return rank


def pagerank_reference(
    indptr: np.ndarray,
    indices: np.ndarray,
    *,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Dense matrix-free PageRank oracle used by the tests."""
    n = indptr.size - 1
    out_deg = np.diff(indptr).astype(np.float64)
    dangling = out_deg == 0
    rank = np.full(n, 1.0 / n)
    src = np.repeat(np.arange(n), np.diff(indptr))
    for _ in range(max_iterations):
        contrib = np.where(dangling, 0.0, rank / np.maximum(out_deg, 1.0))
        nxt = np.bincount(indices, weights=contrib[src], minlength=n)
        nxt = damping * (nxt + rank[dangling].sum() / n) + (1 - damping) / n
        if np.abs(nxt - rank).sum() < tolerance:
            rank = nxt
            break
        rank = nxt
    return rank
