"""Connected components via label propagation in the Ligra model.

The classic Ligra components algorithm repeatedly propagates the minimum
vertex id along edges (``writeMin``) until no label changes.  On the
symmetrised graph this computes weakly connected components; tests compare
against the union-find implementation in :mod:`repro.graph.properties`.
"""

from __future__ import annotations

import numpy as np

from ..edge_map import EdgeMapFunction
from ..engine import LigraEngine, as_engine

__all__ = ["connected_components_ligra"]


class _MinLabel(EdgeMapFunction):
    """Propagate ``min(label[u])`` to destinations (Ligra's writeMin)."""

    def __init__(self, labels: np.ndarray) -> None:
        self.labels = labels

    def update(self, u: int, v: int, w: float) -> bool:
        lu = self.labels[u]
        if lu < self.labels[v]:
            self.labels[v] = lu
            return True
        return False

    update_atomic = update

    def update_block(self, u: int, dsts: np.ndarray, weights: np.ndarray):
        lu = self.labels[u]
        improved = self.labels[dsts] > lu
        targets = dsts[improved]
        if targets.size:
            self.labels[targets] = lu
        return improved


def connected_components_ligra(engine: LigraEngine, *, max_iterations: int | None = None) -> np.ndarray:
    """Component labels (minimum reachable vertex id) for every vertex.

    The graph is traversed as given; pass a symmetrised graph for weakly
    connected components.  Labels are renumbered to ``0..c-1``.
    ``engine`` may be a prepared :class:`LigraEngine` or any graph-like input.
    """
    engine = as_engine(engine)
    n = engine.n_vertices
    labels = np.arange(n, dtype=np.int64)
    frontier = engine.full_frontier()
    fn = _MinLabel(labels)
    iteration = 0
    while len(frontier) > 0:
        iteration += 1
        frontier = engine.edge_map(frontier, fn)
        if max_iterations is not None and iteration >= max_iterations:
            break
    _, renumbered = np.unique(labels, return_inverse=True)
    return renumbered.astype(np.int64)
