"""Triangle counting.

A compute-heavier validation workload: counts the triangles of an
undirected (symmetrised) graph with the standard sorted-adjacency
intersection method.  Unlike BFS/PageRank this is not frontier-driven, but
it stresses the CSR structure and is the kind of algorithm the paper lists
Ligra as capturing (§II mentions betweenness-style analytics).
"""

from __future__ import annotations

import numpy as np

from ...graph.csr import CSRGraph
from ...graph.facade import Graph

__all__ = ["count_triangles"]


def count_triangles(graph: CSRGraph) -> int:
    """Number of triangles in an undirected graph given in symmetric form.

    Each triangle is counted once.  Self-loops and duplicate edges are
    ignored by the canonical ``u < v < w`` orientation.  ``graph`` may be a
    :class:`CSRGraph` or any graph-like input.
    """
    if not isinstance(graph, CSRGraph):
        graph = Graph.coerce(graph).csr
    n = graph.n_vertices
    # Build an orientation: keep only edges u -> v with u < v, adjacency sorted.
    forward: list[np.ndarray] = []
    for u in range(n):
        nbrs = graph.neighbors(u)
        keep = np.unique(nbrs[nbrs > u])
        forward.append(keep)
    total = 0
    for u in range(n):
        fu = forward[u]
        for v in fu.tolist():
            fv = forward[v]
            if fv.size == 0 or fu.size == 0:
                continue
            # |N+(u) ∩ N+(v)| counts w with u < v < w closing a triangle.
            total += np.intersect1d(fu, fv, assume_unique=True).size
    return int(total)
