"""The Ligra-style engine: frontier-driven graph traversal.

:class:`LigraEngine` ties together the pieces of the programming model the
paper builds on (§II):

* a graph in CSR form,
* ``edge_map`` — apply a function over the out-edges of a frontier,
  automatically choosing the sparse or dense traversal (Ligra's
  ``|U| + sum_deg(U) > m/20`` rule) unless a mode is forced,
* ``vertex_map`` — apply a function over the vertices of a frontier,
* a pluggable execution backend for the dense traversal (serial /
  vectorized / threads / processes).

GEE-Ligra (Algorithm 2) is one client of this engine; the classic graph
algorithms in :mod:`repro.ligra.algorithms` are others and serve as
validation that the engine implements the model faithfully.
"""

from __future__ import annotations

from typing import Optional, Union

from ..graph.csr import CSRGraph
from ..graph.edgelist import EdgeList
from ..graph.facade import Graph, GraphLike
from .backends import DenseBackend, make_backend
from .edge_map import EdgeMapFunction, edge_map_sparse
from .vertex_map import VertexFn, vertex_map as _vertex_map
from .vertex_subset import VertexSubset

__all__ = ["LigraEngine", "as_engine"]


class LigraEngine:
    """Frontier-based graph processing engine.

    Parameters
    ----------
    graph:
        The graph, as any graph-like input: a :class:`CSRGraph` is used
        directly, a :class:`~repro.graph.facade.Graph` contributes its
        cached CSR view, and everything else (``EdgeList``, ``(s, 2|3)``
        arrays, ``scipy.sparse`` adjacencies) is coerced once at
        construction.
    backend:
        Dense-traversal execution backend: a backend instance or one of the
        names ``"serial"``, ``"vectorized"``, ``"threads"``, ``"processes"``.
    n_workers:
        Worker count for the thread/process backends (ignored otherwise).
    dense_threshold:
        Fraction of ``m`` used in the dense/sparse switch; Ligra uses 1/20.
    """

    def __init__(
        self,
        graph: Union[CSRGraph, EdgeList, GraphLike],
        *,
        backend: Union[str, DenseBackend] = "serial",
        n_workers: Optional[int] = None,
        dense_threshold: float = 1 / 20,
    ) -> None:
        if not isinstance(graph, CSRGraph):
            graph = Graph.coerce(graph).csr
        self.graph = graph
        if isinstance(backend, str):
            backend = make_backend(backend, n_workers)
        self.backend = backend
        if not 0 < dense_threshold <= 1:
            raise ValueError("dense_threshold must be in (0, 1]")
        self.dense_threshold = dense_threshold

    # ------------------------------------------------------------------ #
    # Frontier constructors
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Number of vertices of the underlying graph."""
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        """Number of directed edges of the underlying graph."""
        return self.graph.n_edges

    def full_frontier(self) -> VertexSubset:
        """All vertices active (the GEE-Ligra frontier)."""
        return VertexSubset.full(self.n_vertices)

    def empty_frontier(self) -> VertexSubset:
        """No vertices active."""
        return VertexSubset.empty(self.n_vertices)

    def frontier(self, vertices) -> VertexSubset:
        """Frontier from an iterable / array of vertex ids."""
        return VertexSubset.from_iterable(self.n_vertices, vertices)

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #
    def edge_map(
        self,
        frontier: VertexSubset,
        fn: EdgeMapFunction,
        *,
        mode: str = "auto",
    ) -> VertexSubset:
        """Apply ``fn`` over the out-edges of ``frontier``.

        ``mode`` is ``"auto"`` (Ligra's size-based switch), ``"dense"`` or
        ``"sparse"``.  The sparse traversal is always executed serially (it
        is used for small frontiers where parallel dispatch would dominate);
        the dense traversal goes through the configured backend.
        """
        if frontier.n_vertices != self.n_vertices:
            raise ValueError("frontier does not match the engine's graph")
        if mode not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown edge_map mode {mode!r}")
        if mode == "auto":
            dense = frontier.is_dense_preferred(
                self.graph.indptr, self.n_edges, self.dense_threshold
            )
            mode = "dense" if dense else "sparse"
        if mode == "sparse":
            return edge_map_sparse(self.graph, frontier, fn)
        return self.backend.dense_edge_map(self.graph, frontier, fn)

    def vertex_map(self, frontier: VertexSubset, fn: VertexFn) -> VertexSubset:
        """Apply ``fn`` over the vertices of ``frontier``."""
        if frontier.n_vertices != self.n_vertices:
            raise ValueError("frontier does not match the engine's graph")
        return _vertex_map(frontier, fn)

    # ------------------------------------------------------------------ #
    # Lifetime
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release backend resources."""
        self.backend.close()

    def __enter__(self) -> "LigraEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LigraEngine(n={self.n_vertices}, s={self.n_edges}, "
            f"backend={self.backend.name!r})"
        )


def as_engine(
    graph_or_engine: Union["LigraEngine", CSRGraph, EdgeList, GraphLike],
    **engine_kwargs,
) -> LigraEngine:
    """Coerce an algorithm input to a :class:`LigraEngine`.

    The Ligra algorithms accept either a prepared engine (full control over
    backend and worker count) or any graph-like input, which is wrapped in
    a default serial engine.  An existing engine passes through unchanged
    (``engine_kwargs`` must then be empty).
    """
    if isinstance(graph_or_engine, LigraEngine):
        if engine_kwargs:
            raise TypeError(
                "engine options cannot be combined with an existing LigraEngine; "
                "construct the engine with them instead"
            )
        return graph_or_engine
    return LigraEngine(graph_or_engine, **engine_kwargs)
