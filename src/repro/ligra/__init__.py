"""A Ligra-like shared-memory graph processing engine in Python.

Implements the ``edgeMap`` / ``vertexMap`` / ``vertexSubset`` programming
interface of Shun & Blelloch's Ligra (the substrate of the paper's
GEE-Ligra), with pluggable execution backends.
"""

from .atomics import AtomicArray, UnsafeArray, make_accumulator
from .backends import (
    AccumulatingEdgeMapFunction,
    DenseBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    VectorizedBackend,
    make_backend,
)
from .edge_map import EdgeMapFunction, edge_map_dense_serial, edge_map_sparse
from .engine import LigraEngine, as_engine
from .vertex_map import VertexMapFunction, vertex_map
from .vertex_subset import VertexSubset

__all__ = [
    "AtomicArray",
    "UnsafeArray",
    "make_accumulator",
    "EdgeMapFunction",
    "AccumulatingEdgeMapFunction",
    "edge_map_sparse",
    "edge_map_dense_serial",
    "VertexMapFunction",
    "vertex_map",
    "VertexSubset",
    "LigraEngine",
    "as_engine",
    "DenseBackend",
    "SerialBackend",
    "VectorizedBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]
