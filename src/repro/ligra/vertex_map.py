"""The ``vertexMap`` primitive.

``vertexMap(U, F)`` applies ``F`` to every vertex in the subset ``U`` and
returns the subset of vertices for which ``F`` returned True.  GEE-Ligra
uses it (in spirit) for the parallel initialisation of the projection
matrix ``W`` (Algorithm 2, lines 3–6); the graph algorithms in
:mod:`repro.ligra.algorithms` use it for per-vertex state updates.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from .vertex_subset import VertexSubset

__all__ = ["VertexMapFunction", "vertex_map"]

VertexFn = Union["VertexMapFunction", Callable[[int], bool]]


class VertexMapFunction:
    """Function object applied per vertex; subclass or wrap a callable."""

    def apply(self, v: int) -> bool:
        """Apply to vertex ``v``; return True to keep it in the output subset."""
        raise NotImplementedError

    def apply_batch(self, vertices: np.ndarray) -> Optional[np.ndarray]:
        """Vectorised hook: return a keep-mask aligned with ``vertices`` or
        ``None`` to fall back to per-vertex calls."""
        return None


class _CallableWrapper(VertexMapFunction):
    def __init__(self, fn: Callable[[int], bool]) -> None:
        self._fn = fn

    def apply(self, v: int) -> bool:
        return bool(self._fn(v))


def vertex_map(frontier: VertexSubset, fn: VertexFn) -> VertexSubset:
    """Apply ``fn`` to every vertex in ``frontier``.

    ``fn`` may be a :class:`VertexMapFunction` or a plain callable
    ``vertex_id -> bool``.
    """
    if not isinstance(fn, VertexMapFunction):
        fn = _CallableWrapper(fn)
    vertices = frontier.indices()
    if vertices.size == 0:
        return VertexSubset.empty(frontier.n_vertices)
    batch = fn.apply_batch(vertices)
    if batch is not None:
        keep = np.asarray(batch, dtype=bool)
        if keep.shape != vertices.shape:
            raise ValueError("apply_batch must return a mask aligned with its input")
        return VertexSubset(frontier.n_vertices, indices=vertices[keep])
    kept = [int(v) for v in vertices.tolist() if fn.apply(int(v))]
    return VertexSubset.from_iterable(frontier.n_vertices, kept)
