"""``repro.analysis`` — project-specific static analysis.

An AST-based lint pass that proves the repo's own invariants hold — the
things a generic linter cannot know:

* ``capability-contract`` — declared :class:`BackendCapabilities` flags
  match what each registered backend actually implements (checked against
  the *live* registry);
* ``hot-path-alloc`` — ``@hot_path`` kernels neither loop over edges nor
  allocate edge/vertex-sized temporaries outside the plan's reused buffers;
* ``no-add-at`` — every scatter routes through ``scatter_add`` /
  ``np.bincount``, never the slow buffered ``np.add.at``;
* ``shm-lifecycle`` — every shared-memory segment is closed and unlinked
  on all paths;
* ``index-dtype`` — int32 narrowing only via ``choose_index_dtype``;
* ``fork-safety`` — no import-time pools/segments, no lambdas shipped to
  process workers;
* ``bench-schema`` — benchmark scripts emit the shared, gated result
  schema.

Use it as a library::

    from repro.analysis import analyze_paths
    findings = analyze_paths(["src/repro"])

or from the command line (non-zero exit on findings, for CI)::

    python -m repro.analysis src/repro benchmarks --format json

Findings are suppressed per line with ``# repro: ignore[rule-name]``
(same line or the line above) or per file with
``# repro: ignore-file[rule-name]``; every suppression in the tree should
carry a one-line justification.
"""

from .annotations import hot_path, is_hot_path
from .engine import Project, SourceModule, analyze_paths, iter_python_files
from .findings import Finding, Severity
from .registry import Rule, all_rules, get_rule, list_rules, register_rule

__all__ = [
    "analyze_paths",
    "iter_python_files",
    "Project",
    "SourceModule",
    "Finding",
    "Severity",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "list_rules",
    "hot_path",
    "is_hot_path",
]
