"""Finding and severity types shared by every analysis rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["Severity", "Finding"]


class Severity(enum.IntEnum):
    """Ordered severity levels; the CLI's ``--fail-on`` compares against it."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass
class Finding:
    """One rule violation at a source location.

    ``path`` is stored repo-relative when the analyzed file lives under the
    engine's root (portable across checkouts); ``suppressed`` is set by the
    engine when a ``# repro: ignore[...]`` comment covers the finding.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    col: int = 0
    symbol: Optional[str] = None  #: function/class the finding is about
    suppressed: bool = False

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict:
        out: Dict = {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.symbol is not None:
            out["symbol"] = self.symbol
        return out

    def render(self) -> str:
        loc = f"{self.path}:{self.line}"
        sym = f" ({self.symbol})" if self.symbol else ""
        sup = " [suppressed]" if self.suppressed else ""
        return f"{loc}: {self.severity.name.lower()}[{self.rule}]{sup}{sym}: {self.message}"
