"""Built-in analysis rules.

Importing this package registers every built-in rule with
:mod:`repro.analysis.registry` (mirroring how importing
``repro.backends`` registers the execution backends).
"""

from . import (  # noqa: F401
    addat,
    bench,
    contracts,
    dtype,
    forksafety,
    hotpath,
    native_parity,
    obs,
    shm_lifecycle,
)

from .addat import NoAddAtRule
from .bench import BenchSchemaRule
from .contracts import CapabilityContractRule, check_capability_contract
from .dtype import IndexDtypeRule
from .forksafety import ForkSafetyRule
from .hotpath import HotPathAllocationRule
from .native_parity import NativeParityRule
from .obs import ObsSpanHygieneRule
from .shm_lifecycle import ShmLifecycleRule

__all__ = [
    "NoAddAtRule",
    "BenchSchemaRule",
    "CapabilityContractRule",
    "check_capability_contract",
    "IndexDtypeRule",
    "ForkSafetyRule",
    "HotPathAllocationRule",
    "NativeParityRule",
    "ObsSpanHygieneRule",
    "ShmLifecycleRule",
]
