"""``capability-contract`` — declared backend capabilities must be real.

The backend registry (:mod:`repro.backends.registry`) routes work by
*declared* :class:`BackendCapabilities`; a flag that lies is worse than a
missing feature because the dispatch layer will happily send a chunked
plan or an O(Δ) patch to a backend whose "implementation" is the base
class's ``NotImplementedError`` guard — at fit time, deep inside a run.

This project-scoped rule imports the live registry and cross-checks every
registered backend class against what it actually implements:

* ``supports_chunked``  ⇔ overrides ``_embed_with_chunked_plan``
* ``supports_incremental`` ⇔ overrides ``_patch_sums``
* ``supports_layout``  ⇒ overrides ``_embed_with_plan`` (a backend that
  claims the locality-optimized kernels but falls back to the base
  ``_embed`` path silently ignores the layout it advertised)
* ``supports_n_workers`` is verified *behaviourally*: ``cls(n_workers=1)``
  must succeed exactly when the flag is set (the base constructor raises
  ``ValueError`` otherwise).

Findings anchor at the backend class's ``class`` statement so the report
points at the declaration to fix.
"""

from __future__ import annotations

import inspect
from typing import Dict, Iterator, Optional, Tuple, Type

from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["CapabilityContractRule", "check_capability_contract"]

#: capability flag -> method a truthful declaration must override.
_IFF_OVERRIDES: Tuple[Tuple[str, str], ...] = (
    ("supports_chunked", "_embed_with_chunked_plan"),
    ("supports_incremental", "_patch_sums"),
)
_IMPLIES_OVERRIDES: Tuple[Tuple[str, str], ...] = (
    ("supports_layout", "_embed_with_plan"),
)


def _anchor(cls: type) -> Tuple[str, int]:
    """(source path, class-statement line) for ``cls`` — best effort."""
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):  # pragma: no cover - C ext / REPL classes
        return "<unknown>", 1
    return path, line


def _overrides(cls: type, base: type, method: str) -> bool:
    return getattr(cls, method, None) is not getattr(base, method, None)


def check_capability_contract(
    registry: Optional[Dict[str, type]] = None,
    *,
    rule: Optional[Rule] = None,
) -> Iterator[Finding]:
    """Cross-check declared capabilities against implementations.

    ``registry`` defaults to the live backend registry (importing
    :mod:`repro.backends` registers every built-in backend); tests inject
    synthetic ``{name: class}`` mappings to exercise each violation shape.
    """
    from repro.backends.registry import GEEBackend

    if registry is None:
        import repro.backends  # noqa: F401  (triggers registration)
        from repro.backends.registry import _REGISTRY

        registry = dict(_REGISTRY)
    if rule is None:
        rule = CapabilityContractRule()

    for name, cls in sorted(registry.items()):
        path, line = _anchor(cls)
        caps = cls.capabilities

        for flag, method in _IFF_OVERRIDES:
            declared = bool(getattr(caps, flag))
            implemented = _overrides(cls, GEEBackend, method)
            if declared and not implemented:
                yield rule.finding(
                    path,
                    line,
                    f"backend {name!r} declares {flag}=True but does not "
                    f"override {method}; the base-class contract guard will "
                    "raise NotImplementedError at dispatch time",
                    symbol=cls.__name__,
                )
            elif implemented and not declared:
                yield rule.finding(
                    path,
                    line,
                    f"backend {name!r} overrides {method} but declares "
                    f"{flag}=False; the capability gate hides a working "
                    "kernel from dispatch",
                    symbol=cls.__name__,
                )

        for flag, method in _IMPLIES_OVERRIDES:
            if bool(getattr(caps, flag)) and not _overrides(cls, GEEBackend, method):
                yield rule.finding(
                    path,
                    line,
                    f"backend {name!r} declares {flag}=True but does not "
                    f"override {method}; layout plans would silently run the "
                    "classic arrival-order kernel",
                    symbol=cls.__name__,
                )

        yield from _check_n_workers(rule, name, cls, path, line)


def _check_n_workers(
    rule: Rule, name: str, cls: type, path: str, line: int
) -> Iterator[Finding]:
    declared = bool(cls.capabilities.supports_n_workers)
    try:
        cls(n_workers=1)
        accepted = True
    except ValueError:
        accepted = False
    except Exception as exc:  # construction blew up some other way
        yield rule.finding(
            path,
            line,
            f"backend {name!r}: cls(n_workers=1) raised "
            f"{exc.__class__.__name__} ({exc}); construction must either "
            "accept n_workers or reject it with ValueError",
            symbol=cls.__name__,
        )
        return
    if declared and not accepted:
        yield rule.finding(
            path,
            line,
            f"backend {name!r} declares supports_n_workers=True but "
            "cls(n_workers=1) raises ValueError",
            symbol=cls.__name__,
        )
    elif accepted and not declared:
        yield rule.finding(
            path,
            line,
            f"backend {name!r} accepts n_workers=1 at construction but "
            "declares supports_n_workers=False; the flag must match the "
            "constructor's behaviour",
            symbol=cls.__name__,
        )


@register_rule
class CapabilityContractRule(Rule):
    name = "capability-contract"
    scope = "project"
    description = (
        "declared BackendCapabilities flags must match the methods each "
        "registered backend actually overrides (verified against the live "
        "registry)"
    )

    #: Injectable for tests; None means the live registry.
    registry: Optional[Dict[str, type]] = None

    def __init__(self, registry: Optional[Dict[str, type]] = None) -> None:
        if registry is not None:
            self.registry = registry

    def check_project(self, project) -> Iterator[Finding]:
        yield from check_capability_contract(self.registry, rule=self)
