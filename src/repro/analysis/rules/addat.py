"""``no-add-at`` — ban the buffered-ufunc scatter path repo-wide.

``np.add.at`` is the slow, buffered ufunc scatter: on this workload it
measured 2-7x slower than the ``np.bincount``-based
:func:`repro.core.gee_vectorized.scatter_add` (see
``benchmarks/bench_ablation_scatter.py`` and the PR 2 ``_align_labels``
fix).  Every scatter-accumulate in ``src/repro`` must route through
``scatter_add`` (or a block-local ``np.bincount``); the few deliberate
uses — the lock-striped bulk atomics, oracle/reference rows in tests and
benchmarks — carry ``# repro: ignore[no-add-at]`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register_rule
from ._util import dotted_name

__all__ = ["NoAddAtRule"]


@register_rule
class NoAddAtRule(Rule):
    name = "no-add-at"
    description = (
        "np.add.at is the slow buffered-ufunc scatter; route through "
        "repro.core.gee_vectorized.scatter_add (or np.bincount)"
    )

    def check_module(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted.endswith("add.at") or dotted.endswith("subtract.at"):
                yield self.finding(
                    module.rel_path,
                    node.lineno,
                    f"{dotted}(...) uses the buffered-ufunc scatter path; use "
                    "scatter_add / np.bincount, or justify with "
                    "# repro: ignore[no-add-at]",
                    col=node.col_offset,
                )
