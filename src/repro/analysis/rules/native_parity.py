"""``native-parity`` — every JIT kernel must have a registered shadow.

The native tier's portability story rests on one invariant: for every
``@njit`` kernel in :mod:`repro.native.kernels` there is a pure-NumPy
function of the **same name** in :mod:`repro.native.shadow`, both listed in
:data:`repro.native.dispatch.NATIVE_KERNEL_NAMES` — that is what lets the
full conformance suite run without numba and lets
:func:`~repro.native.dispatch.get_kernel` degrade silently.  A kernel added
to one side only would either be untestable without numba (no shadow) or
silently never JIT-compiled (no native body), so this project-scoped rule
enforces the pairing two ways:

* **statically** — the ``@njit``-decorated definitions in ``kernels.py``,
  the public functions in ``shadow.py`` and the ``NATIVE_KERNEL_NAMES``
  inventory must be exactly the same set (works in environments that
  cannot import the kernels module at all).  Every JIT kernel must also
  carry ``@hot_path`` so the performance-discipline rules see it.
* **live** — :func:`~repro.native.dispatch.kernel_pair` must resolve a
  callable shadow for every inventoried name (and a callable JIT kernel
  too when the tier is importable).

Anchors point at the offending definition (or the inventory assignment)
so the report lands on the line to fix.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..findings import Finding
from ..registry import Rule, register_rule
from ._util import decorator_matches, iter_functions

__all__ = ["NativeParityRule"]

_KERNELS_PATH = "native/kernels.py"
_SHADOW_PATH = "native/shadow.py"
_DISPATCH_PATH = "native/dispatch.py"


def _module_ending_with(project, suffix: str):
    for module in project.modules:
        if module.rel_path.replace("\\", "/").endswith(suffix):
            return module
    return None


def _public_functions(tree: ast.AST) -> Dict[str, ast.FunctionDef]:
    return {
        fn.name: fn
        for fn in iter_functions(tree)
        if not fn.name.startswith("_")
    }


def _inventory_names(dispatch_module) -> Optional[Set[str]]:
    """The NATIVE_KERNEL_NAMES literal from the dispatch module's AST."""
    for node in ast.walk(dispatch_module.tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "NATIVE_KERNEL_NAMES"
            for t in targets
        ):
            continue
        try:
            value = ast.literal_eval(node.value)
        except ValueError:  # pragma: no cover - non-literal inventory
            return None
        return {str(name) for name in value}
    return None


@register_rule
class NativeParityRule(Rule):
    name = "native-parity"
    scope = "project"
    description = (
        "every @njit kernel in repro.native.kernels must have a same-named "
        "pure-NumPy shadow and an entry in NATIVE_KERNEL_NAMES (and vice "
        "versa), so the native tier stays fully testable without numba"
    )

    def check_project(self, project) -> Iterator[Finding]:
        kernels = _module_ending_with(project, _KERNELS_PATH)
        shadow = _module_ending_with(project, _SHADOW_PATH)
        dispatch = _module_ending_with(project, _DISPATCH_PATH)
        if kernels is None or shadow is None or dispatch is None:
            # The native package is not part of the analyzed file set
            # (targeted single-file runs); nothing to cross-check.
            return
        yield from self._check_static(kernels, shadow, dispatch)
        yield from self._check_live(dispatch)

    # ------------------------------------------------------------------ #
    def _check_static(self, kernels, shadow, dispatch) -> Iterator[Finding]:
        jit_fns = {
            name: fn
            for name, fn in _public_functions(kernels.tree).items()
            if decorator_matches(fn, "njit") or decorator_matches(fn, "jit")
        }
        shadow_fns = _public_functions(shadow.tree)
        inventory = _inventory_names(dispatch)
        if inventory is None:
            yield self.finding(
                dispatch.rel_path,
                1,
                "NATIVE_KERNEL_NAMES is not a literal tuple of names; the "
                "parity check (and the dispatcher's inventory) cannot be "
                "verified statically",
            )
            return
        for name, fn in sorted(jit_fns.items()):
            if name not in shadow_fns:
                yield self.finding(
                    kernels.rel_path,
                    fn.lineno,
                    f"JIT kernel {name!r} has no same-named shadow in "
                    "repro.native.shadow; the kernel is untestable without "
                    "numba and get_kernel() cannot degrade",
                    symbol=name,
                )
            if name not in inventory:
                yield self.finding(
                    kernels.rel_path,
                    fn.lineno,
                    f"JIT kernel {name!r} is missing from "
                    "NATIVE_KERNEL_NAMES; get_kernel() will never dispatch it",
                    symbol=name,
                )
            if not decorator_matches(fn, "hot_path"):
                yield self.finding(
                    kernels.rel_path,
                    fn.lineno,
                    f"JIT kernel {name!r} lacks @hot_path; native kernels "
                    "are hot paths by definition and must carry the "
                    "annotation the performance rules key on",
                    symbol=name,
                )
        for name, fn in sorted(shadow_fns.items()):
            if name not in jit_fns:
                yield self.finding(
                    shadow.rel_path,
                    fn.lineno,
                    f"shadow {name!r} has no same-named @njit kernel in "
                    "repro.native.kernels; the shadow documents semantics "
                    "nothing compiles",
                    symbol=name,
                )
            if name not in inventory:
                yield self.finding(
                    shadow.rel_path,
                    fn.lineno,
                    f"shadow {name!r} is missing from NATIVE_KERNEL_NAMES",
                    symbol=name,
                )
        for name in sorted(inventory - set(jit_fns) - set(shadow_fns)):
            yield self.finding(
                dispatch.rel_path,
                1,
                f"NATIVE_KERNEL_NAMES lists {name!r} but neither "
                "repro.native.kernels nor repro.native.shadow defines it",
                symbol=name,
            )

    def _check_live(self, dispatch) -> Iterator[Finding]:
        from repro.native.dispatch import (
            NATIVE_KERNEL_NAMES,
            kernel_pair,
            using_native,
        )

        for name in NATIVE_KERNEL_NAMES:
            pair = kernel_pair(name)
            if not callable(pair["shadow"]):
                yield self.finding(
                    dispatch.rel_path,
                    1,
                    f"kernel_pair({name!r}) resolves no callable shadow; "
                    "the dispatcher cannot degrade without numba",
                    symbol=name,
                )
            if using_native() and not callable(pair["native"]):
                yield self.finding(
                    dispatch.rel_path,
                    1,
                    f"the JIT tier reports available but kernel_pair"
                    f"({name!r}) resolves no native callable",
                    symbol=name,
                )
