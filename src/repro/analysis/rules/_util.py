"""Small AST helpers shared by the built-in rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

__all__ = [
    "dotted_name",
    "subtree_names",
    "decorator_matches",
    "iter_functions",
    "walk_excluding_functions",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def subtree_names(node: ast.AST) -> Set[str]:
    """Every identifier mentioned in ``node``: Name ids and Attribute attrs."""
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.arg):
            names.add(sub.arg)
    return names


def decorator_matches(fn: FunctionNode, name: str) -> bool:
    """Whether ``fn`` has a decorator named ``name`` (bare, dotted or called)."""
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted is not None and (dotted == name or dotted.endswith("." + name)):
            return True
    return False


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every (async) function definition in ``tree``, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_excluding_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function bodies.

    Used for import-time checks: statements inside a function definition do
    not execute at import, but module and class bodies do.
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)
