"""``fork-safety`` — process-backend hygiene.

Two failure modes this rule closes off:

* **Import-time pools/segments.**  A ``ForkWorkerPool``/
  ``ProcessPoolExecutor``/``SharedArraySet`` created at module import runs
  in *every* process that imports the module — including the forked
  workers themselves, which then recursively spawn pools or leak segments
  that no teardown path owns.  All pool/segment creation must happen
  inside a function, after ``if __name__ == "__main__"`` or behind an
  explicit call.

* **Lambdas shipped to workers.**  ``pickle`` cannot serialise lambdas, so
  ``pool.map(lambda ...)`` / ``Process(target=lambda ...)`` dies at
  dispatch time with an opaque ``PicklingError`` — and only on the
  process backends, so it escapes thread-backend test runs.  Workers must
  receive module-level functions (or ``functools.partial`` over them).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from ..registry import Rule, register_rule
from ._util import dotted_name, walk_excluding_functions

__all__ = ["ForkSafetyRule", "PROCESS_RESOURCES", "WORKER_DISPATCH_METHODS"]

#: Constructors that create processes or process-shared state.  Matched on
#: the trailing name of the dotted call.
PROCESS_RESOURCES = frozenset(
    {
        "SharedArraySet",
        "SharedMemory",
        "ForkWorkerPool",
        "ProcessPoolExecutor",
        "Pool",
        "Process",
    }
)

#: Methods that ship their callable argument to another process.
WORKER_DISPATCH_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "submit", "apply", "apply_async"}
)


def _resource_leaf(node: ast.Call) -> Optional[str]:
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    leaf = dotted.rsplit(".", 1)[-1]
    return leaf if leaf in PROCESS_RESOURCES else None


@register_rule
class ForkSafetyRule(Rule):
    name = "fork-safety"
    description = (
        "no pools/shared segments at module import time; no lambdas shipped "
        "to process workers (unpicklable)"
    )

    def check_module(self, module) -> Iterator[Finding]:
        yield from self._check_import_time(module)
        yield from self._check_lambda_dispatch(module)

    def _check_import_time(self, module) -> Iterator[Finding]:
        for node in walk_excluding_functions(module.tree):
            if not isinstance(node, ast.Call):
                continue
            leaf = _resource_leaf(node)
            if leaf is None:
                continue
            yield self.finding(
                module.rel_path,
                node.lineno,
                f"{leaf}(...) at module import time runs in every process "
                "that imports this module (including forked workers); create "
                "it inside a function or under if __name__ == '__main__'",
                col=node.col_offset,
            )

    def _check_lambda_dispatch(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            # pool.map(lambda ...), executor.submit(lambda ...), ...
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr in WORKER_DISPATCH_METHODS
            ):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Lambda):
                        yield self._lambda_finding(module, arg, node.func.attr)
            # Process(target=lambda ...)
            dotted = dotted_name(node.func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] == "Process":
                for kw in node.keywords:
                    if kw.arg == "target" and isinstance(kw.value, ast.Lambda):
                        yield self._lambda_finding(module, kw.value, "Process(target=...)")

    def _lambda_finding(self, module, node: ast.Lambda, where: str) -> Finding:
        return self.finding(
            module.rel_path,
            node.lineno,
            f"lambda passed to {where} cannot be pickled to a process "
            "worker; use a module-level function (or functools.partial)",
            col=node.col_offset,
        )
