"""``bench-schema`` — benchmark scripts must emit the shared result schema.

The regression harness (``benchmarks/check_regression.py``, the CI smoke
job, the cross-run comparisons in ROADMAP experiments) only works when
every ``benchmarks/bench_*.py`` writes its results through
:func:`bench_config.write_bench_json`, which stamps ``git_sha``/
``git_dirty``, validates the per-entry schema (``label``, ``backend``,
``layout``, timing fields), and records the CI gate the script registers
via the required ``gates=`` keyword.  A script that hand-rolls
``json.dump`` produces files the harness silently skips — results that
look collected but gate nothing.

The rule checks, for each ``bench_*.py``:

* at least one ``write_bench_json(...)`` call exists;
* every such call passes a ``gates=`` keyword;
* no raw ``json.dump``/``json.dumps`` result writes bypass the helper.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register_rule
from ._util import dotted_name

__all__ = ["BenchSchemaRule"]

#: Infrastructure files in benchmarks/ the rule does not apply to.
_EXCLUDED = frozenset({"bench_config.py", "conftest.py", "check_regression.py"})


@register_rule
class BenchSchemaRule(Rule):
    name = "bench-schema"
    description = (
        "benchmarks/bench_*.py must write results via "
        "bench_config.write_bench_json(..., gates=[...]) — no raw json.dump"
    )

    def applies_to(self, module) -> bool:
        return (
            module.name.startswith("bench_")
            and module.name.endswith(".py")
            and module.name not in _EXCLUDED
        )

    def check_module(self, module) -> Iterator[Finding]:
        writer_calls = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf == "write_bench_json":
                writer_calls.append(node)
            elif dotted in ("json.dump", "json.dumps"):
                yield self.finding(
                    module.rel_path,
                    node.lineno,
                    f"{dotted}(...) bypasses write_bench_json; the regression "
                    "harness only reads files carrying the shared schema "
                    "(git_sha, layout, gates)",
                    col=node.col_offset,
                )

        if not writer_calls:
            yield self.finding(
                module.rel_path,
                1,
                "benchmark script never calls write_bench_json; results are "
                "invisible to check_regression.py and the CI smoke gate",
            )
            return

        for call in writer_calls:
            if not any(kw.arg == "gates" for kw in call.keywords):
                yield self.finding(
                    module.rel_path,
                    call.lineno,
                    "write_bench_json call without gates=[...]; every "
                    "benchmark must declare which regression gate its "
                    "numbers feed",
                    col=call.col_offset,
                )
