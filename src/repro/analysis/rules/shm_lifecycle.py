"""``shm-lifecycle`` — every created shared-memory segment must be released.

POSIX shared memory outlives the process: a ``SharedMemory(create=True)``
(or a ``SharedArraySet``) that is not closed *and unlinked* on every path —
including the exception paths between creation and registration — leaks a
``/dev/shm`` segment until reboot.  The rule accepts exactly the ownership
patterns the codebase uses:

* created as a context manager (``with SharedArraySet() as shm: ...``);
* created into a local name that a ``finally`` block or ``except`` handler
  in the same function closes/unlinks;
* created and *returned* (ownership transfers to the caller, as
  :func:`repro.parallel.shm.attach` does);
* stored on ``self`` by a class that defines ``close``/``__exit__``/
  ``__del__`` (instance-owned, e.g. ``SharedArraySet`` itself).

Anything else — in particular a bare creation whose failure window has no
handler — is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..findings import Finding
from ..registry import Rule, register_rule
from ._util import dotted_name, iter_functions

__all__ = ["ShmLifecycleRule", "RESOURCE_CONSTRUCTORS"]

#: Callables whose return value owns a shared-memory segment (or a set of
#: them).  Matched on the trailing name so both ``SharedMemory(...)`` and
#: ``shared_memory.SharedMemory(...)`` count.
RESOURCE_CONSTRUCTORS = frozenset({"SharedMemory", "SharedArraySet"})

_RELEASE_METHODS = frozenset({"close", "unlink"})
_OWNER_METHODS = frozenset({"close", "__exit__", "__del__"})


def _creator_leaf(node: ast.Call) -> Optional[str]:
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    leaf = dotted.rsplit(".", 1)[-1]
    return leaf if leaf in RESOURCE_CONSTRUCTORS else None


def _released_names(fn: ast.AST) -> Set[str]:
    """Names ``x`` with an ``x.close()``/``x.unlink()`` call inside a
    ``finally`` block or ``except`` handler of ``fn``."""
    released: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try):
            continue
        regions: List[ast.AST] = list(node.finalbody)
        for handler in node.handlers:
            regions.extend(handler.body)
        for region in regions:
            for sub in ast.walk(region):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _RELEASE_METHODS
                    and isinstance(sub.func.value, ast.Name)
                ):
                    released.add(sub.func.value.id)
    return released


def _returned_names(fn: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _is_self_storage(target: ast.AST) -> bool:
    """``self.attr = ...`` or ``self.attr[key] = ...``."""
    if isinstance(target, ast.Subscript):
        target = target.value
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


@register_rule
class ShmLifecycleRule(Rule):
    name = "shm-lifecycle"
    description = (
        "SharedMemory/SharedArraySet creations must be closed and unlinked "
        "on all paths (with-statement, try/finally, ownership transfer)"
    )

    def check_module(self, module) -> Iterator[Finding]:
        owning_classes = self._owning_classes(module.tree)
        method_owner: Dict[ast.AST, str] = {}
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                for stmt in cls.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_owner[stmt] = cls.name

        seen: Set[int] = set()
        for fn in iter_functions(module.tree):
            with_calls = self._with_context_calls(fn)
            released = _released_names(fn)
            returned = _returned_names(fn)
            cls_name = method_owner.get(fn)
            self_owned = cls_name is not None and cls_name in owning_classes
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                    leaf = _creator_leaf(stmt.value)
                    if leaf is None:
                        continue
                    if id(stmt.value) in seen or self._assignment_is_safe(
                        stmt, released, returned, self_owned
                    ):
                        continue
                    seen.add(id(stmt.value))
                    yield self._leak(module, stmt.value, leaf, fn.name)
                elif isinstance(stmt, ast.Call):
                    leaf = _creator_leaf(stmt)
                    if leaf is None or stmt in with_calls or id(stmt) in seen:
                        continue
                    if self._is_assigned_value(fn, stmt):
                        continue
                    seen.add(id(stmt))
                    yield self._leak(module, stmt, leaf, fn.name, bare=True)

    # ------------------------------------------------------------------ #
    def _leak(self, module, node: ast.Call, leaf: str, fn_name: str, bare=False):
        how = (
            "is never bound to a name, so it can never be closed/unlinked"
            if bare
            else "has a path on which it is not closed/unlinked (use a with "
            "statement, a try/finally, or close+unlink in an except handler "
            "covering the window between creation and registration)"
        )
        return self.finding(
            module.rel_path,
            node.lineno,
            f"{leaf}(...) {how}",
            col=node.col_offset,
            symbol=fn_name,
        )

    @staticmethod
    def _with_context_calls(fn: ast.AST) -> Set[ast.AST]:
        calls: Set[ast.AST] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    calls.add(item.context_expr)
        return calls

    @staticmethod
    def _is_assigned_value(fn: ast.AST, call: ast.Call) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and node.value is call:
                return True
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.context_expr is call:
                        return True
        return False

    @staticmethod
    def _assignment_is_safe(
        stmt: ast.Assign,
        released: Set[str],
        returned: Set[str],
        self_owned: bool,
    ) -> bool:
        if len(stmt.targets) != 1:
            return False
        target = stmt.targets[0]
        if _is_self_storage(target):
            return self_owned
        if isinstance(target, ast.Name):
            return target.id in released or target.id in returned
        return False

    @staticmethod
    def _owning_classes(tree: ast.AST) -> Set[str]:
        owners: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                methods = {
                    stmt.name
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if methods & _OWNER_METHODS:
                    owners.add(node.name)
        return owners
