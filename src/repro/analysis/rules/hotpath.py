"""``hot-path-alloc`` — allocation/loop discipline for ``@hot_path`` kernels.

A function marked :func:`repro.analysis.annotations.hot_path` runs once per
embed/patch call, so its per-call cost budget excludes:

* Python-level loops over edge/vertex-sized data (``for`` over ``src``,
  ``zip(src, dst)``, ``range(n_edges)``, …) — the interpreted per-edge
  regime the vectorised kernels exist to avoid.  Loops over *block* or
  *chunk* counts are fine: only iterables whose expression mentions an
  edge/vertex size symbol are flagged.
* O(E)/O(n·K) temporary allocation through ``np.zeros`` / ``np.empty`` /
  ``np.ones`` / ``np.full`` / ``np.concatenate`` whose size expression
  derives from edge/vertex symbols.  Per-call output must route through
  the plan's reused buffers (``plan.zeroed_output()`` /
  ``plan.output_matrix()``); block-local ``np.bincount`` temporaries are
  the sanctioned scatter mechanism and are not flagged.

Deliberate exceptions (per-worker private partials, O(Δ) delta arrays that
merely *look* edge-sized) carry ``# repro: ignore[hot-path-alloc]`` with a
one-line justification.

JIT-compiled kernels (``@hot_path`` stacked on ``@numba.njit``) are exempt
from the loop check: their per-edge loops compile to machine code — the
loop *is* the optimization there, not the interpreted regime this rule
polices.  The allocation check still applies (a ``np.zeros`` inside a
jitted body is a real per-call allocation either way).

``np.add.at`` is banned repo-wide by the separate ``no-add-at`` rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register_rule
from ._util import decorator_matches, dotted_name, iter_functions, subtree_names

__all__ = ["HotPathAllocationRule", "EDGE_SIZE_SYMBOLS", "ALLOCATING_CALLS"]

#: Identifiers treated as edge/vertex-sized quantities.  An allocation or
#: loop bound whose expression mentions any of these is assumed O(E) or
#: O(n·K); block/chunk-sized symbols (``cuts``, ``bounds``, ``slabs``,
#: ``rows_per_block``) are deliberately absent.
EDGE_SIZE_SYMBOLS = frozenset(
    {
        "src",
        "dst",
        "edges",
        "weights",
        "delta_w",
        "owner",
        "partner",
        "owner_flat",
        "src_flat",
        "dst_flat",
        "flat",
        "flat_idx",
        "incidences",
        "indices",
        "indptr",
        "n",
        "m",
        "s",
        "E",
        "n_edges",
        "n_vertices",
        "n_incidences",
        "n_rows",
        "deg",
        "degree",
        "degrees",
    }
)

#: numpy constructors whose result is as large as their size expression.
ALLOCATING_CALLS = frozenset({"zeros", "empty", "ones", "full", "concatenate"})

#: Iterable wrappers a hot loop is allowed to use over *small* quantities.
_LOOP_WRAPPERS = frozenset({"range", "zip", "enumerate", "reversed"})


def _mentions_edge_symbol(node: ast.AST) -> bool:
    return bool(subtree_names(node) & EDGE_SIZE_SYMBOLS)


def _is_numpy_call(dotted: str, leaf: str) -> bool:
    return dotted == f"np.{leaf}" or dotted == f"numpy.{leaf}" or dotted == leaf


@register_rule
class HotPathAllocationRule(Rule):
    name = "hot-path-alloc"
    description = (
        "@hot_path functions may not loop over edge-sized data or allocate "
        "O(E)/O(n*K) temporaries outside the plan's reused buffers"
    )

    def check_module(self, module) -> Iterator[Finding]:
        for fn in iter_functions(module.tree):
            if not decorator_matches(fn, "hot_path"):
                continue
            yield from self._check_function(module, fn)

    @staticmethod
    def _is_jitted(fn) -> bool:
        """Whether the function is numba-compiled (``@njit``/``@jit``/``@prange``-style).

        Jitted loop nests run at machine speed; the interpreted-loop check
        must not fire inside them (the allocation check still does).
        """
        return any(decorator_matches(fn, name) for name in ("njit", "jit"))

    def _check_function(self, module, fn) -> Iterator[Finding]:
        jitted = self._is_jitted(fn)
        for node in ast.walk(fn):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if jitted:
                    continue
                if self._loop_is_edge_sized(node.iter):
                    yield self.finding(
                        module.rel_path,
                        node.lineno,
                        "Python-level loop over edge/vertex-sized data in a "
                        "@hot_path function; vectorise it or loop over "
                        "blocks/chunks instead",
                        col=node.col_offset,
                        symbol=fn.name,
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                leaf = dotted.rsplit(".", 1)[-1]
                if leaf in ALLOCATING_CALLS and _is_numpy_call(dotted, f"{leaf}"):
                    args: list = list(node.args) + [kw.value for kw in node.keywords]
                    if any(_mentions_edge_symbol(a) for a in args):
                        yield self.finding(
                            module.rel_path,
                            node.lineno,
                            f"np.{leaf} with an edge/vertex-derived size in a "
                            "@hot_path function; route the output through the "
                            "plan's reused buffers or justify with "
                            "# repro: ignore[hot-path-alloc]",
                            col=node.col_offset,
                            symbol=fn.name,
                        )

    @staticmethod
    def _loop_is_edge_sized(iter_node: ast.AST) -> bool:
        # Direct iteration over an edge-sized name/attribute.
        direct = dotted_name(iter_node)
        if direct is not None:
            return direct.rsplit(".", 1)[-1] in EDGE_SIZE_SYMBOLS
        # range/zip/enumerate(...) whose arguments mention an edge symbol.
        if isinstance(iter_node, ast.Call):
            fn_name = dotted_name(iter_node.func)
            if fn_name is not None and fn_name.rsplit(".", 1)[-1] in _LOOP_WRAPPERS:
                return any(_mentions_edge_symbol(arg) for arg in iter_node.args)
        return False
