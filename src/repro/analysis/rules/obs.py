"""``obs-span-hygiene`` — no span creation inside per-edge hot loops.

The :mod:`repro.obs` substrate is zero-overhead *per call site*, not per
edge: a span costs one flag check disabled and a clock read + tuple append
enabled.  Creating one inside a Python loop over edge/vertex-sized data in
a ``@hot_path`` function multiplies that cost by O(E) and floods the ring
buffer — exactly the regime the <2%/<10% overhead gate exists to prevent.

Spans *around* such loops (or at the top of a ``@hot_path`` function, as
``IncrementalEmbedding.update`` does) are fine and encouraged; only span
construction lexically nested inside an edge-sized loop is flagged.  The
edge-sized-loop judgement is shared with ``hot-path-alloc`` (which already
bans most such loops outright — this rule catches the annotated survivors
that carry a ``# repro: ignore[hot-path-alloc]`` justification).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register_rule
from ._util import decorator_matches, dotted_name, iter_functions
from .hotpath import HotPathAllocationRule

__all__ = ["ObsSpanHygieneRule", "SPAN_CALLS"]

#: Callables from :mod:`repro.obs` whose invocation creates a span record
#: (or an instant event, which shares the ring buffer).
SPAN_CALLS = frozenset({"trace", "traced", "Span", "record_span", "record_event"})


@register_rule
class ObsSpanHygieneRule(Rule):
    name = "obs-span-hygiene"
    description = (
        "span/event creation (repro.obs trace/Span/record_*) inside a "
        "per-edge loop of a @hot_path function"
    )

    def check_module(self, module) -> Iterator[Finding]:
        for fn in iter_functions(module.tree):
            if not decorator_matches(fn, "hot_path"):
                continue
            yield from self._check_function(module, fn)

    def _check_function(self, module, fn) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if not HotPathAllocationRule._loop_is_edge_sized(node.iter):
                    continue
            else:
                # ``while`` loops: conservative — only flag when the test
                # mentions an edge-sized symbol.
                from .hotpath import _mentions_edge_symbol

                if not _mentions_edge_symbol(node.test):
                    continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                dotted = dotted_name(inner.func)
                if dotted is None:
                    continue
                leaf = dotted.rsplit(".", 1)[-1]
                if leaf in SPAN_CALLS:
                    yield self.finding(
                        module.rel_path,
                        inner.lineno,
                        f"{leaf}() creates a span record inside a per-edge "
                        "loop of a @hot_path function; hoist the span to "
                        "wrap the loop (one record per pass, not per edge)",
                        col=inner.col_offset,
                        symbol=fn.name,
                    )
