"""``index-dtype`` — int32 narrowing must go through ``choose_index_dtype``.

Flat scatter indices narrow to int32 only when ``n_vertices * n_classes``
fits a signed 32-bit integer (:func:`repro.core.plan.choose_index_dtype`
encodes the ``n*K < 2^31`` bound, computed in Python integers so the check
itself cannot overflow).  A bare ``astype(np.int32)`` — or an int32-dtyped
array constructor — silently truncates above the bound and corrupts the
scatter, so any literal int32 request outside ``choose_index_dtype`` is
flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from ..registry import Rule, register_rule
from ._util import dotted_name

__all__ = ["IndexDtypeRule"]

#: Constructors whose ``dtype=`` keyword is checked.
_CONSTRUCTORS = frozenset(
    {"zeros", "empty", "ones", "full", "arange", "array", "asarray", "ndarray"}
)


def _is_int32_literal(node: ast.AST) -> bool:
    dotted = dotted_name(node)
    if dotted in ("np.int32", "numpy.int32", "int32"):
        return True
    return isinstance(node, ast.Constant) and node.value == "int32"


@register_rule
class IndexDtypeRule(Rule):
    name = "index-dtype"
    description = (
        "literal int32 casts/constructors bypass the n*K < 2^31 narrowing "
        "rule; use repro.core.plan.choose_index_dtype"
    )

    def check_module(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            flagged = self._int32_request(node)
            if flagged is not None:
                yield self.finding(
                    module.rel_path,
                    node.lineno,
                    f"{flagged}: index dtypes must come from "
                    "choose_index_dtype(n_vertices, n_classes) so int32 is "
                    "only used when every flat index fits; justify deliberate "
                    "narrow casts with # repro: ignore[index-dtype]",
                    col=node.col_offset,
                )

    @staticmethod
    def _int32_request(node: ast.Call) -> Optional[str]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf == "astype":
            for candidate in list(node.args[:1]) + [
                kw.value for kw in node.keywords if kw.arg == "dtype"
            ]:
                if _is_int32_literal(candidate):
                    return "astype(np.int32)"
        elif leaf in _CONSTRUCTORS:
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_int32_literal(kw.value):
                    return f"{leaf}(..., dtype=np.int32)"
        return None
