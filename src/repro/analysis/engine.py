"""The analysis engine: file discovery, parsing, rule dispatch, suppression.

:func:`analyze_paths` is the embeddable entry point (the CLI in
``__main__`` and the test suite both call it): walk the given files and
directories, parse every ``*.py`` once, run the selected rules, apply
``# repro: ignore[...]`` suppressions, and return the findings sorted by
location.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .findings import Finding, Severity
from .registry import Rule, all_rules
from .suppressions import SuppressionIndex

__all__ = ["SourceModule", "Project", "analyze_paths", "iter_python_files"]

PathLike = Union[str, Path]


class SourceModule:
    """One parsed source file handed to file-scoped rules."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = SuppressionIndex(self.lines)

    @property
    def name(self) -> str:
        return self.path.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SourceModule {self.rel_path}>"


class Project:
    """The whole analyzed file set, handed to project-scoped rules."""

    def __init__(self, root: Path, modules: Sequence[SourceModule]) -> None:
        self.root = root
        self.modules = list(modules)
        self._by_resolved: Dict[Path, SourceModule] = {
            m.path.resolve(): m for m in self.modules
        }

    def module_for(self, path: PathLike) -> Optional[SourceModule]:
        return self._by_resolved.get(Path(path).resolve())

    def relativize(self, path: PathLike) -> str:
        """Repo-relative display path for ``path`` (falls back to absolute)."""
        resolved = Path(path).resolve()
        try:
            return str(resolved.relative_to(self.root))
        except ValueError:
            return str(resolved)


def iter_python_files(paths: Iterable[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"analysis path does not exist: {path}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def _parse_modules(
    files: Sequence[Path], root: Path
) -> tuple[List[SourceModule], List[Finding]]:
    modules: List[SourceModule] = []
    errors: List[Finding] = []
    for path in files:
        rel = _relativize(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(SourceModule(path, rel, source))
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            errors.append(
                Finding(
                    rule="parse-error",
                    severity=Severity.ERROR,
                    path=rel,
                    line=int(line),
                    message=f"could not parse file: {exc.__class__.__name__}: {exc}",
                )
            )
    return modules, errors


def _relativize(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root))
    except ValueError:
        return str(path)


def analyze_paths(
    paths: Sequence[PathLike],
    *,
    rules: Optional[Union[Sequence[str], Sequence[Rule]]] = None,
    include_suppressed: bool = False,
    root: Optional[PathLike] = None,
) -> List[Finding]:
    """Run the analysis rules over ``paths`` and return sorted findings.

    Parameters
    ----------
    paths:
        Files and/or directories; directories are walked recursively for
        ``*.py`` (skipping ``__pycache__``).
    rules:
        Rule names (strings) or already-instantiated :class:`Rule` objects;
        ``None`` runs every registered rule.
    include_suppressed:
        Keep findings covered by ``# repro: ignore[...]`` comments in the
        returned list (marked ``suppressed=True``) instead of dropping them.
    root:
        Directory findings paths are reported relative to (default: the
        current working directory).
    """
    root_path = Path.cwd() if root is None else Path(root)
    root_path = root_path.resolve()

    if rules is None or (rules and isinstance(rules[0], str)):
        active = all_rules(rules)  # type: ignore[arg-type]
    else:
        active = list(rules)  # type: ignore[arg-type]

    files = iter_python_files(paths)
    modules, findings = _parse_modules(files, root_path)
    project = Project(root_path, modules)

    for rule in active:
        if rule.scope == "file":
            for module in modules:
                if rule.applies_to(module):
                    findings.extend(rule.check_module(module))
        else:
            findings.extend(rule.check_project(project))

    resolved: List[Finding] = []
    for finding in findings:
        module = project.module_for(root_path / finding.path)
        if module is None:
            module = project.module_for(finding.path)
        if module is not None and module.suppressions.is_suppressed(
            finding.rule, finding.line
        ):
            finding.suppressed = True
        finding.path = project.relativize(
            finding.path
            if Path(finding.path).is_absolute()
            else root_path / finding.path
        )
        if include_suppressed or not finding.suppressed:
            resolved.append(finding)
    resolved.sort(key=Finding.sort_key)
    return resolved
