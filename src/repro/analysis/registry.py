"""The analysis-rule registry: ``Rule`` base class and ``@register_rule``.

Mirrors the shape of :mod:`repro.backends.registry` — rules are classes
registered under a canonical kebab-case name, discoverable by tooling, and
re-registering a taken name raises so a rule can never be shadowed
silently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Type

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Project, SourceModule

__all__ = ["Rule", "register_rule", "all_rules", "get_rule", "list_rules"]


class Rule:
    """Base class for one static-analysis rule.

    File-scoped rules (``scope = "file"``) implement :meth:`check_module`
    and run once per analyzed source file; project-scoped rules
    (``scope = "project"``) implement :meth:`check_project` and run once
    per invocation with the whole file set (used by checks that must
    consult live runtime state, like the capability-contract rule).
    """

    #: Canonical kebab-case rule name; also the suppression token.
    name: str = "abstract"
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line summary shown by ``--list-rules`` and the docs table.
    description: str = ""
    #: ``"file"`` or ``"project"``.
    scope: str = "file"

    def applies_to(self, module: "SourceModule") -> bool:
        """Whether this (file-scoped) rule should run on ``module``."""
        return True

    def check_module(self, module: "SourceModule") -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------ #
    def finding(
        self,
        path: str,
        line: int,
        message: str,
        *,
        col: int = 0,
        symbol: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            rule=self.name,
            severity=self.severity if severity is None else severity,
            path=path,
            line=line,
            col=col,
            message=message,
            symbol=symbol,
        )


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: install a :class:`Rule` subclass in the registry."""
    if not (isinstance(cls, type) and issubclass(cls, Rule)):
        raise TypeError(f"@register_rule requires a Rule subclass, got {cls!r}")
    name = cls.name
    if not name or name == "abstract":
        raise ValueError("rule classes must set a canonical 'name'")
    if name in _RULES:
        raise ValueError(f"analysis rule {name!r} is already registered")
    if cls.scope not in ("file", "project"):
        raise ValueError(f"rule {name!r} has invalid scope {cls.scope!r}")
    _RULES[name] = cls
    return cls


def list_rules() -> List[str]:
    """Sorted canonical names of every registered rule."""
    _ensure_builtin_rules()
    return sorted(_RULES)


def get_rule(name: str) -> Type[Rule]:
    _ensure_builtin_rules()
    try:
        return _RULES[name]
    except KeyError:
        raise ValueError(
            f"unknown analysis rule {name!r}; registered rules: {list_rules()}"
        ) from None


def all_rules(names: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the selected rules (all of them when ``names`` is None)."""
    _ensure_builtin_rules()
    if names is None:
        return [cls() for _, cls in sorted(_RULES.items())]
    return [get_rule(name)() for name in names]


def _ensure_builtin_rules() -> None:
    # Importing the rules package registers every built-in rule; done
    # lazily so `repro.analysis.annotations` stays import-light.
    from . import rules  # noqa: F401
