"""Parsing of ``# repro: ignore[...]`` suppression comments.

Two forms, both taking a comma-separated rule list (or ``*`` for all):

* line suppression — ``# repro: ignore[RULE]`` on the finding's line or on
  the line directly above it (the usual place when the flagged statement is
  long).  A one-line justification after the bracket is encouraged::

      np.add.at(arr, idx, v)  # repro: ignore[no-add-at] cold path, keeps the oracle exact

* file suppression — ``# repro: ignore-file[RULE]`` anywhere in the file
  (conventionally in the header comment) suppresses the rule file-wide.

Suppressed findings are still produced by the rules; the engine marks them
``suppressed=True`` and drops them from the default output, so
``--include-suppressed`` can audit what the comments hide.
"""

from __future__ import annotations

import re
from typing import Dict, Sequence, Set

__all__ = ["SuppressionIndex", "SUPPRESSION_RE"]

SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*(?P<form>ignore-file|ignore)\[(?P<rules>[^\]]*)\]"
)


def _parse_rules(raw: str) -> Set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


class SuppressionIndex:
    """Per-file index of suppression comments, built from raw source lines."""

    def __init__(self, lines: Sequence[str]) -> None:
        self.file_rules: Set[str] = set()
        self.line_rules: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(lines, start=1):
            for match in SUPPRESSION_RE.finditer(line):
                rules = _parse_rules(match.group("rules"))
                if not rules:
                    continue
                if match.group("form") == "ignore-file":
                    self.file_rules |= rules
                else:
                    self.line_rules.setdefault(lineno, set()).update(rules)

    def _covers(self, rules: Set[str], rule: str) -> bool:
        return "*" in rules or rule in rules

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed at ``line`` (1-based).

        A line suppression matches on the finding's own line or on the line
        immediately above (a comment-only line preceding a long statement).
        """
        if self._covers(self.file_rules, rule):
            return True
        for candidate in (line, line - 1):
            rules = self.line_rules.get(candidate)
            if rules is not None and self._covers(rules, rule):
                return True
        return False
