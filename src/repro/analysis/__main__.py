"""``python -m repro.analysis`` — the static-analysis CLI.

Walks the given paths (default: ``src/repro`` and ``benchmarks`` under the
current directory, whichever exist), runs every registered rule, and
prints findings as text or JSON.  Exit status is non-zero when any finding
at or above ``--fail-on`` severity remains, so CI can gate on it::

    python -m repro.analysis src/repro benchmarks --format json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import analyze_paths
from .findings import Finding, Severity
from .registry import all_rules, list_rules

__all__ = ["main"]

_JSON_SCHEMA_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: src/repro and "
        "benchmarks under the current directory, whichever exist)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="warning",
        help="minimum severity that causes a non-zero exit (default: warning)",
    )
    parser.add_argument(
        "--include-suppressed",
        action="store_true",
        help="also report findings silenced by # repro: ignore[...] comments",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report to FILE (same format as stdout)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory finding paths are reported relative to (default: cwd)",
    )
    return parser


def _default_paths() -> List[str]:
    candidates = [Path("src") / "repro", Path("benchmarks")]
    found = [str(p) for p in candidates if p.exists()]
    if not found:
        raise SystemExit(
            "no paths given and neither src/repro nor benchmarks exists here; "
            "pass explicit paths"
        )
    return found


def _render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro.analysis: no findings\n"
    lines = [f.render() for f in findings]
    active = sum(1 for f in findings if not f.suppressed)
    suppressed = len(findings) - active
    tail = f"repro.analysis: {active} finding(s)"
    if suppressed:
        tail += f" (+{suppressed} suppressed)"
    lines.append(tail)
    return "\n".join(lines) + "\n"


def _render_json(findings: Sequence[Finding], rule_names: Sequence[str]) -> str:
    counts = {name.lower(): 0 for name in Severity.__members__}
    for f in findings:
        if not f.suppressed:
            counts[f.severity.name.lower()] += 1
    payload = {
        "version": _JSON_SCHEMA_VERSION,
        "rules": list(rule_names),
        "counts": counts,
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:22s} [{rule.severity.name.lower():7s}] {rule.description}")
        return 0

    rule_names = (
        [name.strip() for name in args.rules.split(",") if name.strip()]
        if args.rules
        else None
    )
    paths = args.paths or _default_paths()
    findings = analyze_paths(
        paths,
        rules=rule_names,
        include_suppressed=args.include_suppressed,
        root=args.root,
    )

    report = (
        _render_json(findings, rule_names or list_rules())
        if args.format == "json"
        else _render_text(findings)
    )
    sys.stdout.write(report)
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")

    threshold = Severity.parse(args.fail_on)
    failing = [
        f for f in findings if not f.suppressed and f.severity >= threshold
    ]
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
