"""Source annotations consumed by the static-analysis pass.

This module is a leaf on purpose: the kernels in :mod:`repro.core` /
:mod:`repro.stream` import :func:`hot_path` from here, so it must not pull
in the analyzer machinery (or anything else) at import time.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar, overload

__all__ = ["hot_path", "is_hot_path"]

F = TypeVar("F", bound=Callable)


@overload
def hot_path(fn: F) -> F: ...  # pragma: no cover - typing only


@overload
def hot_path(*, reason: str) -> Callable[[F], F]: ...  # pragma: no cover


def hot_path(fn: Optional[F] = None, *, reason: Optional[str] = None):
    """Mark a function as per-call hot-path code.

    The decorator is a pure marker — it returns the function unchanged and
    adds zero call overhead.  Its effect is entirely static: the
    ``hot-path-alloc`` rule of :mod:`repro.analysis` lints the *source* of
    every ``@hot_path`` function, rejecting ``np.add.at``, Python-level
    loops over edge/vertex-sized data, and O(E)/O(n·K) temporary
    allocations that are not routed through a plan's reused buffers.

    ``reason`` optionally records why the function is hot (shown by
    tooling; e.g. ``@hot_path(reason="per-edge scatter kernel")``).
    """

    def mark(func: F) -> F:
        func.__repro_hot_path__ = True  # type: ignore[attr-defined]
        if reason is not None:
            func.__repro_hot_path_reason__ = reason  # type: ignore[attr-defined]
        return func

    if fn is not None:
        return mark(fn)
    return mark


def is_hot_path(fn: Callable) -> bool:
    """Whether ``fn`` (or the function under ``functools.wraps``) is marked."""
    return bool(getattr(fn, "__repro_hot_path__", False))
