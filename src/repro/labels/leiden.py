"""Community detection for deriving GEE labels without supervision.

The paper notes (§II) that the label vector ``Y`` "may be derived from
unsupervised clustering, such as by running the Leiden community detection
algorithm".  This module provides a from-scratch Louvain/Leiden-style
modularity optimiser — local moving of vertices followed by graph
aggregation, repeated until modularity stops improving — sufficient to play
that role on the synthetic graphs used here.  (The full Leiden refinement
step that guarantees well-connected communities is approximated by a
connectivity check that splits disconnected communities.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..graph.builders import symmetrize
from ..graph.edgelist import EdgeList
from ..graph.properties import connected_components
from ..graph.builders import subgraph as induced_subgraph

__all__ = ["CommunityResult", "leiden_communities", "modularity"]

SeedLike = Union[None, int, np.random.Generator]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass
class CommunityResult:
    """Detected communities: per-vertex assignment, count and modularity."""

    labels: np.ndarray
    n_communities: int
    modularity: float
    n_levels: int


def modularity(edges: EdgeList, labels: np.ndarray) -> float:
    """Newman modularity of a partition on the undirected view of ``edges``.

    Computed as ``sum_c (e_c / m - (a_c / 2m)^2)`` where ``e_c`` is the
    weight of intra-community edges and ``a_c`` the total degree of
    community ``c``.  The edge list is treated as already symmetric (each
    undirected edge present in both directions); ``m`` is half the total
    directed weight.
    """
    labels = np.asarray(labels, dtype=np.int64)
    w = edges.effective_weights()
    two_m = float(w.sum())
    if two_m == 0:
        return 0.0
    intra = float(w[labels[edges.src] == labels[edges.dst]].sum())
    deg = np.bincount(edges.src, weights=w, minlength=edges.n_vertices)
    n_comm = int(labels.max()) + 1 if labels.size else 0
    a = np.bincount(labels, weights=deg, minlength=n_comm)
    return intra / two_m - float(np.sum((a / two_m) ** 2))


def _local_moving(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    rng: np.random.Generator,
    max_passes: int = 10,
) -> np.ndarray:
    """One level of Louvain local moving; returns community ids (compacted)."""
    comm = np.arange(n, dtype=np.int64)
    deg = np.bincount(src, weights=w, minlength=n)
    two_m = float(w.sum())
    if two_m == 0:
        return comm
    comm_deg = deg.copy()

    # Build per-vertex adjacency once (CSR-ish) for the scan.
    order = np.argsort(src, kind="stable")
    s_sorted, d_sorted, w_sorted = src[order], dst[order], w[order]
    counts = np.bincount(s_sorted, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    improved_any = True
    passes = 0
    while improved_any and passes < max_passes:
        improved_any = False
        passes += 1
        for u in rng.permutation(n):
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            nbr = d_sorted[lo:hi]
            nbr_w = w_sorted[lo:hi]
            c_u = comm[u]
            # Weight from u to each neighbouring community.
            nbr_comm = comm[nbr]
            uniq, inv = np.unique(nbr_comm, return_inverse=True)
            k_in = np.bincount(inv, weights=nbr_w)
            # Remove u from its community for the gain computation.
            comm_deg[c_u] -= deg[u]
            self_idx = np.searchsorted(uniq, c_u)
            k_in_own = (
                k_in[self_idx] if self_idx < uniq.size and uniq[self_idx] == c_u else 0.0
            )
            gains = (k_in - k_in_own) - deg[u] * (comm_deg[uniq] - comm_deg[c_u]) / two_m
            best = int(np.argmax(gains))
            if gains[best] > 1e-12 and uniq[best] != c_u:
                comm[u] = uniq[best]
                comm_deg[uniq[best]] += deg[u]
                improved_any = True
            else:
                comm_deg[c_u] += deg[u]
    _, compact = np.unique(comm, return_inverse=True)
    return compact.astype(np.int64)


def _split_disconnected(edges: EdgeList, labels: np.ndarray) -> np.ndarray:
    """Leiden-style guarantee: split communities that are internally
    disconnected into their connected pieces."""
    labels = labels.copy()
    next_id = int(labels.max()) + 1 if labels.size else 0
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        if members.size <= 1:
            continue
        sub, verts = induced_subgraph(edges, members)
        comps = connected_components(sub)
        if comps.size and comps.max() > 0:
            for piece in range(1, int(comps.max()) + 1):
                labels[verts[comps == piece]] = next_id
                next_id += 1
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)


def leiden_communities(
    edges: EdgeList,
    *,
    max_levels: int = 10,
    seed: SeedLike = 0,
    ensure_connected: bool = True,
    symmetrize_input: bool = True,
) -> CommunityResult:
    """Detect communities by multi-level modularity optimisation.

    Parameters
    ----------
    edges:
        Graph to cluster.  By default the input is symmetrised first
        (community structure is an undirected notion).
    max_levels:
        Maximum number of aggregate-and-move levels.
    ensure_connected:
        Apply the Leiden connectivity fix after the final level.
    """
    work = symmetrize(edges) if symmetrize_input else edges.copy()
    rng = _rng(seed)
    n = work.n_vertices
    assignment = np.arange(n, dtype=np.int64)

    cur_edges = work
    levels = 0
    for _ in range(max_levels):
        levels += 1
        comm = _local_moving(
            cur_edges.n_vertices,
            cur_edges.src,
            cur_edges.dst,
            cur_edges.effective_weights(),
            rng,
        )
        n_comm = int(comm.max()) + 1 if comm.size else 0
        assignment = comm[assignment]
        if n_comm == cur_edges.n_vertices:
            break  # no merging happened: converged
        # Aggregate: communities become super-vertices, weights summed.
        new_src = comm[cur_edges.src]
        new_dst = comm[cur_edges.dst]
        agg = EdgeList(new_src, new_dst, cur_edges.effective_weights(), n_comm)
        from ..graph.builders import deduplicate

        cur_edges = deduplicate(agg, combine="sum")
        if cur_edges.n_vertices == 1:
            break

    if ensure_connected:
        assignment = _split_disconnected(work, assignment)
    q = modularity(work, assignment)
    return CommunityResult(
        labels=assignment,
        n_communities=int(assignment.max()) + 1 if assignment.size else 0,
        modularity=q,
        n_levels=levels,
    )
