"""Semi-supervised label propagation.

A simple baseline for filling in unknown labels before (or instead of)
running GEE: iteratively assign each unlabelled vertex the weighted majority
label of its neighbours.  GEE's own semi-supervised behaviour is compared
against this in the classification example.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.gee_vectorized import scatter_add
from ..core.validation import UNKNOWN_LABEL
from ..graph.edgelist import EdgeList

__all__ = ["propagate_labels"]

SeedLike = Union[None, int, np.random.Generator]


def propagate_labels(
    edges: EdgeList,
    labels: np.ndarray,
    n_classes: Optional[int] = None,
    *,
    max_iterations: int = 30,
    seed: SeedLike = None,
) -> np.ndarray:
    """Propagate known labels along edges until assignments stabilise.

    Known labels are clamped (never change); unknown vertices take the
    weighted majority class among their already-labelled neighbours, with
    ties broken deterministically toward the smaller class id.  Vertices
    unreachable from any labelled vertex stay ``-1``.
    """
    y = np.asarray(labels, dtype=np.int64).copy()
    n = edges.n_vertices
    if y.shape[0] != n:
        raise ValueError("labels must have one entry per vertex")
    if n_classes is None:
        known = y[y != UNKNOWN_LABEL]
        if known.size == 0:
            return y
        n_classes = int(known.max()) + 1
    clamped = y != UNKNOWN_LABEL
    w = edges.effective_weights()
    src, dst = edges.src, edges.dst

    for _ in range(max_iterations):
        # Accumulate class votes for every vertex from both edge directions,
        # through the same flat-index scatter the GEE kernels use.
        votes = np.zeros((n, n_classes), dtype=np.float64)
        votes_flat = votes.reshape(-1)
        known_dst = y[dst] != UNKNOWN_LABEL
        if np.any(known_dst):
            scatter_add(
                votes_flat,
                src[known_dst] * n_classes + y[dst[known_dst]],
                w[known_dst],
            )
        known_src = y[src] != UNKNOWN_LABEL
        if np.any(known_src):
            scatter_add(
                votes_flat,
                dst[known_src] * n_classes + y[src[known_src]],
                w[known_src],
            )
        has_votes = votes.sum(axis=1) > 0
        new_y = y.copy()
        update = has_votes & ~clamped
        if np.any(update):
            new_y[update] = np.argmax(votes[update], axis=1)
        if np.array_equal(new_y, y):
            break
        y = new_y
    return y
