"""Label generators for semi-supervised GEE experiments.

The paper's protocol (§IV): labels drawn uniformly at random from ``K = 50``
classes for 10 % of vertices, the rest unknown.  These helpers generate that
configuration as well as partially observed versions of a ground-truth
labelling (the setting used for the classification example).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.validation import UNKNOWN_LABEL

__all__ = ["random_partial_labels", "mask_labels", "balanced_partial_labels"]

SeedLike = Union[None, int, np.random.Generator]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_partial_labels(
    n_vertices: int,
    n_classes: int,
    labelled_fraction: float = 0.10,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """The paper's protocol: random classes for a random vertex subset."""
    if not 0.0 <= labelled_fraction <= 1.0:
        raise ValueError("labelled_fraction must be in [0, 1]")
    if n_classes <= 0:
        raise ValueError("n_classes must be positive")
    rng = _rng(seed)
    y = np.full(n_vertices, UNKNOWN_LABEL, dtype=np.int64)
    n_labelled = int(round(labelled_fraction * n_vertices))
    if n_labelled > 0:
        chosen = rng.choice(n_vertices, size=n_labelled, replace=False)
        y[chosen] = rng.integers(0, n_classes, size=n_labelled)
    return y


def mask_labels(
    ground_truth: np.ndarray,
    observed_fraction: float,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Hide all but a random fraction of a ground-truth labelling.

    This is the semi-supervised classification setting: the returned vector
    keeps the true class for ``observed_fraction`` of the vertices and marks
    everything else unknown.
    """
    if not 0.0 <= observed_fraction <= 1.0:
        raise ValueError("observed_fraction must be in [0, 1]")
    y_true = np.asarray(ground_truth, dtype=np.int64)
    rng = _rng(seed)
    y = np.full(y_true.shape[0], UNKNOWN_LABEL, dtype=np.int64)
    n_obs = int(round(observed_fraction * y_true.shape[0]))
    if n_obs > 0:
        chosen = rng.choice(y_true.shape[0], size=n_obs, replace=False)
        y[chosen] = y_true[chosen]
    return y


def balanced_partial_labels(
    ground_truth: np.ndarray,
    per_class: int,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Reveal exactly ``per_class`` vertices of every class (or all of a class
    if it has fewer members).  Useful for few-shot style experiments where a
    uniform random mask would starve small classes."""
    if per_class <= 0:
        raise ValueError("per_class must be positive")
    y_true = np.asarray(ground_truth, dtype=np.int64)
    rng = _rng(seed)
    y = np.full(y_true.shape[0], UNKNOWN_LABEL, dtype=np.int64)
    for k in np.unique(y_true[y_true != UNKNOWN_LABEL]):
        members = np.flatnonzero(y_true == k)
        chosen = rng.choice(members, size=min(per_class, members.size), replace=False)
        y[chosen] = k
    return y
