"""Lloyd's k-means with k-means++ seeding.

Used by the unsupervised GEE refinement loop (embed → cluster → re-embed),
which is how the original GEE paper derives labels when none are given, and
by the community-detection example.  Implemented here (rather than pulling
in scikit-learn) so the repository is self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = ["KMeansResult", "kmeans", "kmeans_plusplus_init"]

SeedLike = Union[None, int, np.random.Generator]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass
class KMeansResult:
    """Clustering output: assignments, centroids, inertia and iterations."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool


def kmeans_plusplus_init(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D² sampling."""
    n = X.shape[0]
    centroids = np.empty((n_clusters, X.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centroids[0] = X[first]
    closest_sq = np.sum((X - centroids[0]) ** 2, axis=1)
    for c in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with existing centroids; pick uniformly.
            idx = int(rng.integers(0, n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centroids[c] = X[idx]
        dist_sq = np.sum((X - centroids[c]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centroids


def kmeans(
    X: np.ndarray,
    n_clusters: int,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
    seed: SeedLike = None,
    init: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Cluster the rows of ``X`` into ``n_clusters`` groups.

    Empty clusters are re-seeded with the point farthest from its centroid,
    so the result always uses exactly ``n_clusters`` labels when
    ``n_clusters <= n_points``.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be a 2-D array of points")
    n = X.shape[0]
    if n_clusters <= 0:
        raise ValueError("n_clusters must be positive")
    if n == 0:
        return KMeansResult(
            labels=np.empty(0, dtype=np.int64),
            centroids=np.zeros((n_clusters, X.shape[1])),
            inertia=0.0,
            n_iterations=0,
            converged=True,
        )
    n_clusters = min(n_clusters, n)
    rng = _rng(seed)
    centroids = (
        np.array(init, dtype=np.float64, copy=True)
        if init is not None
        else kmeans_plusplus_init(X, n_clusters, rng)
    )
    if centroids.shape != (n_clusters, X.shape[1]):
        raise ValueError("init centroids have the wrong shape")

    labels = np.zeros(n, dtype=np.int64)
    prev_inertia = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Assignment step: squared distances via the expansion ||x-c||² =
        # ||x||² - 2 x·c + ||c||² (the ||x||² term is constant per point).
        cross = X @ centroids.T
        c_norm = np.sum(centroids**2, axis=1)
        dist = c_norm[None, :] - 2.0 * cross
        labels = np.argmin(dist, axis=1).astype(np.int64)
        x_norm = np.sum(X**2, axis=1)
        inertia = float(np.sum(x_norm + dist[np.arange(n), labels]))

        # Update step.
        counts = np.bincount(labels, minlength=n_clusters)
        new_centroids = np.zeros_like(centroids)
        for d in range(X.shape[1]):
            new_centroids[:, d] = np.bincount(labels, weights=X[:, d], minlength=n_clusters)
        nonempty = counts > 0
        new_centroids[nonempty] /= counts[nonempty, None]
        # Re-seed empty clusters with the worst-fit points.
        if np.any(~nonempty):
            residual = x_norm + dist[np.arange(n), labels]
            worst = np.argsort(residual)[::-1]
            for j, k_empty in enumerate(np.flatnonzero(~nonempty)):
                new_centroids[k_empty] = X[worst[j % n]]
        shift = float(np.sum((new_centroids - centroids) ** 2))
        centroids = new_centroids
        if abs(prev_inertia - inertia) <= tolerance * max(1.0, abs(prev_inertia)) and shift <= tolerance:
            converged = True
            break
        prev_inertia = inertia

    return KMeansResult(
        labels=labels,
        centroids=centroids,
        inertia=float(prev_inertia if np.isfinite(prev_inertia) else 0.0),
        n_iterations=iteration,
        converged=converged,
    )
