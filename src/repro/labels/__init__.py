"""Label sources for GEE: generators, propagation, community detection, k-means."""

from .generators import balanced_partial_labels, mask_labels, random_partial_labels
from .kmeans import KMeansResult, kmeans, kmeans_plusplus_init
from .leiden import CommunityResult, leiden_communities, modularity
from .propagation import propagate_labels

__all__ = [
    "random_partial_labels",
    "mask_labels",
    "balanced_partial_labels",
    "kmeans",
    "kmeans_plusplus_init",
    "KMeansResult",
    "leiden_communities",
    "modularity",
    "CommunityResult",
    "propagate_labels",
]
