"""CLI: calibrate this machine's execution cost model.

``python -m repro.tune`` measures the plan-path kernels (see
:func:`repro.tune.calibrate`) and writes the coefficient cache that
``backend="auto"`` / ``layout="auto"`` consult.  Safe to re-run any time;
CI caches the artifact between runs.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    calibrate,
    calibration_staleness,
    get_cost_model,
    load_calibration,
    reset_cost_model,
    save_calibration,
    tune_cache_path,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--force",
        action="store_true",
        help="re-measure even when a fresh calibration cache already exists",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per design point"
    )
    args = parser.parse_args(argv)

    path = tune_cache_path()
    existing = load_calibration()
    if existing is not None and not args.force:
        reason = calibration_staleness(existing)
        if reason is None:
            print(f"calibration cache at {path} is current; use --force to re-measure")
            return 0
        print(f"recalibrating: {reason}")

    data = calibrate(repeats=args.repeats)
    save_calibration(data)
    reset_cost_model()
    model = get_cost_model(refresh=True)
    print(f"wrote {path}")
    for config in sorted(data["coefficients"]):
        c = data["coefficients"][config]
        print(
            f"  {config:>20}: fixed={c['fixed_s'] * 1e6:8.1f} us  "
            f"per_edge={c['per_edge_s'] * 1e9:7.2f} ns  "
            f"per_cell={c['per_cell_s'] * 1e9:7.2f} ns"
        )
    sample = model.choose(65536, 1 << 20, 50)
    print(f"example choice for n=65536, E=2^20, K=50: {sample}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
