"""CLI: calibrate this machine's execution cost model.

``python -m repro.tune`` measures the plan-path kernels (see
:func:`repro.tune.calibrate`) and writes the coefficient cache that
``backend="auto"`` / ``layout="auto"`` consult.  Safe to re-run any time;
CI caches the artifact between runs.

``python -m repro.tune --show`` prints the persisted calibration without
measuring anything: where the cache lives, whether it is fresh or stale
(and why), the native-tier status, the coefficient table, and the
:class:`~repro.tune.ExecutionChoice` the model makes at representative
``(n, E, K)`` points.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import (
    calibrate,
    calibration_staleness,
    get_cost_model,
    load_calibration,
    reset_cost_model,
    save_calibration,
    tune_cache_path,
)

#: Representative ``(n, E, K)`` points for the --show choice table: a toy
#: graph, a mid-size sparse graph, a benchmark-scale graph, and a
#: class-heavy one (where the per-cell term dominates).
_SHOW_POINTS = (
    (1 << 10, 1 << 12, 8),
    (1 << 14, 1 << 17, 16),
    (1 << 16, 1 << 20, 50),
    (1 << 12, 1 << 15, 256),
)


def _print_coefficients(coefficients) -> None:
    for config in sorted(coefficients):
        c = coefficients[config]
        print(
            f"  {config:>20}: fixed={c['fixed_s'] * 1e6:8.1f} us  "
            f"per_edge={c['per_edge_s'] * 1e9:7.2f} ns  "
            f"per_cell={c['per_cell_s'] * 1e9:7.2f} ns"
        )


def _show() -> int:
    from ..native import native_available, native_status

    path = tune_cache_path()
    data = load_calibration()
    print(f"calibration cache: {path}")
    if data is None:
        print("  (absent or unreadable — the model runs on built-in defaults;")
        print("   run `python -m repro.tune` to calibrate this machine)")
    else:
        reason = calibration_staleness(data)
        state = "fresh" if reason is None else f"STALE: {reason}"
        print(f"  created: {data.get('created', '?')}  [{state}]")
        print(
            f"  python {data.get('python', '?')}, numpy {data.get('numpy', '?')}, "
            f"cpu_count {data.get('cpu_count', '?')}, "
            f"parallel_workers {data.get('parallel_workers', 0)}"
        )
    print(
        f"native tier: {'available' if native_available() else 'unavailable'} "
        f"({native_status()})"
    )
    model = get_cost_model()
    print(f"model source: {model.source}")
    print("coefficients:")
    _print_coefficients(model.coefficients)
    print("choices at representative (n, E, K) points:")
    workers = os.cpu_count() or 1
    for n, e, k in _SHOW_POINTS:
        choice = model.choose(n, e, k, n_workers_available=workers)
        print(f"  n={n:>6}  E={e:>8}  K={k:>3}  ->  {choice}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--force",
        action="store_true",
        help="re-measure even when a fresh calibration cache already exists",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per design point"
    )
    parser.add_argument(
        "--show",
        action="store_true",
        help="print the persisted calibration and the model's choices; no measurement",
    )
    args = parser.parse_args(argv)

    if args.show:
        return _show()

    path = tune_cache_path()
    existing = load_calibration()
    if existing is not None and not args.force:
        reason = calibration_staleness(existing)
        if reason is None:
            print(f"calibration cache at {path} is current; use --force to re-measure")
            return 0
        print(f"recalibrating: {reason}")

    data = calibrate(repeats=args.repeats)
    save_calibration(data)
    reset_cost_model()
    model = get_cost_model(refresh=True)
    print(f"wrote {path}")
    _print_coefficients(data["coefficients"])
    sample = model.choose(65536, 1 << 20, 50)
    print(f"example choice for n=65536, E=2^20, K=50: {sample}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
