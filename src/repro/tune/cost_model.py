"""The calibrated execution cost model behind ``backend="auto"``.

:class:`CostModel` holds per-``backend:layout`` cost coefficients (from the
machine calibration, :mod:`repro.tune.calibration`, or built-in defaults)
and answers the one question every embed entry point has been delegating to
the caller since PR 1: *which execution strategy is fastest for this graph
on this machine?*  :meth:`CostModel.choose` returns a full
:class:`ExecutionChoice` — backend, layout, worker count, chunking — and
the auto backend executes it; the choice is logged on the result
(``result.execution_choice``) for observability.

Degradation is deliberate and safe: a missing, corrupt, or stale
calibration cache produces a one-time :class:`RuntimeWarning` and the
built-in :data:`DEFAULT_CALIBRATION` coefficients — auto never errors for
lack of a cache.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .calibration import (
    calibration_staleness,
    load_calibration,
    tune_cache_path,
)

__all__ = [
    "CostModel",
    "ExecutionChoice",
    "DEFAULT_CALIBRATION",
    "auto_layout",
    "get_cost_model",
    "reset_cost_model",
]

#: Built-in fallback coefficients (seconds), fitted on the reference dev
#: container with the same procedure as :func:`repro.tune.calibrate`.  The
#: absolute numbers matter less than the *ratios* — random scatter vs.
#: segment-sum scatter vs. sparse matmul vs. interpreted loop — which are
#: stable across commodity x86.  A real per-machine calibration
#: (``python -m repro.tune``) always supersedes these.
DEFAULT_CALIBRATION: Dict = {
    "schema": 1,
    "cpu_count": None,
    "parallel_workers": 0,
    "coefficients": {
        "vectorized:none": {
            "fixed_s": 1.0e-05,
            "per_edge_s": 3.3e-08,
            "per_cell_s": 1.3e-09,
        },
        "vectorized:sorted": {
            "fixed_s": 1.5e-05,
            "per_edge_s": 1.1e-08,
            "per_cell_s": 1.6e-09,
        },
        "vectorized:blocked": {
            "fixed_s": 1.5e-05,
            "per_edge_s": 1.25e-08,
            "per_cell_s": 1.5e-09,
        },
        "sparse:none": {
            "fixed_s": 2.0e-05,
            "per_edge_s": 1.3e-08,
            "per_cell_s": 6.3e-09,
        },
        "python:none": {
            "fixed_s": 0.0,
            "per_edge_s": 1.1e-06,
            "per_cell_s": 0.0,
        },
        # Per-shard cost of the owner-range sharded engine: fixed_s is paid
        # once per shard (plan dispatch), per_edge_s is the fused
        # segment-sum scatter (matches vectorized:sorted), per_cell_s
        # covers one output pass plus the tree-reduction levels (the
        # shard-count model in choose() multiplies it by 1 + ceil(log2 s)).
        "sharded:sorted": {
            "fixed_s": 5.0e-05,
            "per_edge_s": 1.1e-08,
            "per_cell_s": 2.0e-09,
        },
        # The numba-JIT tier: one fused loop nest with no O(E) temporaries,
        # so the per-edge stream runs well below the vectorized floor
        # (ratios from the reference container with numba present; a
        # per-machine calibration measures the real numbers).  These rows
        # are only ever *candidates* where the tier is importable —
        # _candidates() checks availability, so on numba-less machines the
        # coefficients are inert.
        "native:sorted": {
            "fixed_s": 2.0e-05,
            "per_edge_s": 4.0e-09,
            "per_cell_s": 1.0e-09,
        },
        "native:blocked": {
            "fixed_s": 2.0e-05,
            "per_edge_s": 4.5e-09,
            "per_cell_s": 1.0e-09,
        },
    },
}

#: Configurations eligible for the chunked (out-of-core) path.
_CHUNK_CAPABLE = ("vectorized:sorted", "vectorized:none", "sparse:none", "native:sorted")

#: The interpreted loop is only ever competitive on toy graphs; beyond this
#: edge count its candidacy is suppressed so a miscalibrated fixed term can
#: never select it at scale.
_PYTHON_MAX_EDGES = 50_000


def _native_candidate_ok() -> bool:
    """Whether ``native:*`` rows may compete (the JIT tier is importable)."""
    from ..native.availability import native_available

    return native_available()


@dataclass(frozen=True)
class ExecutionChoice:
    """A fully-resolved execution strategy for one embed.

    What ``backend="auto"`` decided and why: the concrete backend and
    layout to run, the worker count (``None`` = serial), the chunk size to
    keep (``None`` = in-memory), the predicted wall-clock, whether the
    prediction came from a real machine calibration or the built-in
    defaults, and the full per-candidate prediction table for
    observability.
    """

    backend: str
    layout: str
    n_workers: Optional[int] = None
    chunk_edges: Optional[int] = None
    n_shards: Optional[int] = None
    predicted_s: float = float("nan")
    source: str = "default"
    predictions: Dict[str, float] = field(default_factory=dict)

    @property
    def config(self) -> str:
        """The ``backend:layout`` key of the chosen configuration."""
        return f"{self.backend}:{self.layout}"

    def to_dict(self) -> Dict:
        """JSON-able summary (what the benchmarks record)."""
        return {
            "backend": self.backend,
            "layout": self.layout,
            "n_workers": self.n_workers,
            "chunk_edges": self.chunk_edges,
            "n_shards": self.n_shards,
            "predicted_s": self.predicted_s,
            "source": self.source,
        }

    def __str__(self) -> str:
        workers = f", n_workers={self.n_workers}" if self.n_workers else ""
        chunk = f", chunk_edges={self.chunk_edges}" if self.chunk_edges else ""
        shards = f", n_shards={self.n_shards}" if self.n_shards else ""
        return (
            f"{self.backend}:{self.layout}{workers}{chunk}{shards} "
            f"(predicted {self.predicted_s * 1e3:.2f} ms, {self.source})"
        )


class CostModel:
    """Per-machine execution cost predictions for the GEE edge pass.

    ``coefficients`` maps ``backend:layout`` to the three-term model fitted
    by the calibration (``fixed + per_edge·E + per_cell·n·K``); ``source``
    records whether they came from a real calibration or the defaults.
    """

    def __init__(
        self,
        coefficients: Dict[str, Dict[str, float]],
        *,
        parallel_workers: int = 0,
        source: str = "default",
    ) -> None:
        self.coefficients = dict(coefficients)
        #: Worker count the ``parallel:sorted`` coefficients were measured
        #: at (0 = parallel was not calibrated on this machine).
        self.parallel_workers = int(parallel_workers)
        self.source = source

    @classmethod
    def from_calibration(cls, data: Dict, *, source: str = "calibrated") -> "CostModel":
        return cls(
            data["coefficients"],
            parallel_workers=int(data.get("parallel_workers") or 0),
            source=source,
        )

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, config: str, n_vertices: int, n_edges: int, n_classes: int) -> float:
        """Predicted seconds for one warm plan-path embed, or ``inf``."""
        coeff = self.coefficients.get(config)
        if coeff is None:
            return float("inf")
        return (
            coeff["fixed_s"]
            + coeff["per_edge_s"] * n_edges
            + coeff["per_cell_s"] * n_vertices * n_classes
        )

    def _candidates(
        self,
        n_edges: int,
        n_workers_available: int,
        chunked: bool,
        fixed_layout: Optional[str],
    ) -> Tuple[str, ...]:
        names = []
        for config in self.coefficients:
            backend, _, layout = config.partition(":")
            if fixed_layout is not None and layout != fixed_layout:
                continue
            if chunked and config not in _CHUNK_CAPABLE:
                continue
            if backend == "python" and n_edges > _PYTHON_MAX_EDGES:
                continue
            if backend == "parallel":
                if chunked or n_workers_available < 2 or self.parallel_workers < 2:
                    continue
            if backend == "sharded" and chunked:
                # The sharded backend rejects pre-chunked plans; its own
                # out-of-core path goes through ShardedGraph explicitly.
                continue
            if backend == "native" and not _native_candidate_ok():
                # The JIT tier registers conditionally; a model carrying
                # native coefficients (defaults, or a calibration from a
                # numba-equipped twin) must never choose a backend this
                # process cannot construct.
                continue
            names.append(config)
        return tuple(names)

    def choose(
        self,
        n_vertices: int,
        n_edges: int,
        n_classes: int,
        *,
        weighted: bool = False,
        n_workers_available: Optional[int] = None,
        chunked: bool = False,
        chunk_edges: Optional[int] = None,
        fixed_layout: Optional[str] = None,
    ) -> ExecutionChoice:
        """The predicted-fastest execution strategy for one graph.

        ``n_workers_available`` caps the parallel candidate (default: the
        machine's CPU count); ``chunked`` restricts to configurations that
        can stream an out-of-core source (``chunk_edges`` is then carried
        through to the choice); ``fixed_layout`` pins the layout and lets
        the model pick only among backends that execute it — used when the
        caller cannot (standalone chunked sources) or must not (an
        explicitly-requested layout) re-compile the plan.  All candidates
        compute the identical embedding (``weighted`` is accepted for
        signature stability — every candidate supports weights), so the
        choice is purely a performance call and a wrong prediction costs
        speed, never correctness.
        """
        # Reserved: every current candidate supports weights and their
        # costs don't depend on weightedness, so the argument is accepted
        # (per the stable signature) but not yet consulted.
        del weighted
        n, e, k = int(n_vertices), int(n_edges), int(n_classes)
        workers = (
            os.cpu_count() or 1
            if n_workers_available is None
            else int(n_workers_available)
        )
        predictions: Dict[str, float] = {}
        shard_counts: Dict[str, int] = {}
        for config in self._candidates(e, workers, chunked, fixed_layout):
            if config.startswith("sharded:"):
                predictions[config], shard_counts[config] = self._shard_cost(
                    config, n, e, k, workers
                )
                continue
            cost = self.predict(config, n, e, k)
            if config.startswith("parallel:") and workers < self.parallel_workers:
                # The parallel coefficients were measured at the full
                # calibrated worker count; with fewer workers each one owns
                # proportionally more rows, so scale the variable part
                # linearly (conservative — bandwidth saturation means the
                # true penalty is usually smaller, so this never makes a
                # capped parallel run look faster than it is).
                coeff = self.coefficients[config]
                variable = cost - coeff["fixed_s"]
                cost = coeff["fixed_s"] + variable * (self.parallel_workers / workers)
            predictions[config] = cost
        if not predictions:  # pragma: no cover - defensive (coeffs always present)
            fallback = f"vectorized:{fixed_layout or 'none'}"
            predictions = {fallback: self.predict(fallback, n, e, k)}
        best = min(predictions, key=predictions.get)
        backend, _, layout = best.partition(":")
        n_workers: Optional[int] = None
        n_shards: Optional[int] = None
        if backend == "parallel":
            n_workers = min(workers, self.parallel_workers)
        elif backend == "sharded":
            n_shards = shard_counts.get(best, 1)
            n_workers = min(workers, n_shards) if min(workers, n_shards) > 1 else None
        elif backend == "native":
            # The prange kernel sizes its own thread pool; pass the cap
            # only when there is actual parallelism to use.
            n_workers = workers if workers > 1 else None
        return ExecutionChoice(
            backend=backend,
            layout=layout,
            n_workers=n_workers,
            chunk_edges=chunk_edges,
            n_shards=n_shards,
            predicted_s=predictions[best],
            source=self.source,
            predictions=predictions,
        )

    def _shard_cost(
        self, config: str, n: int, e: int, k: int, workers: int
    ) -> Tuple[float, int]:
        """Best predicted cost and shard count for the sharded engine.

        The shard-count axis: ``fixed_s`` is paid once per shard,
        the edge pass splits across ``min(s, workers)`` workers, and the
        output term grows with the tree-reduction depth (``ceil(log2 s)``
        pairwise combines over full-shape partials).  Shard counts are
        swept over powers of two up to the worker count — beyond that,
        extra shards only add dispatch and reduction cost.
        """
        coeff = self.coefficients[config]
        best_s, best_cost = 1, float("inf")
        s = 1
        while s <= max(1, workers):
            levels = (s - 1).bit_length()  # == ceil(log2(s)) for s >= 1
            cost = (
                coeff["fixed_s"] * s
                + coeff["per_edge_s"] * e / min(s, max(1, workers))
                + coeff["per_cell_s"] * n * k * (1 + levels)
            )
            if cost < best_cost:
                best_s, best_cost = s, cost
            s *= 2
        return best_cost, best_s

    def choose_layout(
        self, n_vertices: int, n_edges: int, n_classes: int, *, chunked: bool = False
    ) -> str:
        """The best *layout* for the single-core vectorized kernel.

        What ``graph.plan(K, layout="auto")`` resolves through: the layout
        decision alone, independent of the backend choice (chunked plans
        only support ``"none"``/``"sorted"``).
        """
        layouts = ("none", "sorted") if chunked else ("none", "sorted", "blocked")
        best, best_cost = "none", float("inf")
        for layout in layouts:
            cost = self.predict(f"vectorized:{layout}", n_vertices, n_edges, n_classes)
            if cost < best_cost:
                best, best_cost = layout, cost
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostModel(source={self.source!r}, "
            f"configs={sorted(self.coefficients)})"
        )


# --------------------------------------------------------------------------- #
# Process-wide model (loaded once, warn-once fallback)
# --------------------------------------------------------------------------- #
_MODEL: Optional[CostModel] = None
_WARNED = False


def _fallback(reason: str) -> CostModel:
    global _WARNED
    if not _WARNED:
        _WARNED = True
        warnings.warn(
            f"repro.tune: {reason}; using built-in default cost coefficients. "
            "Run `python -m repro.tune` once to calibrate this machine "
            f"(cache: {tune_cache_path()}).",
            RuntimeWarning,
            stacklevel=3,
        )
    return CostModel.from_calibration(DEFAULT_CALIBRATION, source="default")


def get_cost_model(*, refresh: bool = False) -> CostModel:
    """The process-wide :class:`CostModel` (calibration cache or defaults).

    Loaded once and memoised; ``refresh=True`` re-reads the cache (after
    running a calibration in-process, for instance).  Absent or stale
    caches fall back to :data:`DEFAULT_CALIBRATION` with a single
    :class:`RuntimeWarning` — never an error.
    """
    global _MODEL
    if _MODEL is not None and not refresh:
        return _MODEL
    data = load_calibration()
    if data is None:
        _MODEL = _fallback(f"no calibration cache at {tune_cache_path()}")
        return _MODEL
    reason = calibration_staleness(data)
    if reason is not None:
        _MODEL = _fallback(f"calibration cache is stale ({reason})")
        return _MODEL
    _MODEL = CostModel.from_calibration(data)
    return _MODEL


def reset_cost_model(*, rearm_warning: bool = False) -> None:
    """Drop the memoised model so the next access re-reads the cache.

    The once-per-process fallback warning stays latched by default — a
    model *reload* (calibrating in-process, a test fixture swapping
    ``REPRO_TUNE_DIR``) must not make the "one-time" warning fire again.
    Pass ``rearm_warning=True`` to reset the latch too (tests that assert
    on the warning itself).
    """
    global _MODEL, _WARNED
    _MODEL = None
    if rearm_warning:
        _WARNED = False


def auto_layout(
    n_vertices: int, n_edges: int, n_classes: int, *, chunked: bool = False
) -> str:
    """Resolve ``layout="auto"`` for one ``(n, E, K)`` through the model."""
    return get_cost_model().choose_layout(
        n_vertices, n_edges, n_classes, chunked=chunked
    )
