"""repro.tune — the adaptive execution layer.

Two halves:

* **calibration** (:mod:`repro.tune.calibration`) — a one-time per-machine
  micro-benchmark of the actual plan-path kernels, fitted to a three-term
  cost model and persisted to ``~/.cache/repro/tune.json``
  (``REPRO_TUNE_DIR`` overrides; ``python -m repro.tune`` runs it);
* **the cost model** (:mod:`repro.tune.cost_model`) —
  :meth:`CostModel.choose` turns ``(n, E, K, workers)`` into a concrete
  :class:`ExecutionChoice` (backend, layout, workers, chunking), which the
  registered ``"auto"`` backend executes and logs on the result.

Missing or stale calibration degrades to built-in default coefficients with
a one-time warning — ``backend="auto"`` always runs.
"""

from .calibration import (
    SCHEMA_VERSION,
    calibrate,
    calibration_staleness,
    load_calibration,
    save_calibration,
    tune_cache_path,
)
from .cost_model import (
    DEFAULT_CALIBRATION,
    CostModel,
    ExecutionChoice,
    auto_layout,
    get_cost_model,
    reset_cost_model,
)

__all__ = [
    "SCHEMA_VERSION",
    "CostModel",
    "ExecutionChoice",
    "DEFAULT_CALIBRATION",
    "auto_layout",
    "calibrate",
    "calibration_staleness",
    "get_cost_model",
    "load_calibration",
    "save_calibration",
    "reset_cost_model",
    "tune_cache_path",
]
