"""One-time per-machine micro-calibration of the execution cost model.

The adaptive engine (``backend="auto"``, ``layout="auto"``) needs to know
what *this* machine pays for the competing execution strategies: the random
scatter of the arrival-order kernel, the near-sequential segment-sum scatter
of the sorted/blocked layouts, the scipy CSR matmul, the interpreted loop,
and the fork-pool dispatch.  Rather than measuring abstract primitives and
hoping they compose, :func:`calibrate` times the **actual plan-path
kernels** on small synthetic Erdős–Rényi graphs at three ``(n, E)`` design
points and fits, per ``backend:layout`` configuration, the three-term
model::

    cost(n, E, K) = fixed + per_edge · E + per_cell · n·K

(``fixed`` captures NumPy call overhead, ``per_edge`` the O(E) gather +
scatter stream, ``per_cell`` the O(nK) output traffic).  The fit is a
non-negative least squares over the design points, so predictions
extrapolate sanely to benchmark-scale graphs.

The result persists to ``~/.cache/repro/tune.json`` (override the directory
with ``REPRO_TUNE_DIR``, or relocate the whole cache tree with
``XDG_CACHE_HOME``) and is loaded once per process by
:func:`repro.tune.get_cost_model`.  A missing or stale cache degrades to
built-in default coefficients with a warning — never an error.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "calibrate",
    "calibration_staleness",
    "load_calibration",
    "save_calibration",
    "tune_cache_path",
]

#: Bumped whenever the coefficient model or the measured configuration set
#: changes shape; caches written under another schema are stale.
SCHEMA_VERSION = 1

#: Embedding dimensionality used for the calibration runs (coefficients are
#: per *cell*, so the fit transfers to other K).
K_CAL = 16

#: ``(n_vertices, n_edges)`` design points.  Chosen so the three model terms
#: are separately identifiable (A→B varies E at fixed n·K, B→C varies n·K at
#: fixed E) *and* so the grid reaches benchmark scale (D anchors the fit
#: where the layout rankings actually matter — rankings measured only on
#: cache-resident toys do not extrapolate).  A full calibration stays a few
#: seconds.
DESIGN_POINTS: Tuple[Tuple[int, int], ...] = (
    (1 << 11, 1 << 13),
    (1 << 11, 1 << 17),
    (1 << 16, 1 << 17),
    (1 << 16, 1 << 20),
)

#: The ``backend:layout`` configurations the model can choose between.
#: ``python`` is measured on the smallest design point only (its per-edge
#: cost is hundreds of ns; one point pins it).  ``parallel:sorted`` is
#: measured only when more than one CPU is available.
SERIAL_CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("vectorized", "none"),
    ("vectorized", "sorted"),
    ("vectorized", "blocked"),
    ("sparse", "none"),
)


def tune_cache_path() -> Path:
    """Where the calibration artifact lives on this machine.

    ``REPRO_TUNE_DIR`` overrides the directory outright; otherwise
    ``$XDG_CACHE_HOME/repro`` (defaulting to ``~/.cache/repro``).
    """
    override = os.environ.get("REPRO_TUNE_DIR")
    if override:
        return Path(override) / "tune.json"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "tune.json"


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _design_graphs():
    """The calibration graphs (built once per calibrate() call)."""
    from ..graph.facade import Graph
    from ..graph.generators import erdos_renyi

    rng = np.random.default_rng(0)
    cases = []
    for n, e in DESIGN_POINTS:
        edges = erdos_renyi(n, e, seed=7)
        labels = rng.integers(0, K_CAL, size=n).astype(np.int64)
        cases.append((Graph.coerce(edges), labels))
    return cases


def _fit_coefficients(samples: List[Tuple[int, int, float]]) -> Dict[str, float]:
    """Fit ``fixed + a·E + b·nK`` to samples, minimising *relative* error.

    An absolute least-squares fit is dominated by the largest design point
    (its residual is thousands of times the smallest point's), which wrecks
    the ranking accuracy on small graphs; dividing each equation by its
    measured time makes every scale count equally, so the model's
    predictions are proportionally trustworthy from toy graphs to the
    benchmark anchor.  Coefficients are clipped non-negative.
    """
    A = np.array([[1.0, e, n * K_CAL] for n, e, _ in samples], dtype=np.float64)
    t = np.array([s for _, _, s in samples], dtype=np.float64)
    scale = np.maximum(t, 1e-12)
    coeffs, *_ = np.linalg.lstsq(A / scale[:, None], t / scale, rcond=None)
    fixed, per_edge, per_cell = np.maximum(coeffs, 0.0)
    return {
        "fixed_s": float(fixed),
        "per_edge_s": float(per_edge),
        "per_cell_s": float(per_cell),
    }


def calibrate(
    *, repeats: int = 3, include_parallel: Optional[bool] = None
) -> Dict:
    """Measure this machine and return the calibration payload.

    Times each ``backend:layout`` configuration's warm plan path on the
    design graphs and fits per-configuration coefficients; additionally
    measures the fork-pool dispatch overhead when more than one CPU is
    available (``include_parallel`` forces either way).  Pure measurement —
    call :func:`save_calibration` to persist.
    """
    from ..backends import get_backend

    if include_parallel is None:
        include_parallel = (os.cpu_count() or 1) > 1

    cases = _design_graphs()
    coefficients: Dict[str, Dict[str, float]] = {}

    for backend_name, layout in SERIAL_CONFIGS:
        backend = get_backend(backend_name)
        samples = []
        for graph, labels in cases:
            plan = graph.plan(
                K_CAL, layout=None if layout == "none" else layout
            )
            backend.embed_with_plan(plan, labels)  # warm: compile + caches
            best = _best_seconds(
                lambda b=backend, p=plan, y=labels: b.embed_with_plan(p, y), repeats
            )
            samples.append((graph.n_vertices, graph.n_edges, best))
        coefficients[f"{backend_name}:{layout}"] = _fit_coefficients(samples)

    # The sharded path, measured at one shard: with s=1 the shard cost
    # formula collapses to exactly ``fixed + per_edge·E + per_cell·nK``
    # (no reduction levels), so this fit anchors the model and
    # ``CostModel._shard_cost`` extrapolates the per-shard fixed cost and
    # the tree-reduction term to higher shard counts.
    samples = []
    for graph, labels in cases:
        sharded = graph.shard(1)
        sharded.embed(labels, K_CAL)  # warm: sort + slice + per-shard plan
        best = _best_seconds(
            lambda sg=sharded, y=labels: sg.embed(y, K_CAL), repeats
        )
        samples.append((graph.n_vertices, graph.n_edges, best))
    coefficients["sharded:sorted"] = _fit_coefficients(samples)

    # The native JIT tier, where importable: both fused layouts through the
    # real backend (compile cost is warmed away; the fit sees only the
    # steady-state kernel).  Absent numba the rows are simply not recorded,
    # and the payload's "native" flag makes the cache stale if the tier
    # later appears (or disappears) on this machine.
    from ..native.availability import native_available, numba_version

    if native_available():
        backend = get_backend("native")
        for layout in ("sorted", "blocked"):
            samples = []
            for graph, labels in cases:
                plan = graph.plan(K_CAL, layout=layout)
                backend.embed_with_plan(plan, labels)  # warm: JIT + caches
                best = _best_seconds(
                    lambda b=backend, p=plan, y=labels: b.embed_with_plan(p, y),
                    repeats,
                )
                samples.append((graph.n_vertices, graph.n_edges, best))
            coefficients[f"native:{layout}"] = _fit_coefficients(samples)

    # The interpreted loop: one point pins its (huge) per-edge cost.
    graph, labels = cases[0]
    backend = get_backend("python")
    plan = graph.plan(K_CAL)
    backend.embed_with_plan(plan, labels)
    best = _best_seconds(lambda: backend.embed_with_plan(plan, labels), max(1, repeats - 2))
    coefficients["python:none"] = {
        "fixed_s": 0.0,
        "per_edge_s": float(best / graph.n_edges),
        "per_cell_s": 0.0,
    }

    parallel_workers = 0
    if include_parallel:
        from ..parallel.pool import fork_available

        if fork_available():
            workers = os.cpu_count() or 1
            backend = get_backend("parallel", n_workers=workers)
            samples = []
            for graph, labels in cases:
                plan = graph.plan(K_CAL, layout="sorted")
                backend.embed_with_plan(plan, labels)
                best = _best_seconds(
                    lambda b=backend, p=plan, y=labels: b.embed_with_plan(p, y),
                    repeats,
                )
                samples.append((graph.n_vertices, graph.n_edges, best))
            coefficients["parallel:sorted"] = _fit_coefficients(samples)
            parallel_workers = workers

    return {
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "k_cal": K_CAL,
        "repeats": repeats,
        "parallel_workers": parallel_workers,
        "native": native_available(),
        "numba": numba_version(),
        "coefficients": coefficients,
    }


def save_calibration(data: Dict, path: Optional[Path] = None) -> Path:
    """Persist a calibration payload (default: :func:`tune_cache_path`)."""
    path = tune_cache_path() if path is None else Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return path


def load_calibration(path: Optional[Path] = None) -> Optional[Dict]:
    """Read the calibration payload, or ``None`` when absent/unreadable.

    Unreadable covers missing files and corrupt JSON — the caller treats
    both as "not calibrated", never as an error.
    """
    path = tune_cache_path() if path is None else Path(path)
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def calibration_staleness(data: Dict) -> Optional[str]:
    """Why a loaded calibration payload cannot be trusted, or ``None``.

    Stale when the schema moved on (the coefficient model changed shape) or
    the CPU count differs from measurement time (the parallel coefficients
    and the layout trade-offs are core-count dependent).
    """
    if data.get("schema") != SCHEMA_VERSION:
        return (
            f"schema {data.get('schema')!r} != current {SCHEMA_VERSION} "
            "(the cost-model shape changed)"
        )
    if data.get("cpu_count") != os.cpu_count():
        return (
            f"calibrated on {data.get('cpu_count')} CPUs, running on "
            f"{os.cpu_count()}"
        )
    from ..native.availability import native_available

    if bool(data.get("native")) != native_available():
        # Installing (or disabling) numba changes the candidate set and its
        # measured rankings; remeasure rather than trust half a picture.
        was = "with" if data.get("native") else "without"
        now = "with" if native_available() else "without"
        return f"calibrated {was} the native tier, running {now} it"
    if not isinstance(data.get("coefficients"), dict) or not data["coefficients"]:
        return "no coefficients recorded"
    return None
