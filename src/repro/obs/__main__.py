"""CLI: ``python -m repro.obs summarize <trace.json>`` and ``... drift``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .drift import drift_report, format_drift_report
from .export import format_summary


def _records_from_trace(path: str) -> List[tuple]:
    """Re-read a trace-event JSON file into span-record tuples."""
    with open(path) as fh:
        payload = json.load(fh)
    events = payload.get("traceEvents", payload if isinstance(payload, list) else [])
    records = []
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") not in ("X", "i"):
            continue
        records.append(
            (
                ev["ph"],
                ev.get("name", "?"),
                ev.get("ts", 0) / 1e6,
                ev.get("dur", 0) / 1e6,
                ev.get("pid", 0),
                ev.get("tid", 0),
                ev.get("args"),
            )
        )
    return records


def _cmd_summarize(args: argparse.Namespace) -> int:
    records = _records_from_trace(args.trace)
    print(f"{args.trace}: {len(records)} events")
    print(format_summary(records, top=args.top))
    with open(args.trace) as fh:
        other = json.load(fh).get("otherData") or {}
    counters = other.get("counters") or {}
    if counters:
        print()
        print("counters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]:g}")
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    report = drift_report(
        threshold=args.threshold,
        probe=not args.no_probe,
        repeats=args.repeats,
        path=args.log,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_drift_report(report))
    return 1 if (args.check and report["recalibrate"]) else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro telemetry: trace summaries and cost-model drift.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize", help="aggregate a trace-event JSON file into a text table"
    )
    p_sum.add_argument("trace", help="path to a trace written via REPRO_TRACE/stop_trace")
    p_sum.add_argument("--top", type=int, default=None, help="show only the top N spans")
    p_sum.set_defaults(func=_cmd_summarize)

    p_drift = sub.add_parser(
        "drift",
        help="compare cost-model predictions against recorded/probed reality",
    )
    p_drift.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="ratio beyond which recalibration is recommended (default 2.0)",
    )
    p_drift.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the live probe; judge only the recorded auto runs",
    )
    p_drift.add_argument(
        "--repeats", type=int, default=3, help="probe repeats per candidate"
    )
    p_drift.add_argument("--log", default=None, help="drift log path override")
    p_drift.add_argument("--json", action="store_true", help="emit the report as JSON")
    p_drift.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when drift beyond the threshold is detected",
    )
    p_drift.set_defaults(func=_cmd_drift)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
