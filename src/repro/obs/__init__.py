"""``repro.obs`` — zero-overhead tracing, metrics and drift detection.

Quickstart::

    import repro.obs as obs

    obs.start_trace("trace.json")     # or: REPRO_TRACE=trace.json python ...
    result = graph.embed(labels, n_classes=50, backend="auto")
    print(obs.format_summary())       # text table of spans by inclusive time
    obs.stop_trace()                  # writes Perfetto-compatible JSON

Everything is off by default: until :func:`enable` / :func:`start_trace`
(or ``REPRO_TRACE``) flips the module flag, each instrumentation site
costs one boolean check and allocates nothing.  See
``docs/observability.md`` for span naming conventions, exporter formats
and the drift-report workflow, and ``python -m repro.obs --help`` for the
``summarize`` / ``drift`` CLI.
"""

from __future__ import annotations

from .core import (
    CLOCK,
    MAX_SPANS,
    Span,
    clear,
    disable,
    dropped,
    enable,
    enabled,
    mark,
    record_event,
    record_span,
    records_since,
    snapshot,
    trace,
    traced,
)
from .drift import (
    drift_log_path,
    drift_report,
    flush_drift_records,
    format_drift_report,
    load_drift_records,
    record_auto_run,
)
from .export import (
    aggregate,
    format_summary,
    start_trace,
    stop_trace,
    telemetry,
    to_trace_events,
    write_trace,
)
from .export import _env_trace_path
from . import metrics

__all__ = [
    "CLOCK",
    "MAX_SPANS",
    "Span",
    "trace",
    "traced",
    "enable",
    "disable",
    "enabled",
    "record_event",
    "record_span",
    "mark",
    "records_since",
    "snapshot",
    "clear",
    "dropped",
    "metrics",
    "start_trace",
    "stop_trace",
    "to_trace_events",
    "write_trace",
    "aggregate",
    "format_summary",
    "telemetry",
    "record_auto_run",
    "flush_drift_records",
    "load_drift_records",
    "drift_log_path",
    "drift_report",
    "format_drift_report",
]

# REPRO_TRACE=path arms tracing for the whole process at import time.
_env_path = _env_trace_path()
if _env_path is not None:  # pragma: no cover - exercised via subprocess tests
    start_trace(_env_path)
del _env_path
