"""The span-tracing substrate behind :mod:`repro.obs`.

Design constraints, in priority order:

1. **The disabled path is a no-op fast path.**  Every instrumentation site
   calls :func:`trace` (or checks :data:`_ENABLED` directly); when tracing
   is off that is one module-global read followed by returning a shared
   singleton — no allocation, no string formatting, no clock read.  The
   overhead gate (``benchmarks/bench_obs_overhead.py``) holds the
   instrumented plan path within 2% of the bare kernel with tracing off.
2. **One clock, one code path.**  :data:`CLOCK` is ``time.perf_counter``
   (monotonic, shared across ``fork`` on Linux, so parent and worker
   timestamps land on one timeline); :class:`Span` is the only thing that
   reads it, and :class:`repro.eval.timing.Timer` rides the same class.
3. **Bounded memory.**  Completed spans append to a per-process ring
   buffer capped at :data:`MAX_SPANS`; overflow drops the newest records
   and counts them (:func:`dropped`) instead of growing without bound.

Span records are plain tuples ``(kind, name, t0, dur, pid, tid, attrs)``
with ``kind`` ``"X"`` (complete span) or ``"i"`` (instant event) — the
same vocabulary as the Chrome trace-event format the exporter emits —
so they pickle cheaply through the worker result queues.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "CLOCK",
    "MAX_SPANS",
    "Span",
    "trace",
    "traced",
    "enable",
    "disable",
    "enabled",
    "record_span",
    "record_event",
    "mark",
    "records_since",
    "snapshot",
    "drain_for_ship",
    "absorb",
    "clear",
    "dropped",
]

#: The one clock every span and every :class:`repro.eval.timing.Timer`
#: measurement reads.  ``perf_counter`` is CLOCK_MONOTONIC on Linux, which
#: survives ``fork`` with the same epoch — cross-process spans merge onto
#: one timeline without offset arithmetic.
CLOCK = time.perf_counter

#: Ring-buffer capacity (completed records per process).  Beyond this,
#: new records are dropped and counted rather than grown without bound.
MAX_SPANS = 1 << 16

#: The module-level tracing flag — the single check every span pays when
#: tracing is disabled.  Toggled only by :func:`enable` / :func:`disable`
#: (and per-task inside pooled workers); read directly (``core._ENABLED``)
#: by the hottest instrumentation sites.
_ENABLED = False

_BUFFER: List[tuple] = []
_DROPPED = 0
#: Guards structural buffer operations (drain/absorb/clear); plain appends
#: are GIL-atomic and stay lock-free.
_LOCK = threading.Lock()


def enabled() -> bool:
    """Whether span recording is currently on."""
    return _ENABLED


def enable() -> None:
    """Turn span and metric recording on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn span and metric recording off (records are kept, not cleared)."""
    global _ENABLED
    _ENABLED = False


def record_span(
    name: str,
    t0: float,
    dur: float,
    attrs: Optional[Dict[str, Any]] = None,
) -> None:
    """Append one completed span record (caller already checked the flag)."""
    global _DROPPED
    if len(_BUFFER) >= MAX_SPANS:
        _DROPPED += 1
        return
    _BUFFER.append(("X", name, t0, dur, os.getpid(), threading.get_ident(), attrs))


def record_event(name: str, **attrs: Any) -> None:
    """Record an instant event (e.g. a refresh decision, a task failure).

    No-op while tracing is disabled.
    """
    global _DROPPED
    if not _ENABLED:
        return
    if len(_BUFFER) >= MAX_SPANS:
        _DROPPED += 1
        return
    _BUFFER.append(
        ("i", name, CLOCK(), 0.0, os.getpid(), threading.get_ident(), attrs or None)
    )


class Span:
    """An always-measuring timed region.

    ``Span`` reads the clock unconditionally and *records* into the ring
    buffer only when tracing is enabled at :meth:`finish` time — this is
    the shared code path between :func:`trace` (which never constructs a
    ``Span`` while disabled) and :class:`repro.eval.timing.Timer` (which
    always needs the duration).  Usable as a context manager or via the
    explicit :meth:`begin` / :meth:`finish` pair.
    """

    __slots__ = ("name", "attrs", "t0", "duration")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0
        self.duration = 0.0

    def begin(self) -> "Span":
        self.t0 = CLOCK()
        return self

    def finish(self, error: Optional[str] = None) -> float:
        """Stop the clock; record if tracing is enabled.  Returns the duration."""
        self.duration = CLOCK() - self.t0
        if _ENABLED:
            attrs = self.attrs
            if error is not None:
                attrs = dict(attrs) if attrs else {}
                attrs["error"] = error
            record_span(self.name, self.t0, self.duration, attrs)
        return self.duration

    def annotate(self, **attrs: Any) -> "Span":
        """Attach/override attributes before the span completes."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish(error=None if exc_type is None else exc_type.__name__)
        return False


class _NoopSpan:
    """The shared do-nothing span returned by :func:`trace` while disabled.

    A single module-level instance: entering/exiting it allocates nothing
    and formats nothing.
    """

    __slots__ = ()

    def begin(self) -> "_NoopSpan":
        return self

    def finish(self, error: Optional[str] = None) -> float:
        return 0.0

    def annotate(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


def trace(name: str, **attrs: Any):
    """A span context manager over a named region (the public entry point).

    >>> with trace("plan.compile", K=50, layout="sorted"):
    ...     compile_the_plan()                            # doctest: +SKIP

    While tracing is disabled this returns a shared no-op span after one
    module-flag check — no allocation and no string formatting happen at
    the call site beyond evaluating the (already-cheap) arguments.
    """
    if not _ENABLED:
        return _NOOP
    return Span(name, attrs or None)


def traced(name: Optional[Callable] = None, **static_attrs: Any):
    """Decorator form of :func:`trace`.

    Use bare (``@traced`` — span named after the function) or configured
    (``@traced("embed.python", backend="python")``).  The wrapper checks
    the module flag first, so decorated functions pay one boolean test
    per call while tracing is off.
    """

    def wrap(fn: Callable, label: str) -> Callable:
        attrs = static_attrs or None

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _ENABLED:
                return fn(*args, **kwargs)
            with Span(label, dict(attrs) if attrs else None):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name):  # @traced with no arguments
        return wrap(name, name.__qualname__)

    def decorator(fn: Callable) -> Callable:
        return wrap(fn, name or fn.__qualname__)

    return decorator


# --------------------------------------------------------------------------- #
# Buffer access and cross-process merge
# --------------------------------------------------------------------------- #
def mark() -> int:
    """Current buffer position — pair with :func:`records_since`."""
    return len(_BUFFER)

def records_since(position: int) -> List[tuple]:
    """Records appended since :func:`mark` returned ``position``."""
    return _BUFFER[position:]


def snapshot() -> List[tuple]:
    """A copy of every record collected so far (merged timeline order
    is by start time; workers' records land where :func:`absorb` put them)."""
    return list(_BUFFER)


def dropped() -> int:
    """Records discarded because the ring buffer was full."""
    return _DROPPED


def clear() -> None:
    """Empty the buffer and reset the dropped counter."""
    global _DROPPED
    with _LOCK:
        _BUFFER.clear()
        _DROPPED = 0


def drain_for_ship() -> Optional[Tuple[List[tuple], Dict[str, float]]]:
    """Drain this process's records + counters for shipping to a parent.

    Called by pooled/forked workers after each task; returns ``None`` when
    there is nothing to ship (so the result-queue payload stays tiny).
    """
    from . import metrics

    with _LOCK:
        spans = list(_BUFFER)
        _BUFFER.clear()
    counters = metrics.drain_counters()
    if not spans and not counters:
        return None
    return spans, counters


def absorb(payload: Optional[Tuple[List[tuple], Dict[str, float]]]) -> None:
    """Merge a worker's shipped records into this process's buffer.

    Records keep the worker's pid/tid, so the exported timeline shows each
    worker as its own track; the shared monotonic clock (see :data:`CLOCK`)
    keeps their timestamps directly comparable with the parent's.
    """
    global _DROPPED
    if not payload:
        return
    spans, counters = payload
    with _LOCK:
        room = MAX_SPANS - len(_BUFFER)
        if room < len(spans):
            _DROPPED += len(spans) - max(0, room)
            spans = spans[: max(0, room)]
        _BUFFER.extend(spans)
    if counters:
        from . import metrics

        metrics.merge_counters(counters)
