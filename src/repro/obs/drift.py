"""Cost-model drift detection for ``backend="auto"``.

Every auto-backend embed records what the calibrated
:class:`~repro.tune.CostModel` *predicted* for the chosen
:class:`~repro.tune.ExecutionChoice` and what the run actually *took*
(:func:`record_auto_run`, called by the auto backend; in-memory, flushed
to a JSONL log next to the tune cache at interpreter exit).  The drift
report (``python -m repro.obs drift``) then answers "is the calibration
still right for this machine?" two ways:

* **passively** — the recorded predicted-vs-observed ratios of the
  configurations auto actually executed;
* **actively** (the default) — a quick probe that re-measures the main
  candidate families (vectorized ``none``/``sorted``, ``parallel:sorted``,
  ``sharded:sorted``) on a small synthetic graph shaped like the most
  recent recorded run, and compares each against the model's prediction
  for that same shape.  This yields a ratio for every candidate even
  though a single auto run only ever observes the one it chose.

A ratio outside ``[1/threshold, threshold]`` (default 2x) for any
calibrated candidate means recalibration (``python -m repro.tune``) is
warranted, and the report says so.
"""

from __future__ import annotations

import atexit
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "record_auto_run",
    "flush_drift_records",
    "drift_log_path",
    "load_drift_records",
    "passive_summary",
    "probe_candidates",
    "drift_report",
    "format_drift_report",
]

#: In-memory records awaiting flush (bounded; oldest dropped beyond this).
_PENDING: List[Dict] = []
_MAX_PENDING = 4096
#: Lines kept in the on-disk JSONL log (oldest trimmed beyond this).
_MAX_LOG_LINES = 1024
_ATEXIT_ARMED = False

#: Probe-shape caps: the drift probe is a health check, not a benchmark —
#: clamp the recorded shape so the probe stays sub-second.
_PROBE_MAX_N = 1 << 14
_PROBE_MAX_E = 1 << 17
_PROBE_MAX_K = 50
_PROBE_DEFAULT = (1 << 13, 1 << 16, 16)


def drift_log_path() -> Path:
    """Where auto-run drift records persist (next to the tune cache)."""
    from ..tune.calibration import tune_cache_path

    return tune_cache_path().parent / "drift.jsonl"


def record_auto_run(choice, observed_s: Optional[float], n: int, e: int, k: int) -> None:
    """Record one auto-backend run's predicted-vs-observed cost.

    Called by :class:`~repro.backends.auto.AutoGEEBackend` after every
    delegated embed.  Cheap by design (a dict append); persistence happens
    once at interpreter exit.  ``observed_s`` may be ``None`` when the
    delegate reported no total timing — the record is then skipped.
    """
    global _ATEXIT_ARMED
    if observed_s is None or not observed_s > 0:
        return
    _PENDING.append(
        {
            "n": int(n),
            "E": int(e),
            "K": int(k),
            "config": choice.config,
            "n_workers": choice.n_workers,
            "n_shards": choice.n_shards,
            "predicted_s": float(choice.predicted_s),
            "observed_s": float(observed_s),
            "source": choice.source,
            "predictions": {c: float(p) for c, p in choice.predictions.items()},
        }
    )
    if len(_PENDING) > _MAX_PENDING:
        del _PENDING[: len(_PENDING) - _MAX_PENDING]
    if not _ATEXIT_ARMED:
        _ATEXIT_ARMED = True
        atexit.register(flush_drift_records)


def flush_drift_records(path: Optional[Union[str, Path]] = None) -> Optional[Path]:
    """Append pending records to the JSONL log (trimming it to a cap).

    Returns the log path, or ``None`` when there was nothing to flush or
    the log directory is unwritable (drift recording must never turn an
    embed into an I/O error).
    """
    if not _PENDING:
        return None
    path = drift_log_path() if path is None else Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        lines: List[str] = []
        if path.exists():
            lines = path.read_text().splitlines()
        lines.extend(json.dumps(r, sort_keys=True) for r in _PENDING)
        if len(lines) > _MAX_LOG_LINES:
            lines = lines[-_MAX_LOG_LINES:]
        path.write_text("\n".join(lines) + "\n")
    except OSError:  # pragma: no cover - unwritable cache dir
        return None
    _PENDING.clear()
    return path


def load_drift_records(path: Optional[Union[str, Path]] = None) -> List[Dict]:
    """Recorded auto runs: the on-disk log plus any not yet flushed."""
    path = drift_log_path() if path is None else Path(path)
    records: List[Dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        pass
    records.extend(_PENDING)
    return records


def passive_summary(records: List[Dict]) -> List[Dict]:
    """Per-config aggregate of the recorded (executed) auto runs."""
    grouped: Dict[str, Dict] = {}
    for r in records:
        config = r.get("config")
        pred, obs = r.get("predicted_s"), r.get("observed_s")
        if not config or not pred or not obs:
            continue
        row = grouped.setdefault(
            config,
            {"config": config, "n_runs": 0, "predicted_s": 0.0, "observed_s": 0.0},
        )
        row["n_runs"] += 1
        row["predicted_s"] += pred
        row["observed_s"] += obs
    out = []
    for row in grouped.values():
        n = row["n_runs"]
        row["predicted_s"] /= n
        row["observed_s"] /= n
        row["ratio"] = row["observed_s"] / row["predicted_s"]
        out.append(row)
    return sorted(out, key=lambda r: r["config"])


def _probe_shape(records: List[Dict]):
    """A representative (n, E, K), clamped so the probe stays sub-second."""
    if records:
        latest = records[-1]
        return (
            min(int(latest.get("n") or _PROBE_DEFAULT[0]), _PROBE_MAX_N),
            min(int(latest.get("E") or _PROBE_DEFAULT[1]), _PROBE_MAX_E),
            min(int(latest.get("K") or _PROBE_DEFAULT[2]), _PROBE_MAX_K),
        )
    return _PROBE_DEFAULT


def _best_seconds(fn, repeats: int) -> float:
    from .core import CLOCK

    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = CLOCK()
        fn()
        best = min(best, CLOCK() - t0)
    return best


def probe_candidates(
    n: int, e: int, k: int, *, repeats: int = 3
) -> List[Dict]:
    """Measure the main candidate families against the model's predictions.

    Returns one row per candidate: ``{config, predicted_s, observed_s,
    ratio, detail}``.  ``parallel:sorted`` is measured at the calibrated
    worker count when available (else every CPU) and skipped on platforms
    without ``fork``; a candidate the model has no coefficients for gets a
    prediction *derived* from the ``vectorized:sorted`` terms (noted in
    ``detail``) so the ratio is still reportable.
    """
    import numpy as np

    from ..backends import get_backend
    from ..graph.facade import Graph
    from ..graph.generators import erdos_renyi
    from ..parallel.pool import fork_available
    from ..tune import get_cost_model

    model = get_cost_model()
    graph = Graph.coerce(erdos_renyi(n, e, seed=7))
    labels = np.random.default_rng(0).integers(0, k, size=n).astype(np.int64)
    n, e = graph.n_vertices, graph.n_edges
    rows: List[Dict] = []

    def measured(config: str, fn, predicted: float, detail: str = "") -> None:
        fn()  # warm: plan compile, caches, pools
        observed = _best_seconds(fn, repeats)
        rows.append(
            {
                "config": config,
                "predicted_s": predicted,
                "observed_s": observed,
                "ratio": observed / predicted if predicted > 0 else float("inf"),
                "detail": detail,
            }
        )

    for layout in ("none", "sorted"):
        config = f"vectorized:{layout}"
        backend = get_backend("vectorized")
        plan = graph.plan(k, layout=None if layout == "none" else layout)
        measured(
            config,
            lambda b=backend, p=plan: b.embed_with_plan(p, labels),
            model.predict(config, n, e, k),
        )

    if fork_available():
        # Probed even on one CPU (workers still fork; the observed cost
        # then simply includes the oversubscription the model predicts
        # badly — which is exactly what the ratio should surface).
        workers = model.parallel_workers or (os.cpu_count() or 1)
        workers = max(1, min(workers, os.cpu_count() or 1))
        config = "parallel:sorted"
        predicted = model.predict(config, n, e, k)
        detail = f"n_workers={workers}"
        if predicted == float("inf"):
            # Not calibrated on this machine: derive a prediction from the
            # serial sorted terms with the edge pass split across workers.
            coeff = model.coefficients["vectorized:sorted"]
            predicted = (
                coeff["fixed_s"]
                + coeff["per_edge_s"] * e / workers
                + coeff["per_cell_s"] * n * k
            )
            detail += ", prediction derived (parallel not calibrated)"
        backend = get_backend("parallel", n_workers=workers)
        plan = graph.plan(k, layout="sorted")
        measured(
            config,
            lambda b=backend, p=plan: b.embed_with_plan(p, labels),
            predicted,
            detail,
        )

    config = "sharded:sorted"
    workers = os.cpu_count() or 1
    predicted, n_shards = model._shard_cost(config, n, e, k, workers)
    sharded = graph.shard(n_shards)
    measured(
        config,
        lambda: sharded.embed(labels, k),
        predicted,
        f"n_shards={n_shards}",
    )

    from ..native.availability import native_available

    if native_available():
        # The JIT tier drifts for its own reasons (a numba upgrade, a
        # thread-pool change), so probe it whenever it is importable.
        config = "native:sorted"
        predicted = model.predict(config, n, e, k)
        detail = ""
        if predicted == float("inf"):
            # Not calibrated with the tier present: derive from the serial
            # sorted terms (the native kernel is at least as fast, so a
            # healthy ratio stays <= 1 and real drift still stands out).
            coeff = model.coefficients["vectorized:sorted"]
            predicted = (
                coeff["fixed_s"] + coeff["per_edge_s"] * e + coeff["per_cell_s"] * n * k
            )
            detail = "prediction derived (native not calibrated)"
        backend = get_backend("native")
        plan = graph.plan(k, layout="sorted")
        measured(
            config,
            lambda b=backend, p=plan: b.embed_with_plan(p, labels),
            predicted,
            detail,
        )
    return rows


def drift_report(
    *,
    threshold: float = 2.0,
    probe: bool = True,
    repeats: int = 3,
    path: Optional[Union[str, Path]] = None,
) -> Dict:
    """The structured drift report (see :func:`format_drift_report`).

    ``recalibrate`` is True when any probed (or, without a probe, any
    recorded) ratio falls outside ``[1/threshold, threshold]``.
    """
    if threshold <= 1:
        raise ValueError("threshold must be > 1")
    records = load_drift_records(path)
    recorded = passive_summary(records)
    probed: List[Dict] = []
    shape = _probe_shape(records)
    if probe:
        probed = probe_candidates(*shape, repeats=repeats)
    judged = probed if probe else recorded
    recalibrate = any(
        not (1.0 / threshold <= row["ratio"] <= threshold) for row in judged
    )
    from ..tune import get_cost_model

    return {
        "source": get_cost_model().source,
        "n_recorded_runs": len(records),
        "recorded": recorded,
        "probe_shape": {"n": shape[0], "E": shape[1], "K": shape[2]},
        "probed": probed,
        "threshold": threshold,
        "recalibrate": recalibrate,
    }


def format_drift_report(report: Dict) -> str:
    """Render :func:`drift_report` as the text the CLI prints."""
    lines = [
        f"cost-model source: {report['source']}"
        f" | recorded auto runs: {report['n_recorded_runs']}"
        f" | drift threshold: {report['threshold']}x"
    ]

    def table(rows: List[Dict], title: str) -> None:
        if not rows:
            return
        lines.append("")
        lines.append(title)
        lines.append(
            f"  {'config':<20} {'predicted_ms':>13} {'observed_ms':>12} "
            f"{'ratio':>7}  note"
        )
        for r in rows:
            note = r.get("detail") or (f"{r['n_runs']} runs" if "n_runs" in r else "")
            lines.append(
                f"  {r['config']:<20} {r['predicted_s'] * 1e3:>13.3f} "
                f"{r['observed_s'] * 1e3:>12.3f} {r['ratio']:>6.2f}x  {note}"
            )

    table(report["recorded"], "recorded (what auto actually executed):")
    shape = report["probe_shape"]
    if report["probed"]:
        table(
            report["probed"],
            f"probe (re-measured at n={shape['n']}, E={shape['E']}, K={shape['K']}):",
        )
    lines.append("")
    if report["recalibrate"]:
        lines.append(
            "DRIFT: predicted vs observed diverges beyond the threshold; "
            "run `python -m repro.tune` to recalibrate this machine."
        )
    else:
        lines.append("calibration looks healthy (all ratios within threshold).")
    return "\n".join(lines)
