"""The metrics registry: counters, gauges and histograms.

Counters accumulate monotonically (``edges_processed``,
``shm.bytes_moved``, ``plan_cache.hits``); gauges track a current level
(``shm.segments_live``); histograms keep count/total/min/max of observed
values (e.g. per-dispatch task counts).  Everything is gated on the same
module flag as span tracing (:data:`repro.obs.core._ENABLED`), so a
disabled session pays one boolean check per call site and records nothing
— collection starts at :func:`repro.obs.enable` time, which is also the
semantics of the gauges (they reflect activity *since* enabling, not
absolute process state).

Worker processes accumulate their own counters; the pool ships them back
with the span payload and :func:`merge_counters` folds them into the
parent's registry, so cross-process totals (bytes through shm, edges
processed per worker) end up in one place.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from . import core

__all__ = [
    "count",
    "gauge_set",
    "gauge_add",
    "observe",
    "counters",
    "gauges",
    "histograms",
    "drain_counters",
    "merge_counters",
    "reset",
]

_COUNTERS: Dict[str, float] = {}
_GAUGES: Dict[str, float] = {}
#: name -> [count, total, min, max]
_HISTS: Dict[str, List[float]] = {}
_LOCK = threading.Lock()


def count(name: str, value: float = 1) -> None:
    """Increment a monotonic counter (no-op while observability is off)."""
    if not core._ENABLED:
        return
    _COUNTERS[name] = _COUNTERS.get(name, 0) + value


def gauge_set(name: str, value: float) -> None:
    """Set a gauge to an absolute level."""
    if not core._ENABLED:
        return
    _GAUGES[name] = value


def gauge_add(name: str, delta: float) -> None:
    """Move a gauge up or down (e.g. live shm segments +1 / -1)."""
    if not core._ENABLED:
        return
    _GAUGES[name] = _GAUGES.get(name, 0) + delta


def observe(name: str, value: float) -> None:
    """Record one observation into a histogram (count/total/min/max)."""
    if not core._ENABLED:
        return
    hist = _HISTS.get(name)
    if hist is None:
        _HISTS[name] = [1, value, value, value]
    else:
        hist[0] += 1
        hist[1] += value
        hist[2] = min(hist[2], value)
        hist[3] = max(hist[3], value)


def counters() -> Dict[str, float]:
    """A copy of the counter table."""
    return dict(_COUNTERS)


def gauges() -> Dict[str, float]:
    """A copy of the gauge table."""
    return dict(_GAUGES)


def histograms() -> Dict[str, Dict[str, float]]:
    """Histograms as ``{name: {count, total, min, max, mean}}``."""
    out = {}
    for name, (n, total, lo, hi) in _HISTS.items():
        out[name] = {
            "count": n,
            "total": total,
            "min": lo,
            "max": hi,
            "mean": total / n if n else float("nan"),
        }
    return out


def drain_counters() -> Dict[str, float]:
    """Return and clear the counter table (worker → parent shipping)."""
    with _LOCK:
        out = dict(_COUNTERS)
        _COUNTERS.clear()
    return out


def merge_counters(shipped: Optional[Dict[str, float]]) -> None:
    """Fold a worker's shipped counters into this process's registry."""
    if not shipped:
        return
    with _LOCK:
        for name, value in shipped.items():
            _COUNTERS[name] = _COUNTERS.get(name, 0) + value


def reset() -> None:
    """Clear every counter, gauge and histogram."""
    with _LOCK:
        _COUNTERS.clear()
        _GAUGES.clear()
        _HISTS.clear()
