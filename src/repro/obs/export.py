"""Exporters: Chrome trace-event JSON, text summaries, telemetry dicts.

Three consumers of the span buffer:

* :func:`write_trace` — a ``chrome://tracing`` / Perfetto-compatible
  trace-event JSON file (``{"traceEvents": [...]}`` with ``ph: "X"``
  complete events, timestamps in microseconds, one ``pid``/``tid`` track
  per process/thread).  ``REPRO_TRACE=path`` (read at ``repro.obs``
  import) or :func:`start_trace` arms it; the file is written at
  interpreter exit or on :func:`stop_trace`.
* :func:`format_summary` — a text table of spans aggregated by name
  (count, inclusive total, mean, max), what the
  ``python -m repro.obs summarize`` CLI prints.
* :func:`telemetry` — the compact dict attached to
  ``EmbeddingResult.telemetry`` and optionally embedded in
  ``BENCH_*.json`` files: the top-N spans by inclusive time plus the
  counter table.
"""

from __future__ import annotations

import atexit
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from . import core, metrics

__all__ = [
    "start_trace",
    "stop_trace",
    "to_trace_events",
    "write_trace",
    "aggregate",
    "format_summary",
    "telemetry",
]

_TRACE_PATH: Optional[Path] = None
_ATEXIT_ARMED = False


def start_trace(path: Optional[Union[str, Path]] = None) -> None:
    """Enable tracing; optionally arm an at-exit trace-file write.

    With ``path`` the collected spans are written there when the process
    exits (or earlier via :func:`stop_trace`) — the programmatic
    equivalent of launching with ``REPRO_TRACE=path``.
    """
    global _TRACE_PATH, _ATEXIT_ARMED
    core.enable()
    if path is not None:
        _TRACE_PATH = Path(path)
        if not _ATEXIT_ARMED:
            _ATEXIT_ARMED = True
            atexit.register(_flush_at_exit)


def stop_trace(path: Optional[Union[str, Path]] = None) -> Optional[Path]:
    """Disable tracing and write the trace file; returns the path written.

    ``path`` overrides the one given to :func:`start_trace` /
    ``REPRO_TRACE``; with neither, nothing is written (``None`` returned).
    The buffer is left intact for further exports.
    """
    global _TRACE_PATH
    core.disable()
    target = Path(path) if path is not None else _TRACE_PATH
    _TRACE_PATH = None
    if target is None:
        return None
    return write_trace(target)


def _flush_at_exit() -> None:  # pragma: no cover - exercised via subprocess
    if _TRACE_PATH is not None and core.snapshot():
        try:
            write_trace(_TRACE_PATH)
        except OSError:
            pass


def to_trace_events(records: Optional[Sequence[tuple]] = None) -> List[Dict]:
    """Convert span records to Chrome trace-event dicts (ts/dur in µs)."""
    events: List[Dict] = []
    for kind, name, t0, dur, pid, tid, attrs in (
        core.snapshot() if records is None else records
    ):
        event: Dict = {
            "name": name,
            "cat": "repro",
            "ph": kind,
            "ts": t0 * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if kind == "X":
            event["dur"] = dur * 1e6
        else:
            event["s"] = "t"  # instant event, thread-scoped
        if attrs:
            event["args"] = {k: _jsonable(v) for k, v in attrs.items()}
        events.append(event)
    return events


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_trace(
    path: Union[str, Path], records: Optional[Sequence[tuple]] = None
) -> Path:
    """Write the trace-event JSON file and return its path."""
    path = Path(path)
    payload = {
        "traceEvents": to_trace_events(records),
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": metrics.counters(),
            "gauges": metrics.gauges(),
            "histograms": metrics.histograms(),
            "dropped_spans": core.dropped(),
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    return path


def aggregate(records: Optional[Sequence[tuple]] = None) -> List[Dict]:
    """Spans aggregated by name, sorted by inclusive total (descending).

    Each row: ``{name, count, total_s, mean_s, max_s, pids}``.  Instant
    events aggregate with ``total_s`` 0 (their ``count`` is still useful —
    refresh decisions, failures).
    """
    if records is None:
        records = core.snapshot()
    rows: Dict[str, Dict] = {}
    for kind, name, _t0, dur, pid, _tid, _attrs in records:
        row = rows.get(name)
        if row is None:
            row = rows[name] = {
                "name": name,
                "count": 0,
                "total_s": 0.0,
                "max_s": 0.0,
                "pids": set(),
            }
        row["count"] += 1
        if kind == "X":
            row["total_s"] += dur
            row["max_s"] = max(row["max_s"], dur)
        row["pids"].add(pid)
    out = []
    for row in sorted(rows.values(), key=lambda r: -r["total_s"]):
        row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
        row["pids"] = sorted(row["pids"])
        out.append(row)
    return out


def format_summary(
    records: Optional[Sequence[tuple]] = None, *, top: Optional[int] = None
) -> str:
    """A text table of the aggregated spans (the ``summarize`` CLI output)."""
    rows = aggregate(records)
    if top is not None:
        rows = rows[:top]
    if not rows:
        return "no spans recorded"
    name_w = max(len(r["name"]) for r in rows)
    lines = [
        f"{'span':<{name_w}}  {'count':>7}  {'total_ms':>10}  "
        f"{'mean_ms':>10}  {'max_ms':>10}  procs"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<{name_w}}  {r['count']:>7}  {r['total_s'] * 1e3:>10.3f}  "
            f"{r['mean_s'] * 1e3:>10.3f}  {r['max_s'] * 1e3:>10.3f}  {len(r['pids'])}"
        )
    dropped = core.dropped() if records is None else 0
    if dropped:
        lines.append(f"({dropped} spans dropped: ring buffer full)")
    return "\n".join(lines)


def telemetry(
    *, top: int = 3, records: Optional[Sequence[tuple]] = None
) -> Dict:
    """The compact telemetry attachment: top-N spans + counters.

    What ``EmbeddingResult.telemetry`` carries and what
    ``write_bench_json`` embeds when a benchmark runs with tracing on.
    """
    rows = aggregate(records)[:top]
    return {
        "top_spans": [
            {
                "name": r["name"],
                "count": r["count"],
                "total_s": r["total_s"],
                "mean_s": r["mean_s"],
            }
            for r in rows
        ],
        "counters": metrics.counters(),
    }


def _env_trace_path() -> Optional[str]:
    """The ``REPRO_TRACE`` environment value, if set and non-empty."""
    value = os.environ.get("REPRO_TRACE")
    return value or None
