"""Owner-range sharded execution with tree-reduced class sums.

The fused owner-sorted incidence layout (PR 5) makes contiguous owner
ranges *independent up to the per-class-sum reduction*: every incidence
``(owner, partner, w)`` contributes only to row ``owner`` of the raw sums
``S[u, c] = Σ w over incidences with Y[partner] = c``, and the incidence
array is sorted by owner — so slicing it at any row boundaries partitions
the work into shards whose partial sums occupy disjoint rows.  This is the
partitioned-aggregation shape of Ligra's vertex ranges and GraphChi's
shards/intervals, applied to the GEE edge pass.

:class:`ShardedGraph` compiles a graph into ``N`` contiguous owner-range
shards, each holding

* its own contiguous slice of the owner-sorted incidence triple, wrapped
  in a per-shard :class:`~repro.graph.facade.Graph` whose compiled
  :class:`~repro.core.plan.EmbedPlan` feeds the owner-computes segment-sum
  kernel directly;
* a pinned worker affinity (``shard_id mod machine workers``), so repeated
  embeds dispatch the same shards to the same workers in the same order —
  deterministic results and warm per-worker caches;
* optionally, its own :class:`~repro.stream.segments.SegmentedEdgeStore`
  segment set (:meth:`ShardedGraph.persist`), so each shard can stream its
  incidences from disk for out-of-core execution.

Per-shard (serial) or per-worker (pooled) raw partial sums are combined by
the existing pairwise tree reduction (:func:`repro.parallel.tree_reduce`)
and rescaled once by ``diag(1/n_c)``.  Because ``np.bincount`` sums each
output slot in input-traversal order and shard slices preserve the global
incidence order, the sharded raw sums are bitwise identical to the
single-pool fused pass for any shard count; the tree reduction only adds
exact zeros from non-owned rows.

Exactly like :func:`~repro.core.gee_parallel.gee_parallel`, explicit
worker requests are honoured or rejected loudly, and the pooled path
requires the ``fork`` start method.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.gee_vectorized import (
    accumulate_fused_rows_sorted,
    class_rescale,
    scatter_add,
)
from ..core.plan import _LAYOUT_BLOCK_BYTES, sorted_incidence
from ..core.projection import projection_from_scales, projection_scales
from ..core.result import EmbeddingResult
from ..core.validation import UNKNOWN_LABEL, validate_edges, validate_labels
from ..graph.edgelist import EdgeList
from ..obs import trace
from ..parallel import (
    ForkWorkerPool,
    SharedArraySet,
    attach,
    effective_worker_count,
    fork_available,
    resolve_worker_count,
    tree_reduce,
)

__all__ = ["Shard", "ShardSpec", "ShardedGraph", "patch_sums_sharded"]

#: Minimum routed incidences before the shard patch fans out to threads
#: (below this the dispatch overhead dwarfs the scatter work).
_PATCH_THREAD_THRESHOLD = 4096

#: Accepted values of the ``kernel`` execution selector: ``"numpy"`` is the
#: vectorized owner-computes kernel (the default, bitwise-pinned against the
#: single-pool fused pass), ``"native"`` the JIT tier via
#: :func:`repro.native.dispatch.get_kernel` (which itself shadows to NumPy
#: when numba is absent), ``"shadow"`` the native tier's pure-NumPy shadows
#: pinned explicitly (the equivalence-test hook).
_KERNELS = ("numpy", "native", "shadow")

#: Dummy weights for unit-weight shards on the native path (the JIT
#: kernels take no ``None``).
_EMPTY_WEIGHTS = np.empty(0, dtype=np.float64)


def _check_kernel(kernel: str) -> str:
    if kernel not in _KERNELS:
        raise ValueError(f"kernel must be one of {_KERNELS}, got {kernel!r}")
    return kernel


def _rows_per_block(n_classes: int) -> int:
    """Rows per L2-sized block for the segment-sum kernel (same budget as
    :func:`~repro.core.plan.compile_fused_layout`)."""
    return max(1, _LAYOUT_BLOCK_BYTES // (int(n_classes) * 8))


@dataclass(frozen=True)
class ShardSpec:
    """Immutable identity of one owner-range shard.

    ``worker_affinity`` pins the shard to a worker slot: at embed time the
    shard runs on worker ``worker_affinity mod n_workers``, so the shard →
    worker assignment is deterministic, stable across calls, and balanced
    for any pool size.
    """

    shard_id: int
    row_lo: int
    row_hi: int
    n_incidences: int
    worker_affinity: int

    @property
    def n_rows(self) -> int:
        return self.row_hi - self.row_lo


class Shard:
    """One contiguous owner range with its own incidence slice and plans.

    The incidence slice is wrapped in a :class:`~repro.graph.facade.Graph`
    over the half-edges ``owner → partner`` so each shard owns a real
    compiled :class:`~repro.core.plan.EmbedPlan` (cached per K on the
    facade): ``plan.src_flat`` *is* the sorted ``owner*K`` flat-index array
    the owner-computes kernel consumes, and ``plan.dst`` the partner ids.
    """

    def __init__(self, spec: ShardSpec, incidence_graph) -> None:
        self.spec = spec
        self.graph = incidence_graph
        #: Per-K cache of shard-local ``owner*K`` flat components (global
        #: ``plan.src_flat`` rebased to the shard's row window) — compiled
        #: once so the native path stays free of per-call O(incidence)
        #: temporaries, like every other plan artifact.
        self._local_flat: Dict[int, np.ndarray] = {}

    @property
    def n_incidences(self) -> int:
        return self.spec.n_incidences

    def plan(self, n_classes: int):
        """The shard's compiled per-K embed plan (facade-cached)."""
        return self.graph.plan(int(n_classes))

    def local_flat(self, n_classes: int) -> np.ndarray:
        """Shard-local flat owner components: ``(owner - row_lo) * K`` sorted.

        Indexes the shard's own ``[row_lo*K, row_hi*K)`` slice of the output,
        so shard kernels write disjoint memory — the native thread path and
        the shadow ``scatter_add`` both stay race-free.
        """
        k = int(n_classes)
        cached = self._local_flat.get(k)
        if cached is None:
            cached = self.plan(k).src_flat - self.spec.row_lo * k
            self._local_flat[k] = cached
        return cached

    def accumulate_into(
        self,
        out_flat: np.ndarray,
        y: np.ndarray,
        n_classes: int,
        *,
        fully_labelled: bool,
        kernel: str = "numpy",
    ) -> None:
        """Raw class sums of this shard's rows, written into ``out_flat``.

        ``out_flat`` is full ``(n*K,)`` shape; only the slots of rows
        ``[row_lo, row_hi)`` are written (block-assigned for ``"numpy"``,
        accumulated into the zeroed window on the native path), so partials
        of different shards compose by plain addition.

        ``kernel`` selects the execution tier (see :data:`_KERNELS`): the
        native tier runs the one-sided JIT segment accumulate over the
        shard's own output slice with shard-local flat indices — a shard's
        half-edge graph must **not** be recompiled into a fused layout
        (that would re-double the incidences), so the existing shard plan
        arrays feed the kernel directly.
        """
        spec = self.spec
        if spec.row_hi <= spec.row_lo:
            return
        plan = self.plan(n_classes)
        if kernel != "numpy":
            from ..native.dispatch import get_kernel

            seg = get_kernel("segment_accumulate", force_shadow=kernel == "shadow")
            k = int(n_classes)
            weights = None if plan.unit_weights else plan.weights
            seg(
                out_flat[spec.row_lo * k : spec.row_hi * k],
                self.local_flat(k),
                plan.dst,
                _EMPTY_WEIGHTS if weights is None else weights,
                weights is not None,
                y,
            )
            return
        accumulate_fused_rows_sorted(
            out_flat,
            plan.src_flat,
            plan.dst,
            None if plan.unit_weights else plan.weights,
            y,
            int(n_classes),
            _rows_per_block(n_classes),
            spec.row_lo,
            spec.row_hi,
            fully_labelled=fully_labelled,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.spec
        return (
            f"Shard(id={s.shard_id}, rows=[{s.row_lo}, {s.row_hi}), "
            f"incidences={s.n_incidences}, affinity={s.worker_affinity})"
        )


# --------------------------------------------------------------------------- #
# Worker-side plumbing (module-level: shipped to forked workers)
# --------------------------------------------------------------------------- #
#: Worker-side attachment cache: shm segment name -> (view, SharedMemory).
#: Mirrors the parallel kernel's per-worker cache — segments are attached
#: once per worker process and stay mapped until the worker exits (the
#: creating ShardedGraph owns and unlinks them).
_WORKER_VIEWS: Dict[str, Tuple[np.ndarray, object]] = {}


def _attached_view(handle) -> np.ndarray:
    entry = _WORKER_VIEWS.get(handle.shm_name)
    if entry is None:
        entry = attach(handle)
        _WORKER_VIEWS[handle.shm_name] = entry
    return entry[0]


def _shard_worker_init(worker_id: int) -> dict:
    return {"worker_id": worker_id}


def _shard_embed_task(
    context: dict,
    handles: dict,
    shard_meta: tuple,
    n_classes: int,
    fully_labelled: bool,
    n_workers: int,
) -> None:
    """Pooled embed task: accumulate this worker's pinned shards.

    Every worker receives the identical arguments (``run_on_all``) and
    selects its shards by affinity: shard ``i`` runs on worker
    ``affinity mod n_workers``, in shard-id order.  Each worker owns one
    full-shape partial row of the shared ``partials`` buffer; rows of
    different shards are disjoint, so block-assignment within one partial
    never clobbers, and the parent tree-reduces the per-worker partials.
    """
    worker_id = context["worker_id"]
    y = _attached_view(handles["labels"])
    out = _attached_view(handles["partials"])[worker_id]
    out.fill(0.0)
    k = int(n_classes)
    rows_per_block = _rows_per_block(k)
    for shard_id, row_lo, row_hi, affinity in shard_meta:
        if affinity % n_workers != worker_id or row_hi <= row_lo:
            continue
        try:
            with trace(
                "shard.accumulate", shard=shard_id, rows=row_hi - row_lo
            ):
                owner = _attached_view(handles[f"owner{shard_id}"])
                partner = _attached_view(handles[f"partner{shard_id}"])
                weights_handle = handles.get(f"weights{shard_id}")
                weights = (
                    None if weights_handle is None else _attached_view(weights_handle)
                )
                accumulate_fused_rows_sorted(
                    out,
                    owner * k,
                    partner,
                    weights,
                    y,
                    k,
                    rows_per_block,
                    row_lo,
                    row_hi,
                    fully_labelled=fully_labelled,
                )
        except BaseException as exc:
            raise RuntimeError(
                f"shard {shard_id} (rows [{row_lo}, {row_hi}), backend=sharded) "
                f"failed on worker {worker_id}: {exc}"
            ) from exc


def _patch_shard_rows(
    S_flat: np.ndarray,
    row_lo: int,
    row_hi: int,
    owner: np.ndarray,
    partner_labels: np.ndarray,
    delta_w: np.ndarray,
    n_classes: int,
    kernel: str = "numpy",
) -> None:
    """Apply one shard's routed one-sided patches to its own row slice.

    Operates on the ``[row_lo*K, row_hi*K)`` slice with shard-local flat
    indices, so concurrent shard patches touch disjoint memory — the dense
    ``bincount`` path of :func:`scatter_add` (and the native
    ``flat_scatter_add`` loop) stays thread-safe.
    """
    k = int(n_classes)
    view = S_flat[row_lo * k : row_hi * k]
    flat = (owner - row_lo) * k + partner_labels
    if kernel != "numpy":
        from ..native.dispatch import get_kernel

        get_kernel("flat_scatter_add", force_shadow=kernel == "shadow")(
            view, flat, np.ascontiguousarray(delta_w, dtype=np.float64)
        )
        return
    scatter_add(view, flat, delta_w)


def patch_sums_sharded(
    S_flat: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    delta_w: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    *,
    row_cuts: Optional[np.ndarray] = None,
    n_shards: Optional[int] = None,
    n_workers: Optional[int] = None,
    kernel: str = "numpy",
) -> None:
    """Shard-routed O(Δ) patch of flat raw per-class sums, in place.

    The incremental counterpart of the sharded embed: each signed edge
    ``(u, v, Δw)`` becomes two one-sided incidences (``S[u, Y[v]] += Δw``
    owned by the shard of ``u``, ``S[v, Y[u]] += Δw`` owned by the shard
    of ``v``), routed to owning shards by binary search on the row cuts.
    Shards patch disjoint row slices, so large deltas run shard-parallel
    on threads; the result is independent of thread timing.

    ``row_cuts`` are a :class:`ShardedGraph`'s real owner-range boundaries
    when called through one; standalone calls (the backend's incremental
    protocol has no graph in scope) use even row cuts — routing is a
    performance choice, never a correctness one.  ``kernel`` selects the
    per-shard scatter tier (see :data:`_KERNELS`).
    """
    _check_kernel(kernel)
    k = int(n_classes)
    if src.size == 0 or S_flat.size == 0:
        return
    n = S_flat.size // k
    y = np.asarray(labels)
    owner = np.concatenate((src, dst))
    partner = np.concatenate((dst, src))
    dw = np.concatenate((delta_w, delta_w))
    yp = y[partner]
    known = yp != UNKNOWN_LABEL
    if not np.all(known):
        owner, yp, dw = owner[known], yp[known], dw[known]
    if owner.size == 0:
        return
    if row_cuts is None:
        shards = max(1, min(int(n_shards or effective_worker_count(None)), n))
        row_cuts = np.linspace(0, n, shards + 1).astype(np.int64)
    shard_of = np.searchsorted(row_cuts, owner, side="right") - 1
    order = np.argsort(shard_of, kind="stable")
    owner, yp, dw, shard_of = owner[order], yp[order], dw[order], shard_of[order]
    bounds = np.searchsorted(shard_of, np.arange(len(row_cuts) - 1 + 1))
    tasks = []
    for i in range(len(row_cuts) - 1):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        if lo == hi:
            continue
        tasks.append(
            (int(row_cuts[i]), int(row_cuts[i + 1]), owner[lo:hi], yp[lo:hi], dw[lo:hi])
        )
    workers = effective_worker_count(n_workers)
    if len(tasks) <= 1 or workers <= 1 or owner.size < _PATCH_THREAD_THRESHOLD:
        for row_lo, row_hi, o, p, w in tasks:
            _patch_shard_rows(S_flat, row_lo, row_hi, o, p, w, k, kernel)
        return
    with ThreadPoolExecutor(max_workers=min(workers, len(tasks))) as ex:
        futures = [
            ex.submit(_patch_shard_rows, S_flat, row_lo, row_hi, o, p, w, k, kernel)
            for row_lo, row_hi, o, p, w in tasks
        ]
        for fut in futures:
            fut.result()


# --------------------------------------------------------------------------- #
# The sharded graph
# --------------------------------------------------------------------------- #
class ShardedGraph:
    """N contiguous owner-range shards over the owner-sorted incidence.

    Construction sorts the ``2E`` incidences once, degree-balances the
    requested shard count over the owner rows (empty ranges allowed — a
    shard with no rows contributes exact zeros), and gives each shard a
    contiguous copy of its slice.  ``n_shards`` is clamped to the vertex
    count; requesting fewer than one shard raises.

    Lifecycle: the pooled path lazily creates a private
    :class:`~repro.parallel.ForkWorkerPool` and shared-memory segments for
    the incidence slices and per-worker partials; :meth:`close` (or use as
    a context manager) releases them.  A closed sharded graph can still
    run the serial path.
    """

    def __init__(self, graph, n_shards: int) -> None:
        from ..graph.facade import Graph

        requested = int(n_shards)
        if requested < 1:
            raise ValueError(f"n_shards={requested} must be at least 1")
        graph = Graph.coerce(graph)
        self.graph = graph
        edges = validate_edges(graph.edges)
        n = edges.n_vertices
        self.n_vertices = n
        self.n_edges = edges.n_edges
        owner, partner, w = sorted_incidence(edges.src, edges.dst, edges.weights)
        self.n_shards = max(1, min(requested, n)) if n else 1
        degrees = np.bincount(owner, minlength=n)
        ranges = _balanced_ranges(degrees, self.n_shards)
        #: Owner-range boundaries: shard ``i`` owns rows
        #: ``[row_cuts[i], row_cuts[i+1])``.
        self.row_cuts = np.array([lo for lo, _ in ranges] + [n], dtype=np.int64)
        inc_cuts = np.searchsorted(owner, self.row_cuts)
        self._shards: List[Shard] = []
        for i, (row_lo, row_hi) in enumerate(ranges):
            lo, hi = int(inc_cuts[i]), int(inc_cuts[i + 1])
            shard_edges = EdgeList(
                owner[lo:hi].copy(),
                partner[lo:hi].copy(),
                None if w is None else w[lo:hi].copy(),
                n_vertices=n,
            )
            spec = ShardSpec(
                shard_id=i,
                row_lo=int(row_lo),
                row_hi=int(row_hi),
                n_incidences=hi - lo,
                worker_affinity=i,
            )
            self._shards.append(Shard(spec, Graph.coerce(shard_edges)))
        self._pool: Optional[ForkWorkerPool] = None
        self._incidence_shm: Optional[SharedArraySet] = None
        self._workspaces: Dict[Tuple[int, int], Tuple[SharedArraySet, np.ndarray, np.ndarray]] = {}
        self._persist_root: Optional[Path] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> Tuple[Shard, ...]:
        return tuple(self._shards)

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return self.n_shards

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedGraph(n={self.n_vertices}, E={self.n_edges}, "
            f"n_shards={self.n_shards})"
        )

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #
    def embed(
        self,
        labels: np.ndarray,
        n_classes: Optional[int] = None,
        *,
        n_workers: Optional[int] = None,
        kernel: str = "numpy",
    ) -> EmbeddingResult:
        """GEE over the shards; per-shard sums combined by tree reduction.

        ``n_workers=None`` auto-sizes (never more workers than shards or
        CPUs); an explicit positive request is honoured up to the shard
        count and — on the default ``"numpy"`` kernel — requires ``fork``
        when above one, exactly like
        :func:`~repro.core.gee_parallel.gee_parallel`.

        ``kernel`` selects the per-shard execution tier (see
        :data:`_KERNELS`).  The native tier needs no fork pool: its
        ``nogil`` kernels run shard-parallel on *threads* into one shared
        output buffer (shards own disjoint row slices), and each shard is
        processed start-to-finish by one task in fixed order, so the result
        stays deterministic for any worker count.
        """
        _check_kernel(kernel)
        y, k = validate_labels(labels, self.n_vertices, n_classes)
        t0 = time.perf_counter()
        fully = bool(y.size) and int(y.min()) != UNKNOWN_LABEL
        explicit = n_workers is not None and int(n_workers) > 0
        requested = resolve_worker_count(n_workers)
        if kernel == "numpy" and explicit and requested > 1 and not fork_available():
            raise RuntimeError(
                f"ShardedGraph: n_workers={requested} requested but the 'fork' "
                "start method is unavailable on this platform; pass n_workers=1 "
                "(or None for the automatic fallback)"
            )
        workers = min(requested, self.n_shards)
        if not explicit:
            workers = min(workers, effective_worker_count(None))
        t1 = time.perf_counter()
        if kernel != "numpy":
            S_flat = self._raw_sums_native(y, k, fully, workers, kernel)
        elif workers <= 1 or not fork_available() or self.n_edges == 0:
            S_flat = self._raw_sums_serial(y, k, fully)
            workers = 1
        else:
            S_flat = self._raw_sums_pooled(y, k, fully, workers)
        Z = S_flat.reshape(self.n_vertices, k)
        class_rescale(Z, y, k)
        t2 = time.perf_counter()
        method = f"gee-sharded[{self.n_shards}]"
        if kernel != "numpy":
            method = f"gee-sharded-{kernel}[{self.n_shards}]"
        return EmbeddingResult(
            embedding=Z,
            projection_builder=lambda: projection_from_scales(
                y, projection_scales(y, k), k
            ),
            timings={"projection": t1 - t0, "edge_pass": t2 - t1, "total": t2 - t0},
            method=method,
            n_workers=workers,
            layout="sorted",
        )

    def raw_sums(self, labels: np.ndarray, n_classes: int) -> np.ndarray:
        """Tree-reduced raw per-class sums ``S`` (serial path), shape (n, K)."""
        y, k = validate_labels(labels, self.n_vertices, int(n_classes))
        fully = bool(y.size) and int(y.min()) != UNKNOWN_LABEL
        return self._raw_sums_serial(y, k, fully).reshape(self.n_vertices, k)

    def _raw_sums_serial(self, y: np.ndarray, k: int, fully: bool) -> np.ndarray:
        nk = self.n_vertices * k
        partials = []
        for shard in self._shards:
            spec = shard.spec
            part = np.zeros(nk, dtype=np.float64)
            try:
                with trace(
                    "shard.accumulate",
                    shard=spec.shard_id,
                    rows=spec.row_hi - spec.row_lo,
                ):
                    shard.accumulate_into(part, y, k, fully_labelled=fully)
            except BaseException as exc:
                # Same failure context the pooled task attaches, so callers
                # see one shape of error regardless of execution path.
                raise RuntimeError(
                    f"shard {spec.shard_id} (rows [{spec.row_lo}, {spec.row_hi}), "
                    f"backend=sharded) failed: {exc}"
                ) from exc
            partials.append(part)
        return tree_reduce(partials).reshape(-1)

    def _raw_sums_native(
        self, y: np.ndarray, k: int, fully: bool, workers: int, kernel: str
    ) -> np.ndarray:
        """Native-tier raw sums: shard-parallel threads, one shared buffer.

        Every shard accumulates into its own disjoint ``[row_lo*K,
        row_hi*K)`` window (see :meth:`Shard.accumulate_into`), so no
        per-shard partials and no tree reduction are needed — the native
        kernels release the GIL, so threads genuinely overlap where numba
        is present, and degrade to a serial sweep over the shadows where it
        is not.  Deterministic: one task per shard, fixed in-shard order.
        """
        S_flat = np.zeros(self.n_vertices * k, dtype=np.float64)

        def run(shard: Shard) -> None:
            spec = shard.spec
            try:
                with trace(
                    "shard.accumulate",
                    shard=spec.shard_id,
                    rows=spec.row_hi - spec.row_lo,
                ):
                    shard.accumulate_into(
                        S_flat, y, k, fully_labelled=fully, kernel=kernel
                    )
            except BaseException as exc:
                raise RuntimeError(
                    f"shard {spec.shard_id} (rows [{spec.row_lo}, {spec.row_hi}), "
                    f"backend=native) failed: {exc}"
                ) from exc

        active = [s for s in self._shards if s.spec.row_hi > s.spec.row_lo]
        if workers <= 1 or len(active) <= 1:
            for shard in active:
                run(shard)
            return S_flat
        with ThreadPoolExecutor(max_workers=min(workers, len(active))) as ex:
            for future in [ex.submit(run, shard) for shard in active]:
                future.result()
        return S_flat

    def _raw_sums_pooled(self, y: np.ndarray, k: int, fully: bool, workers: int) -> np.ndarray:
        pool = self._ensure_pool(workers)
        incidence = self._ensure_incidence_shm()
        _, labels_view, partials = self._ensure_workspace(k, workers)
        labels_view[:] = y
        handles = incidence.handles()
        handles.update(self._workspaces[(k, workers)][0].handles())
        meta = tuple(
            (s.spec.shard_id, s.spec.row_lo, s.spec.row_hi, s.spec.worker_affinity)
            for s in self._shards
        )
        with trace(
            "shard.dispatch", n_shards=self.n_shards, n_workers=workers
        ):
            pool.run_on_all(
                _shard_embed_task,
                handles,
                meta,
                k,
                fully,
                workers,
                labels=[
                    f"backend=sharded worker={i} "
                    f"shards={[s.spec.shard_id for s in self._shards if s.spec.worker_affinity % workers == i]}"
                    for i in range(workers)
                ],
            )
        return tree_reduce([partials[i] for i in range(workers)]).reshape(-1)

    # ------------------------------------------------------------------ #
    # Incremental patches
    # ------------------------------------------------------------------ #
    def patch_sums(
        self,
        S_flat: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        delta_w: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
        *,
        n_workers: Optional[int] = None,
        kernel: str = "numpy",
    ) -> None:
        """Route a signed edge delta to owning shards (O(Δ), in place)."""
        patch_sums_sharded(
            S_flat,
            np.asarray(src),
            np.asarray(dst),
            np.asarray(delta_w),
            labels,
            n_classes,
            row_cuts=self.row_cuts,
            n_workers=n_workers,
            kernel=kernel,
        )

    # ------------------------------------------------------------------ #
    # Out-of-core: per-shard segment stores
    # ------------------------------------------------------------------ #
    def persist(self, root) -> List[Path]:
        """Write each shard's incidence slice to its own segment store.

        Creates ``root/shard-00000/``, ``root/shard-00001/``, ... — one
        :class:`~repro.stream.segments.SegmentedEdgeStore` per shard — and
        remembers ``root`` for :meth:`embed_outofcore`.
        """
        from ..stream.segments import SegmentedEdgeStore

        root = Path(root)
        paths = []
        for shard in self._shards:
            path = root / f"shard-{shard.spec.shard_id:05d}"
            SegmentedEdgeStore.create(path, shard.graph.edges)
            paths.append(path)
        self._persist_root = root
        return paths

    def embed_outofcore(
        self,
        labels: np.ndarray,
        n_classes: Optional[int] = None,
        *,
        root=None,
        chunk_edges: Optional[int] = None,
    ) -> EmbeddingResult:
        """Stream each shard's segment store chunk-wise; tree-reduce the sums.

        Bounded memory on the edge side: per chunk only O(chunk) incidence
        temporaries are materialised (the stores stay memory-mapped).  The
        per-slot summation order can differ from the in-memory fused path
        (chunk-accumulate vs single block pass), so results agree to
        floating-point reduction order — well inside the 1e-10 gate.
        """
        from ..stream.segments import SegmentedEdgeStore

        root = Path(root) if root is not None else self._persist_root
        if root is None:
            raise ValueError(
                "no segment stores: call persist(root) first or pass root="
            )
        y, k = validate_labels(labels, self.n_vertices, n_classes)
        t0 = time.perf_counter()
        nk = self.n_vertices * k
        partials = []
        for shard in self._shards:
            part = np.zeros(nk, dtype=np.float64)
            store = SegmentedEdgeStore.open(root / f"shard-{shard.spec.shard_id:05d}")
            source = store.source(chunk_edges=chunk_edges)
            with trace(
                "shard.stream",
                shard=shard.spec.shard_id,
                incidences=shard.spec.n_incidences,
            ):
                for owner, partner, w in source.iter_chunks():
                    yp = y[partner]
                    known = yp != UNKNOWN_LABEL
                    scatter_add(part, owner[known] * k + yp[known], w[known])
            partials.append(part)
        S = tree_reduce(partials)
        Z = S.reshape(self.n_vertices, k)
        class_rescale(Z, y, k)
        t1 = time.perf_counter()
        return EmbeddingResult(
            embedding=Z,
            projection_builder=lambda: projection_from_scales(
                y, projection_scales(y, k), k
            ),
            timings={"projection": 0.0, "edge_pass": t1 - t0, "total": t1 - t0},
            method=f"gee-sharded-outofcore[{self.n_shards}]",
            n_workers=1,
            layout="sorted",
        )

    # ------------------------------------------------------------------ #
    # Pool / shared-memory lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self, workers: int) -> ForkWorkerPool:
        if self._closed:
            raise RuntimeError("ShardedGraph is closed")
        if self._pool is not None and self._pool.n_workers != workers:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = ForkWorkerPool(workers, initializer=_shard_worker_init)
        return self._pool

    def _ensure_incidence_shm(self) -> SharedArraySet:
        if self._incidence_shm is None:
            shm = SharedArraySet()
            try:
                for shard in self._shards:
                    i = shard.spec.shard_id
                    edges = shard.graph.edges
                    shm.share(f"owner{i}", edges.src)
                    shm.share(f"partner{i}", edges.dst)
                    if edges.weights is not None:
                        shm.share(f"weights{i}", edges.weights)
            except BaseException:
                shm.close()
                raise
            self._incidence_shm = shm
        return self._incidence_shm

    def _ensure_workspace(self, k: int, workers: int):
        key = (k, workers)
        ws = self._workspaces.get(key)
        if ws is None:
            shm = SharedArraySet()
            try:
                labels_view = shm.empty("labels", (self.n_vertices,), np.int64)
                partials = shm.zeros(
                    "partials", (workers, self.n_vertices * k), np.float64
                )
            except BaseException:
                shm.close()
                raise
            ws = (shm, labels_view, partials)
            self._workspaces[key] = ws
        return ws

    def close(self) -> None:
        """Release the worker pool and every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._incidence_shm is not None:
            self._incidence_shm.close()
            self._incidence_shm = None
        for shm, _, _ in self._workspaces.values():
            shm.close()
        self._workspaces.clear()

    def __enter__(self) -> "ShardedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _balanced_ranges(degrees: np.ndarray, n_parts: int) -> List[Tuple[int, int]]:
    from ..core.gee_parallel import balanced_ranges_from_work

    return balanced_ranges_from_work(degrees, n_parts)
