"""The ``sharded`` backend: owner-range shards behind the standard protocol.

A thin adapter from the :class:`~repro.backends.registry.GEEBackend`
protocol onto :class:`~repro.shard.ShardedGraph`.  The facade caches
sharded graphs per shard count (``Graph.shard``), so repeated embeds —
backend sweeps, the refinement loop, incremental re-fits — pay the
sort-and-slice compilation once, exactly like cached plans.

The backend deliberately does **not** accept chunked plans: sharding and
chunking answer the same memory question at different layers, and the
sharded out-of-core story is the explicit per-shard segment stores of
:meth:`ShardedGraph.persist` / :meth:`ShardedGraph.embed_outofcore`.
"""

from __future__ import annotations

import numpy as np

from ..backends.registry import BackendCapabilities, GEEBackend, register_backend
from ..parallel import effective_worker_count
from .sharded import patch_sums_sharded

__all__ = ["ShardedGEEBackend"]


@register_backend(
    "sharded",
    capabilities=BackendCapabilities(
        supports_n_workers=True,
        parallel=True,
        deterministic=True,
        supports_incremental=True,
        supports_layout=True,
        supports_sharding=True,
        description=(
            "owner-range sharded fused edge pass; per-shard raw class sums "
            "combined by pairwise tree reduction (n_shards option)"
        ),
    ),
)
class ShardedGEEBackend(GEEBackend):
    """Owner-range sharded execution with tree-reduced class sums.

    Options
    -------
    n_shards:
        Number of contiguous owner-range shards.  ``None`` (the default)
        uses one shard per machine worker, clamped to the vertex count.
    """

    _OPTIONS = {"n_shards": None}

    def _resolved_shards(self, n_vertices: int) -> int:
        requested = self.n_shards
        if requested is None:
            requested = effective_worker_count(None)
        return max(1, min(int(requested), max(1, int(n_vertices))))

    def _embed(self, graph, labels, n_classes):
        sharded = graph.shard(self._resolved_shards(graph.n_vertices))
        return sharded.embed(labels, n_classes, n_workers=self.n_workers)

    def _embed_with_plan(self, plan, labels):
        graph = plan.graph
        sharded = graph.shard(self._resolved_shards(graph.n_vertices))
        return sharded.embed(labels, plan.n_classes, n_workers=self.n_workers)

    def _patch_sums(
        self,
        S_flat: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        delta_w: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
    ) -> None:
        # The incremental protocol carries no graph, so routing uses even
        # row cuts sized from S_flat; ShardedGraph.patch_sums supplies its
        # real degree-balanced cuts when a sharded graph is in scope.
        patch_sums_sharded(
            S_flat,
            src,
            dst,
            delta_w,
            labels,
            n_classes,
            n_shards=self.n_shards,
            n_workers=self.n_workers,
        )
