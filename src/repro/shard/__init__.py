"""Owner-range sharded execution (:class:`ShardedGraph`) for the GEE edge pass.

See :mod:`repro.shard.sharded` for the execution model and exactness
argument, and :mod:`repro.shard.backend` for the registered ``sharded``
backend.
"""

from .backend import ShardedGEEBackend
from .sharded import Shard, ShardedGraph, ShardSpec, patch_sums_sharded

__all__ = [
    "Shard",
    "ShardSpec",
    "ShardedGEEBackend",
    "ShardedGraph",
    "patch_sums_sharded",
]
