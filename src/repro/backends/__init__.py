"""Unified registry of GEE execution backends.

``repro.backends`` is the single extension point for execution strategies:
each backend wraps one way of running the GEE edge pass (interpreted,
vectorised, the Ligra engine's schedules, the owner-computes process
kernel) behind a common ``embed(graph, labels, n_classes)`` interface with
declared capabilities and validated construction options.

>>> from repro.backends import get_backend, list_backends
>>> len(list_backends()) >= 6
True
>>> get_backend("vectorized")            # canonical name      # doctest: +SKIP
>>> get_backend("ligra")                 # legacy alias        # doctest: +SKIP
>>> get_backend("python", n_workers=2)   # raises ValueError   # doctest: +SKIP
"""

from .registry import (
    BackendCapabilities,
    GEEBackend,
    backend_aliases,
    backend_capabilities,
    backend_class,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend_name,
)

# Importing the modules registers the built-in backends.
from . import gee as _gee_backends  # noqa: F401  (import for side effects)
from ..shard import backend as _shard_backend  # noqa: F401  (registration)
from ..shard.backend import ShardedGEEBackend
from .auto import AutoGEEBackend

# The native (numba-JIT) backend registers only where the tier is available;
# the class itself always imports (it degrades through the shadow kernels).
from ..native.backend import NativeGEEBackend, register_native_backend

register_native_backend()
from .gee import (
    LigraProcessesGEEBackend,
    LigraSerialGEEBackend,
    LigraThreadsGEEBackend,
    LigraVectorizedGEEBackend,
    ProcessParallelGEEBackend,
    PythonLoopBackend,
    VectorizedGEEBackend,
)

__all__ = [
    "AutoGEEBackend",
    "BackendCapabilities",
    "GEEBackend",
    "register_backend",
    "get_backend",
    "list_backends",
    "backend_class",
    "backend_capabilities",
    "backend_aliases",
    "resolve_backend_name",
    "PythonLoopBackend",
    "VectorizedGEEBackend",
    "LigraSerialGEEBackend",
    "LigraVectorizedGEEBackend",
    "LigraThreadsGEEBackend",
    "LigraProcessesGEEBackend",
    "ProcessParallelGEEBackend",
    "ShardedGEEBackend",
    "NativeGEEBackend",
]
