"""The ``"auto"`` backend: cost-model-driven execution strategy selection.

Every other registry backend *is* an execution strategy; this one *picks*
one.  Per call it asks the calibrated :class:`~repro.tune.CostModel` for
the predicted-fastest ``(backend, layout, workers)`` for the graph's
``(n, E, K)`` on this machine, delegates to that backend (re-planning with
the chosen layout when the graph facade is available — layout plans are
cached per layout, so repeated calls pay compilation once), and logs the
full :class:`~repro.tune.ExecutionChoice` on the result
(``result.execution_choice``).

All candidate strategies compute the identical embedding, so a wrong
prediction costs speed, never correctness; a missing/stale calibration
cache degrades to default coefficients with a one-time warning (see
:mod:`repro.tune`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..graph.facade import Graph
from .registry import BackendCapabilities, GEEBackend, get_backend, register_backend

__all__ = ["AutoGEEBackend"]


@register_backend(
    "auto",
    capabilities=BackendCapabilities(
        supports_n_workers=True,
        parallel=True,
        deterministic=True,
        supports_chunked=True,
        supports_incremental=True,
        supports_layout=True,
        description="calibrated cost model picks backend, layout and workers per call",
    ),
)
class AutoGEEBackend(GEEBackend):
    """Adaptive execution: delegate each embed to the predicted-fastest backend.

    ``n_workers`` caps how many workers the model may plan for (default:
    the machine's CPU count).  Capabilities are the union of the candidate
    set — every candidate is deterministic, weight-capable, and the
    chunked/incremental protocols route to chunk-/patch-capable delegates.
    """

    def __init__(self, *, n_workers: Optional[int] = None, **options) -> None:
        super().__init__(n_workers=n_workers, **options)
        self._delegates: Dict[
            Tuple[str, Optional[int], Optional[int]], GEEBackend
        ] = {}

    # ------------------------------------------------------------------ #
    # Model plumbing
    # ------------------------------------------------------------------ #
    def _choose(self, n: int, e: int, k: int, *, weighted: bool, chunked: bool = False,
                chunk_edges: Optional[int] = None, fixed_layout: Optional[str] = None):
        from ..tune import get_cost_model

        return get_cost_model().choose(
            n,
            e,
            k,
            weighted=weighted,
            n_workers_available=self.n_workers,
            chunked=chunked,
            chunk_edges=chunk_edges,
            fixed_layout=fixed_layout,
        )

    def _delegate(self, choice) -> GEEBackend:
        n_shards = getattr(choice, "n_shards", None)
        key = (choice.backend, choice.n_workers, n_shards)
        backend = self._delegates.get(key)
        if backend is None:
            options = {}
            if choice.backend == "sharded":
                # Only the sharded backend knows the shard-count option;
                # other delegates reject unknown options by contract.
                options["n_shards"] = n_shards
            backend = get_backend(choice.backend, n_workers=choice.n_workers, **options)
            self._delegates[key] = backend
        return backend

    @staticmethod
    def _record_drift(choice, result, n_edges: int) -> None:
        """Log predicted vs observed cost for the drift report.

        Every auto run feeds the detector (an in-memory append, flushed to
        the tune cache dir at exit) — ``python -m repro.obs drift`` compares
        these against the calibration to flag when re-tuning is warranted.
        """
        from ..obs.drift import record_auto_run

        record_auto_run(
            choice,
            result.timings.get("total"),
            result.n_vertices,
            n_edges,
            result.n_classes,
        )

    @staticmethod
    def _resolve_k(labels: np.ndarray, n_classes: Optional[int]) -> int:
        if n_classes is not None:
            return int(n_classes)
        from ..core.validation import infer_n_classes

        k = infer_n_classes(labels)
        if k <= 0:
            raise ValueError(
                "could not infer a positive number of classes; provide "
                "n_classes or at least one labelled vertex"
            )
        return k

    # ------------------------------------------------------------------ #
    # Embedding protocol
    # ------------------------------------------------------------------ #
    def _embed(self, graph: Graph, labels: np.ndarray, n_classes: Optional[int]):
        k = self._resolve_k(labels, n_classes)
        choice = self._choose(
            graph.n_vertices, graph.n_edges, k, weighted=graph.is_weighted
        )
        # Always route through the compiled plan (cached on the facade):
        # the cost model's coefficients were fitted on the warm plan path,
        # and repeated auto embeds on one graph must not re-pay validation
        # or index compilation.
        plan = graph.plan(k, layout=choice.layout if choice.layout != "none" else None)
        result = self._delegate(choice).embed_with_plan(plan, labels)
        result.execution_choice = choice
        self._record_drift(choice, result, graph.n_edges)
        return result

    def _embed_with_plan(self, plan, labels: np.ndarray):
        # A non-default plan layout was requested explicitly (the estimator's
        # layout= knob, or a hand-compiled layout plan): honour it and let
        # the model pick only among backends executing that layout.  The
        # default "none" plan leaves the layout free.
        fixed = plan.layout if plan.layout != "none" else None
        choice = self._choose(
            plan.n_vertices,
            plan.n_edges,
            plan.n_classes,
            # The facade property is O(1) for edge-list graphs; asking the
            # plan (`not plan.unit_weights`) would force edge validation at
            # choose time.
            weighted=plan.graph.is_weighted,
            fixed_layout=fixed,
        )
        target = plan
        if choice.layout != plan.layout:
            # Layout plans are cached per (K, layout) on the graph facade,
            # so switching is a one-time compile, not a per-call cost.
            target = plan.graph.plan(plan.n_classes, layout=choice.layout)
        result = self._delegate(choice).embed_with_plan(target, labels)
        result.execution_choice = choice
        self._record_drift(choice, result, plan.n_edges)
        return result

    def _embed_with_chunked_plan(self, plan, labels: np.ndarray):
        # Standalone sources (no facade) cannot be re-laid-out, and an
        # explicit "sorted" incidence plan must be honoured — in both cases
        # the model may only choose among backends that execute the plan's
        # actual layout, so the recorded choice is always what ran.
        if plan.graph is None or plan.layout != "none":
            fixed = plan.layout
        else:
            fixed = None
        choice = self._choose(
            plan.n_vertices,
            plan.n_edges,
            plan.n_classes,
            weighted=plan.source.is_weighted,
            chunked=True,
            chunk_edges=plan.chunk_edges,
            fixed_layout=fixed,
        )
        target = plan
        if choice.layout != plan.layout:
            target = plan.graph.plan(
                plan.n_classes, chunk_edges=plan.chunk_edges, layout=choice.layout
            )
        result = self._delegate(choice).embed_with_plan(target, labels)
        result.execution_choice = choice
        self._record_drift(choice, result, plan.n_edges)
        return result

    # ------------------------------------------------------------------ #
    # Incremental protocol
    # ------------------------------------------------------------------ #
    def _patch_sums(self, S_flat, src, dst, delta_w, labels, n_classes):
        from ..core.gee_parallel import patch_sums_parallel

        # patch_sums_parallel already self-tunes: tiny deltas run the
        # vectorised kernel in-process, large ones thread the gather half.
        patch_sums_parallel(
            S_flat, src, dst, delta_w, labels, n_classes, n_workers=self.n_workers
        )
