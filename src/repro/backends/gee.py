"""Registered GEE execution backends.

Each class is a thin, capability-declaring wrapper over one of the
functional implementations in :mod:`repro.core`; the Ligra-family backends
reuse the :mod:`repro.ligra.backends` execution classes underneath (through
:func:`~repro.core.gee_ligra.gee_ligra` → ``LigraEngine`` →
``make_backend``) rather than duplicating their scheduling logic.

The canonical names, and the Table I columns they correspond to:

================== ============================================= ===========
name               implementation                                paper column
================== ============================================= ===========
python             interpreted reference loop (Algorithm 1)      GEE-Python
vectorized         NumPy scatter-add edge pass                   Numba serial
sparse             ``(A + Aᵀ)·W`` via scipy.sparse CSR matmul    Numba serial
                                                                 (C-speed ref)
ligra-serial       engine, one edge list at a time               GEE-Ligra S
ligra-vectorized   engine, flat NumPy slabs (alias: ``ligra``)   GEE-Ligra S
ligra-threads      engine, degree-balanced threads + atomics     —
ligra-processes    engine, forked workers + reduction            GEE-Ligra P
                   (alias: ``ligra-parallel``)
parallel           owner-computes rows over shared memory        GEE-Ligra P
================== ============================================= ===========

Every backend also implements the compiled-plan path
(``embed_with_plan``, see :mod:`repro.core.plan`): repeated embeds of one
``(graph, K)`` pair skip validation, index building and large allocations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.gee_ligra import gee_ligra, gee_ligra_with_plan
from ..core.gee_parallel import (
    gee_parallel,
    gee_parallel_chunked,
    gee_parallel_with_plan,
    patch_sums_parallel,
)
from ..core.gee_python import gee_python, gee_python_with_plan
from ..core.gee_sparse import (
    gee_sparse,
    gee_sparse_chunked,
    gee_sparse_with_plan,
    patch_sums_sparse,
)
from ..core.gee_vectorized import (
    gee_vectorized,
    gee_vectorized_chunked,
    gee_vectorized_with_plan,
    patch_sums_vectorized,
)
from ..graph.facade import Graph
from .registry import BackendCapabilities, GEEBackend, register_backend

__all__ = [
    "PythonLoopBackend",
    "VectorizedGEEBackend",
    "SparseMatmulGEEBackend",
    "LigraSerialGEEBackend",
    "LigraVectorizedGEEBackend",
    "LigraThreadsGEEBackend",
    "LigraProcessesGEEBackend",
    "ProcessParallelGEEBackend",
]


@register_backend(
    "python",
    capabilities=BackendCapabilities(
        description="interpreted reference edge loop (Algorithm 1)",
    ),
)
class PythonLoopBackend(GEEBackend):
    """The paper's GEE-Python baseline: a pure-Python loop over edges."""

    def _embed(self, graph: Graph, labels: np.ndarray, n_classes: Optional[int]):
        return gee_python(graph.edges, labels, n_classes)

    def _embed_with_plan(self, plan, labels: np.ndarray):
        return gee_python_with_plan(plan, labels)


@register_backend(
    "vectorized",
    capabilities=BackendCapabilities(
        supports_chunked=True,
        supports_incremental=True,
        supports_layout=True,
        description="single-core NumPy scatter-add edge pass (compiled-serial stand-in)",
    ),
)
class VectorizedGEEBackend(GEEBackend):
    """Fully vectorised single-core edge pass (the Numba-serial stand-in)."""

    _OPTIONS = {"chunk_edges": None}

    def _patch_sums(self, S_flat, src, dst, delta_w, labels, n_classes):
        patch_sums_vectorized(S_flat, src, dst, delta_w, labels, n_classes)

    def _embed(self, graph: Graph, labels: np.ndarray, n_classes: Optional[int]):
        return gee_vectorized(
            graph.edges, labels, n_classes, chunk_edges=self.chunk_edges
        )

    def _embed_with_plan(self, plan, labels: np.ndarray):
        if self.chunk_edges is not None:
            # Chunked runs exist to bound temporary-array size; the plan's
            # precompiled full-length index components defeat that, so
            # re-plan the graph chunked (cached per chunk size) and stream.
            # A requested layout carries over (chunked plans stream sorted
            # incidence blocks; the in-memory "blocked" bucketing has no
            # chunked counterpart and falls back to sorted).
            layout = None if plan.layout == "none" else "sorted"
            chunked = plan.graph.plan(
                plan.n_classes, chunk_edges=self.chunk_edges, layout=layout
            )
            return gee_vectorized_chunked(chunked, labels)
        return gee_vectorized_with_plan(plan, labels)

    def _embed_with_chunked_plan(self, plan, labels: np.ndarray):
        return gee_vectorized_chunked(plan, labels)


@register_backend(
    "sparse",
    capabilities=BackendCapabilities(
        supports_chunked=True,
        supports_incremental=True,
        description="scipy.sparse CSR matmul (A + A^T)W — C-speed serial reference",
    ),
)
class SparseMatmulGEEBackend(GEEBackend):
    """GEE as one sparse matrix product, ``Z = (A + Aᵀ)·W`` via SciPy.

    A serial reference point whose inner loop is compiled C: what a generic
    sparse-linear-algebra stack achieves on the same hardware without the
    paper's edge-pass formulation.
    """

    def _embed(self, graph: Graph, labels: np.ndarray, n_classes: Optional[int]):
        return gee_sparse(graph, labels, n_classes)

    def _embed_with_plan(self, plan, labels: np.ndarray):
        return gee_sparse_with_plan(plan, labels)

    def _embed_with_chunked_plan(self, plan, labels: np.ndarray):
        return gee_sparse_chunked(plan, labels)

    def _patch_sums(self, S_flat, src, dst, delta_w, labels, n_classes):
        patch_sums_sparse(S_flat, src, dst, delta_w, labels, n_classes)


class _LigraGEEBackend(GEEBackend):
    """Shared plumbing for the Ligra-engine family.

    ``engine_backend`` names the :mod:`repro.ligra.backends` execution class
    the engine schedules the dense edge map on; the graph's cached CSR view
    feeds the engine directly, so backend sweeps over one ``Graph`` build
    the adjacency once.
    """

    engine_backend = "serial"
    _OPTIONS = {"atomic": True}

    def _embed(self, graph: Graph, labels: np.ndarray, n_classes: Optional[int]):
        return gee_ligra(
            graph.csr,
            labels,
            n_classes,
            backend=self.engine_backend,
            n_workers=self.n_workers,
            atomic=self.atomic,
        )

    def _embed_with_plan(self, plan, labels: np.ndarray):
        return gee_ligra_with_plan(
            plan,
            labels,
            backend=self.engine_backend,
            n_workers=self.n_workers,
            atomic=self.atomic,
        )


@register_backend(
    "ligra-serial",
    capabilities=BackendCapabilities(
        description="Ligra engine, serial dense traversal (GEE-Ligra Serial)",
    ),
)
class LigraSerialGEEBackend(_LigraGEEBackend):
    engine_backend = "serial"


@register_backend(
    "ligra-vectorized",
    aliases=("ligra",),
    capabilities=BackendCapabilities(
        description="Ligra engine, vectorised dense traversal",
    ),
)
class LigraVectorizedGEEBackend(_LigraGEEBackend):
    engine_backend = "vectorized"


@register_backend(
    "ligra-threads",
    capabilities=BackendCapabilities(
        supports_n_workers=True,
        parallel=True,
        deterministic=False,
        description="Ligra engine, degree-balanced threads with lock-striped writeAdd",
    ),
)
class LigraThreadsGEEBackend(_LigraGEEBackend):
    engine_backend = "threads"


@register_backend(
    "ligra-processes",
    aliases=("ligra-parallel",),
    capabilities=BackendCapabilities(
        supports_n_workers=True,
        parallel=True,
        deterministic=False,
        description="Ligra engine, forked workers with private partials + reduction",
    ),
)
class LigraProcessesGEEBackend(_LigraGEEBackend):
    engine_backend = "processes"


@register_backend(
    "parallel",
    capabilities=BackendCapabilities(
        supports_n_workers=True,
        parallel=True,
        deterministic=True,
        supports_chunked=True,
        supports_incremental=True,
        supports_layout=True,
        description="owner-computes row partition over a persistent fork pool",
    ),
)
class ProcessParallelGEEBackend(GEEBackend):
    """The strong-scaling kernel: owner-computes rows, shared-memory output.

    Deterministic despite being parallel — every embedding row is computed
    start-to-finish by exactly one worker in a fixed traversal order.  The
    chunked (out-of-core) path trades that row partition for per-worker
    chunk slabs with private partials and one reduction, keeping the
    bounded-memory guarantee on the edge side; it too is deterministic
    (fixed slab assignment, fixed reduction order).
    """

    def _embed(self, graph: Graph, labels: np.ndarray, n_classes: Optional[int]):
        return gee_parallel(graph, labels, n_classes, n_workers=self.n_workers)

    def _embed_with_plan(self, plan, labels: np.ndarray):
        return gee_parallel_with_plan(plan, labels, n_workers=self.n_workers)

    def _embed_with_chunked_plan(self, plan, labels: np.ndarray):
        return gee_parallel_chunked(plan, labels, n_workers=self.n_workers)

    def _patch_sums(self, S_flat, src, dst, delta_w, labels, n_classes):
        patch_sums_parallel(
            S_flat, src, dst, delta_w, labels, n_classes, n_workers=self.n_workers
        )
