"""The execution-backend registry.

Every way of running the GEE edge pass (interpreted loop, vectorised NumPy,
the Ligra engine's serial / vectorized / threads / processes schedules, the
owner-computes process kernel) is wrapped in a :class:`GEEBackend` subclass
and registered under a canonical name with declared
:class:`BackendCapabilities`.  The registry is the single extension point
for execution strategies:

* :func:`register_backend` — class decorator that installs a backend (and
  optional legacy aliases) into the registry;
* :func:`get_backend` — instantiate a backend by name, with *validated*
  construction options (unsupported kwargs raise immediately instead of
  being silently ignored);
* :func:`list_backends` / :func:`backend_capabilities` — discovery.

Example
-------
>>> from repro.backends import get_backend, list_backends
>>> sorted(list_backends())  # doctest: +ELLIPSIS
['ligra-processes', 'ligra-serial', ...]
>>> backend = get_backend("parallel", n_workers=2)
>>> result = backend.embed(graph, labels, n_classes)  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type, Union

import numpy as np

from ..obs import core as _obs_core

__all__ = [
    "BackendCapabilities",
    "GEEBackend",
    "register_backend",
    "resolve_backend_name",
    "backend_class",
    "backend_capabilities",
    "backend_aliases",
    "get_backend",
    "list_backends",
]

#: Nesting level of observed dispatches (auto → delegate); see
#: :meth:`GEEBackend._run_observed`.
_DISPATCH_DEPTH = 0


@dataclass(frozen=True)
class BackendCapabilities:
    """Declared properties of an execution backend.

    Attributes
    ----------
    supports_weights:
        Whether weighted edge lists are handled (all current backends do).
    supports_n_workers:
        Whether the backend accepts an explicit worker count.  Passing
        ``n_workers`` to a backend without this capability raises at
        construction.
    parallel:
        Whether the edge pass can actually execute concurrently.
    deterministic:
        Whether repeated runs on identical inputs are bit-for-bit
        reproducible (concurrent accumulation reorders floating-point sums,
        so the threads/processes schedules are not).
    supports_chunked:
        Whether the backend executes the out-of-core chunked path: a
        :class:`~repro.graph.io.ChunkedEdgeSource` input to :meth:`embed`,
        or a :class:`~repro.core.plan.ChunkedPlan` to
        :meth:`embed_with_plan`.  Backends without this capability reject
        both instead of silently materialising the edges.
    supports_incremental:
        Whether the backend implements the O(Δ) patch kernel
        (:meth:`GEEBackend.patch_sums`) that maintains raw per-class sums
        under signed edge deltas — the engine room of the dynamic-graph
        subsystem (:class:`repro.stream.IncrementalEmbedding`).  Backends
        without it reject patch requests instead of silently re-embedding.
    supports_layout:
        Whether the backend executes the locality-optimized fused kernels
        of plans compiled with ``graph.plan(K, layout="sorted"|"blocked")``
        (see :class:`~repro.core.plan.FusedLayout`).  Backends without the
        capability still accept layout plans but run their classic
        arrival-order kernels over the plan's unpermuted edge arrays.
    supports_sharding:
        Whether the backend executes over owner-range shards
        (:class:`repro.shard.ShardedGraph`): per-shard raw class sums
        combined by tree reduction, with an ``n_shards`` construction
        option selecting the partition width.
    description:
        One-line human-readable summary shown by discovery helpers.
    """

    supports_weights: bool = True
    supports_n_workers: bool = False
    parallel: bool = False
    deterministic: bool = True
    supports_chunked: bool = False
    supports_incremental: bool = False
    supports_layout: bool = False
    supports_sharding: bool = False
    description: str = ""


class GEEBackend:
    """Base class for registered GEE execution backends.

    Subclasses implement :meth:`_embed` on a coerced
    :class:`~repro.graph.facade.Graph` and declare their construction
    options in ``_OPTIONS`` (name → default).  The base constructor
    validates every keyword: unknown options and ``n_workers`` on a backend
    without the ``supports_n_workers`` capability are rejected immediately,
    so misconfiguration fails at construction instead of being silently
    ignored at fit time.
    """

    #: Canonical registry name (set by :func:`register_backend`).
    name: str = "abstract"
    #: Declared capabilities (set/overridden by :func:`register_backend`).
    capabilities: BackendCapabilities = BackendCapabilities()
    #: Accepted constructor options and their defaults (``n_workers`` is
    #: handled separately through the capability flag).
    _OPTIONS: Dict[str, Any] = {}

    def __init__(self, *, n_workers: Optional[int] = None, **options: Any) -> None:
        cls = type(self)
        if n_workers is not None and not cls.capabilities.supports_n_workers:
            raise ValueError(
                f"backend {cls.name!r} does not support n_workers "
                f"(capabilities: parallel={cls.capabilities.parallel}); "
                "drop the argument or pick a parallel backend from "
                f"{[n for n in list_backends() if backend_capabilities(n).supports_n_workers]}"
            )
        unknown = sorted(set(options) - set(cls._OPTIONS))
        if unknown:
            supported = sorted(cls._OPTIONS)
            raise TypeError(
                f"backend {cls.name!r} got unsupported option(s) {unknown}; "
                f"supported options: {supported if supported else 'none'}"
            )
        self.n_workers = n_workers
        for key, default in cls._OPTIONS.items():
            setattr(self, key, options.get(key, default))

    # ------------------------------------------------------------------ #
    # Embedding protocol
    # ------------------------------------------------------------------ #
    def embed(self, graph, labels: np.ndarray, n_classes: Optional[int] = None):
        """Run the GEE edge pass on a graph-like input.

        Coerces ``graph`` through :meth:`Graph.coerce` (cached views are
        reused when a :class:`Graph` is passed) and returns an
        :class:`~repro.core.result.EmbeddingResult`.

        A :class:`~repro.graph.io.ChunkedEdgeSource` is accepted by
        backends declaring the ``supports_chunked`` capability and executes
        the bounded-memory chunked path (the source is never materialised);
        other backends reject it.
        """
        from ..graph.facade import Graph
        from ..graph.io import ChunkedEdgeSource

        if isinstance(graph, ChunkedEdgeSource):
            self._check_chunked_input(graph.is_weighted)
            from ..core.plan import ChunkedPlan
            from ..core.validation import infer_n_classes

            # Only K is needed to compile the plan; the full O(n) label
            # validation happens exactly once, inside the dispatched kernel
            # (the same contract as embed_with_plan).
            k = infer_n_classes(labels) if n_classes is None else int(n_classes)
            if k <= 0:
                raise ValueError(
                    "could not infer a positive number of classes; provide "
                    "n_classes or at least one labelled vertex"
                )
            chunked = ChunkedPlan(graph, k)
            return self._run_observed(
                "embed",
                lambda: self._embed_with_chunked_plan(chunked, labels),
                n_edges=getattr(graph, "n_edges", None),
            )
        g = Graph.coerce(graph)
        # Capability first: is_weighted can cost an O(s) scan on CSR-adopted
        # graphs, and every current backend supports weights.
        if not type(self).capabilities.supports_weights and g.is_weighted:
            raise ValueError(
                f"backend {type(self).name!r} does not support weighted graphs"
            )
        return self._run_observed(
            "embed", lambda: self._embed(g, labels, n_classes), n_edges=g.n_edges
        )

    __call__ = embed

    def embed_with_plan(self, plan, labels: np.ndarray):
        """Run the edge pass on a compiled :class:`~repro.core.plan.EmbedPlan`.

        The plan (from :meth:`repro.graph.facade.Graph.plan`) already holds
        every label-independent artifact — validated edges, flat scatter
        indices, CSR/CSC views, output buffers — so repeated calls on the
        same graph do no validation, no index rebuilding and no large
        allocations.  Backends with a dedicated plan kernel return an
        embedding that views the plan's reused output buffer (valid until
        the next plan-based call; see ``EmbeddingResult.detached``).

        Label validation (the only per-call O(n) check left) happens
        exactly once, inside the dispatched kernel.

        A :class:`~repro.core.plan.ChunkedPlan` (from
        ``graph.plan(K, chunk_edges=...)`` or a standalone
        :class:`~repro.graph.io.ChunkedEdgeSource`) routes to the
        bounded-memory chunked kernel; backends without the
        ``supports_chunked`` capability reject it.
        """
        if getattr(plan, "is_chunked", False):
            self._check_chunked_input(plan.source.is_weighted)
            return self._run_observed(
                "embed_with_plan",
                lambda: self._embed_with_chunked_plan(plan, labels),
                n_edges=plan.n_edges,
            )
        if not type(self).capabilities.supports_weights and plan.graph.is_weighted:
            raise ValueError(
                f"backend {type(self).name!r} does not support weighted graphs"
            )
        return self._run_observed(
            "embed_with_plan",
            lambda: self._embed_with_plan(plan, labels),
            n_edges=plan.n_edges,
        )

    def _embed_with_plan(self, plan, labels: np.ndarray):
        # Fallback for backends without a dedicated plan kernel: the plan's
        # graph still contributes its cached CSR views.
        y = plan.validate_labels(labels)
        return self._embed(plan.graph, y, plan.n_classes)

    def _check_chunked_input(self, is_weighted: bool) -> None:
        """Gate a chunked input (source or plan) on the declared capabilities."""
        caps = type(self).capabilities
        if not caps.supports_chunked:
            raise ValueError(
                f"backend {type(self).name!r} does not support chunked "
                "(out-of-core) execution; chunk-capable backends: "
                f"{[n for n in list_backends() if backend_capabilities(n).supports_chunked]}"
            )
        if not caps.supports_weights and is_weighted:
            raise ValueError(
                f"backend {type(self).name!r} does not support weighted graphs"
            )

    def _embed_with_chunked_plan(self, plan, labels: np.ndarray):
        # Only reachable for backends declaring supports_chunked; they must
        # provide the kernel.
        raise NotImplementedError(  # pragma: no cover - contract guard
            f"backend {type(self).name!r} declares supports_chunked but does "
            "not implement _embed_with_chunked_plan"
        )

    # ------------------------------------------------------------------ #
    # Incremental (O(Δ)) maintenance protocol
    # ------------------------------------------------------------------ #
    def patch_sums(
        self,
        S_flat: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        delta_w: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
    ) -> None:
        """Apply a signed edge delta to flat raw per-class sums, in place.

        ``S_flat`` is the flattened ``(n*K,)`` raw-sum matrix
        ``S[u, c] = Σ_{(u,v) or (v,u) incident, Y[v]=c} w`` (the label-scaled
        embedding is ``Z = S·diag(1/n_c)``).  For every signed edge
        ``(u, v, Δw)`` the kernel performs ``S[u, Y[v]] += Δw`` and
        ``S[v, Y[u]] += Δw`` for known labels — additions pass ``+w``,
        removals ``-w`` and weight updates ``new − old``, so one call
        maintains the embedding under any committed mutation batch in
        O(Δ) instead of O(E).

        Only backends declaring the ``supports_incremental`` capability
        implement the kernel; others raise.
        """
        caps = type(self).capabilities
        if not caps.supports_incremental:
            raise ValueError(
                f"backend {type(self).name!r} does not support incremental "
                "(O(Δ) patch) execution; incremental-capable backends: "
                f"{[n for n in list_backends() if backend_capabilities(n).supports_incremental]}"
            )
        if src.size == 0:
            return
        if not _obs_core._ENABLED:
            self._patch_sums(S_flat, src, dst, delta_w, labels, int(n_classes))
            return
        from ..obs import metrics as obs_metrics

        obs_metrics.count("edges_patched", int(src.size))
        with _obs_core.Span(
            "backend.patch_sums",
            {"backend": type(self).name, "delta_edges": int(src.size)},
        ):
            self._patch_sums(S_flat, src, dst, delta_w, labels, int(n_classes))

    def _patch_sums(
        self,
        S_flat: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        delta_w: np.ndarray,
        labels: np.ndarray,
        n_classes: int,
    ) -> None:
        raise NotImplementedError(  # pragma: no cover - contract guard
            f"backend {type(self).name!r} declares supports_incremental but "
            "does not implement _patch_sums"
        )

    def _embed(self, graph, labels: np.ndarray, n_classes: Optional[int]):
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def _run_observed(self, kind: str, fn, *, n_edges: Optional[int] = None):
        """Dispatch ``fn`` under a ``backend.<kind>`` span when tracing is on.

        The disabled path is one flag check and a direct call — no span, no
        allocation.  Enabled, the wrapper records the dispatch span, counts
        the edges processed, synthesizes child phase spans from the result's
        timing breakdown (the kernels themselves stay span-free so the hot
        loops are untouched), and attaches a compact telemetry summary of
        everything recorded during the call to ``result.telemetry``.

        Dispatch may nest (the ``auto`` backend's embed delegates to another
        backend's ``embed_with_plan``): every level records its span, but
        only the outermost counts edges, synthesizes phases and attaches
        telemetry — otherwise one logical pass would double-count.
        """
        global _DISPATCH_DEPTH
        if not _obs_core._ENABLED:
            return fn()
        from ..obs import export as obs_export
        from ..obs import metrics as obs_metrics

        backend_name = type(self).name
        start = _obs_core.mark()
        span = _obs_core.Span(
            f"backend.{kind}", {"backend": backend_name, "n_edges": n_edges}
        ).begin()
        _DISPATCH_DEPTH += 1
        try:
            result = fn()
        except BaseException as exc:
            span.finish(error=type(exc).__name__)
            raise
        finally:
            _DISPATCH_DEPTH -= 1
        span.finish()
        if _DISPATCH_DEPTH:
            return result
        if n_edges:
            obs_metrics.count("edges_processed", int(n_edges))
        _synthesize_phase_spans(span, result, backend_name)
        try:
            result.telemetry = obs_export.telemetry(
                records=_obs_core.records_since(start)
            )
        except AttributeError:  # pragma: no cover - non-result return values
            pass
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        opts = {key: getattr(self, key) for key in type(self)._OPTIONS}
        if type(self).capabilities.supports_n_workers:
            opts["n_workers"] = self.n_workers
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(opts.items()))
        return f"<{type(self).__name__} name={type(self).name!r} {inner}>".replace(" >", ">")


def _synthesize_phase_spans(span, result, backend_name: str) -> None:
    """Turn a result's timing breakdown into child spans of the dispatch span.

    The kernels report per-phase wall times (``preprocess``, ``projection``,
    ``edge_pass``) but deliberately contain no span calls — instrumenting
    them would put clock reads inside the paths the overhead gate protects.
    The phases ran back-to-back, so laying them out sequentially from the
    dispatch span's start reconstructs the real sub-structure; phases whose
    sum would overrun the parent (a kernel that didn't follow the
    convention) are dropped rather than drawn wrong.
    """
    timings = getattr(result, "timings", None)
    if not timings:
        return
    t = span.t0
    end = span.t0 + span.duration + 1e-9
    for phase in ("preprocess", "projection", "edge_pass"):
        dur = timings.get(phase)
        if not dur or dur <= 0:
            continue
        if t + dur > end:
            break
        _obs_core.record_span(f"phase.{phase}", t, dur, {"backend": backend_name})
        t += dur


#: name -> backend class
_REGISTRY: Dict[str, Type[GEEBackend]] = {}
#: legacy/spelling alias -> canonical name
_ALIASES: Dict[str, str] = {}


def register_backend(
    name: str,
    *,
    capabilities: Optional[BackendCapabilities] = None,
    aliases: Tuple[str, ...] = (),
):
    """Class decorator: install a :class:`GEEBackend` subclass in the registry.

    ``capabilities`` overrides the class attribute; ``aliases`` are
    alternative names that resolve to the canonical one (used to keep the
    historical ``"ligra"`` / ``"ligra-parallel"`` method strings working).
    Re-registering an existing name raises — shadowing a backend silently
    would make experiment results ambiguous.
    """

    def decorator(cls: Type[GEEBackend]) -> Type[GEEBackend]:
        if not (isinstance(cls, type) and issubclass(cls, GEEBackend)):
            raise TypeError(f"@register_backend requires a GEEBackend subclass, got {cls!r}")
        for taken in (name, *aliases):
            if taken in _REGISTRY or taken in _ALIASES:
                raise ValueError(f"backend name {taken!r} is already registered")
        cls.name = name
        if capabilities is not None:
            cls.capabilities = capabilities
        _REGISTRY[name] = cls
        for alias in aliases:
            _ALIASES[alias] = name
        return cls

    return decorator


def resolve_backend_name(name: str) -> str:
    """Canonical registry name for ``name`` (resolving aliases), or raise."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    if name == "native":
        # The native backend registers conditionally: absent numba (or
        # REPRO_DISABLE_NATIVE) means absent from the registry, and the
        # error should say why instead of listing it as merely unknown.
        from ..native.availability import native_status

        raise ValueError(
            f"backend 'native' is not available: {native_status()}; "
            f"registered backends: {list_backends()}"
        )
    raise ValueError(
        f"unknown backend {name!r}; registered backends: {list_backends()} "
        f"(aliases: {sorted(_ALIASES)})"
    )


def backend_class(name: str) -> Type[GEEBackend]:
    """The backend class registered under ``name`` (aliases resolve)."""
    return _REGISTRY[resolve_backend_name(name)]


def backend_capabilities(name: str) -> BackendCapabilities:
    """Declared capabilities of the backend registered under ``name``."""
    return backend_class(name).capabilities


def backend_aliases() -> Dict[str, str]:
    """Copy of the alias → canonical-name mapping."""
    return dict(_ALIASES)


def get_backend(name: Union[str, GEEBackend], **options: Any) -> GEEBackend:
    """Instantiate a backend by name with validated construction options.

    An already-constructed :class:`GEEBackend` passes through unchanged
    (``options`` must then be empty).
    """
    if isinstance(name, GEEBackend):
        if options:
            raise TypeError(
                "options cannot be combined with an already-constructed backend "
                f"instance ({name!r}); construct it with the options instead"
            )
        return name
    return backend_class(name)(**options)


def list_backends() -> List[str]:
    """Sorted canonical names of every registered backend."""
    return sorted(_REGISTRY)
