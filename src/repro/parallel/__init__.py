"""Shared-memory process parallelism substrate (pools, partitioning, reductions)."""

from .partition import (
    balanced_edge_ranges_by_vertex,
    block_ranges,
    chunk_ranges,
    interleaved_assignment,
)
from .pool import (
    ForkWorkerPool,
    effective_worker_count,
    fork_available,
    resolve_worker_count,
)
from .reduction import inplace_accumulate, sum_reduce, tree_reduce
from .scheduling import SchedulePolicy, make_schedule
from .shm import SharedArrayHandle, SharedArraySet, attach, attach_many

__all__ = [
    "block_ranges",
    "balanced_edge_ranges_by_vertex",
    "chunk_ranges",
    "interleaved_assignment",
    "ForkWorkerPool",
    "effective_worker_count",
    "resolve_worker_count",
    "fork_available",
    "sum_reduce",
    "tree_reduce",
    "inplace_accumulate",
    "SchedulePolicy",
    "make_schedule",
    "SharedArrayHandle",
    "SharedArraySet",
    "attach",
    "attach_many",
]
