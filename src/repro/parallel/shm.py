"""Shared-memory NumPy arrays for process-based parallelism.

CPython's GIL prevents threads from running the GEE edge loop concurrently,
so true shared-memory parallelism in pure Python goes through processes.
This module wraps :mod:`multiprocessing.shared_memory` so that worker
processes can map the *same* physical buffers (edge arrays, the projection
matrix ``W`` and the embedding ``Z``) without copying — the moral equivalent
of the threads-over-one-heap model Ligra relies on.

Typical usage::

    with SharedArraySet() as shm:
        src = shm.share("src", edges.src)        # copied into shared memory
        Z = shm.zeros("Z", (n, K), np.float64)   # allocated in shared memory
        ... spawn workers, pass shm.handles() ...

Workers call :func:`attach` with the handle dictionary to get views of the
same buffers.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = ["SharedArrayHandle", "SharedArraySet", "attach", "attach_many"]


def _release_segments(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    """Close and unlink every segment in a :class:`SharedArraySet`'s dict.

    Module-level on purpose: it is the callback of a ``weakref.finalize``
    and must not hold a reference back to the owning set (a bound method
    would keep the instance alive forever — exactly the leak the finalizer
    exists to prevent).
    """
    obs_metrics.gauge_add("shm.segments_live", -len(segments))
    for seg in segments.values():
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
    segments.clear()


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable description of a shared-memory NumPy array."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str

    def nbytes(self) -> int:
        """Size of the underlying buffer in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SharedArraySet:
    """Owner of a collection of named shared-memory arrays.

    The creating process owns the segments: :meth:`close` (or use as a
    context manager) unlinks every segment.  Child processes must only
    *attach* (see :func:`attach`), never unlink.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._handles: Dict[str, SharedArrayHandle] = {}
        self._closed = False
        # Interpreter-exit *and* garbage-collection safety net in one:
        # ``weakref.finalize`` runs at whichever comes first and — unlike
        # the former ``atexit.register(self.close)`` — holds no strong
        # reference to the set, so closed instances are collectable
        # immediately instead of being pinned for the life of the process
        # (one registration per pool/plan/shard instance added up).
        self._finalizer = weakref.finalize(self, _release_segments, self._segments)

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def zeros(self, name: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Allocate a zero-initialised shared array under ``name``."""
        return self._allocate(name, shape, np.dtype(dtype), initial=None)

    def empty(self, name: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Allocate a shared array without the explicit zero fill.

        Freshly created POSIX shared-memory segments are zero pages anyway;
        use this when every element will be overwritten (it skips one full
        pass over the buffer).
        """
        return self._allocate(name, shape, np.dtype(dtype), initial=None, fill=False)

    def share(self, name: str, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into shared memory under ``name`` and return the view."""
        array = np.ascontiguousarray(array)
        return self._allocate(name, array.shape, array.dtype, initial=array)

    def _allocate(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        initial: Optional[np.ndarray],
        fill: bool = True,
    ) -> np.ndarray:
        if self._closed:
            raise RuntimeError("SharedArraySet is closed")
        if name in self._segments:
            raise KeyError(f"shared array {name!r} already exists")
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            view = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
            if initial is None:
                if fill:
                    view.fill(0)
            else:
                view[...] = initial
        except BaseException:
            # The segment is not yet registered in self._segments, so
            # close() would never release it: unlink it here or it leaks
            # in /dev/shm until reboot.
            seg.close()
            seg.unlink()
            raise
        self._segments[name] = seg
        self._arrays[name] = view
        self._handles[name] = SharedArrayHandle(seg.name, tuple(shape), dtype.str)
        obs_metrics.gauge_add("shm.segments_live", 1)
        if initial is not None:
            # Only staged copies count as data moved; zero/empty output
            # allocations are freshly mapped pages, not interprocess traffic.
            obs_metrics.count("shm.bytes_moved", nbytes)
        return view

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def handles(self) -> Dict[str, SharedArrayHandle]:
        """Picklable handles for all arrays, to pass to worker processes."""
        return dict(self._handles)

    # ------------------------------------------------------------------ #
    # Lifetime
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release and unlink every shared segment (idempotent).

        Detaches the exit/GC finalizer as it runs, so a closed set keeps no
        process-lifetime registrations behind and is garbage-collectable.
        """
        if self._closed:
            return
        self._closed = True
        self._arrays.clear()
        self._finalizer()
        self._handles.clear()

    def __enter__(self) -> "SharedArraySet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach(handle: SharedArrayHandle) -> Tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach to a shared array created in another process.

    Returns the NumPy view *and* the ``SharedMemory`` object; the caller
    must keep the latter alive for as long as the view is used and call
    ``close()`` (but never ``unlink()``) when done.
    """
    # Python <3.13 registers *attached* segments with the resource tracker as
    # if this process owned them, producing spurious "leaked shared_memory"
    # warnings (and unregister KeyErrors) at shutdown even though only the
    # creating SharedArraySet owns and unlinks them.  Suppress the
    # registration for the duration of the attach; ownership bookkeeping
    # stays solely with the creator.
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _no_shm_register(name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = _no_shm_register
    try:
        seg = shared_memory.SharedMemory(name=handle.shm_name)
    finally:
        resource_tracker.register = original_register
    view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf)
    return view, seg


def attach_many(
    handles: Dict[str, SharedArrayHandle],
) -> Tuple[Dict[str, np.ndarray], list]:
    """Attach to every handle in a dictionary; returns (views, segments)."""
    views: Dict[str, np.ndarray] = {}
    segments = []
    try:
        for name, handle in handles.items():
            view, seg = attach(handle)
            views[name] = view
            segments.append(seg)
    except BaseException:
        # A failed attach mid-dictionary must not strand the mappings that
        # already succeeded (close only: attachers never unlink).
        for seg in segments:
            seg.close()
        raise
    return views, segments
