"""Work partitioning strategies.

GEE-Ligra's parallel pass distributes the edge set over workers.  Ligra's
``edgeMapDense`` hands each vertex's adjacency list to one worker, which
implicitly load-balances by vertex; when parallelising directly over a flat
edge list the analogous choices are contiguous blocks, degree-balanced
vertex ranges, or fine-grained dynamic chunks.  All three are implemented
here and benchmarked in the ablation benches.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "block_ranges",
    "balanced_edge_ranges_by_vertex",
    "chunk_ranges",
    "interleaved_assignment",
]


def block_ranges(n_items: int, n_parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into ``n_parts`` contiguous, near-equal blocks.

    Parts differ in size by at most one; empty parts are returned as empty
    ranges so the result always has exactly ``n_parts`` entries.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    base = n_items // n_parts
    rem = n_items % n_parts
    ranges = []
    start = 0
    for i in range(n_parts):
        size = base + (1 if i < rem else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def balanced_edge_ranges_by_vertex(
    indptr: np.ndarray, n_parts: int
) -> List[Tuple[int, int]]:
    """Partition vertices into ranges with near-equal total edge counts.

    Given a CSR ``indptr``, returns ``n_parts`` vertex ranges ``(v_lo, v_hi)``
    such that each range owns roughly ``s / n_parts`` edges.  This is the
    standard remedy for skewed social-network degree distributions, where
    naive vertex blocks leave one worker holding all the hubs.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    indptr = np.asarray(indptr, dtype=np.int64)
    n = indptr.size - 1
    total_edges = int(indptr[-1])
    if n == 0:
        return [(0, 0)] * n_parts
    targets = np.linspace(0, total_edges, n_parts + 1)
    # For each target edge offset find the first vertex whose prefix passes it.
    cuts = np.searchsorted(indptr, targets, side="left")
    cuts[0] = 0
    cuts[-1] = n
    cuts = np.clip(cuts, 0, n)
    # Enforce monotonicity (possible ties with empty vertices).
    cuts = np.maximum.accumulate(cuts)
    return [(int(cuts[i]), int(cuts[i + 1])) for i in range(n_parts)]


def chunk_ranges(n_items: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into fixed-size chunks (last may be short).

    Used by the dynamic scheduler: many more chunks than workers so that
    stragglers self-balance.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    return [(lo, min(lo + chunk_size, n_items)) for lo in range(0, n_items, chunk_size)]


def interleaved_assignment(n_items: int, n_parts: int) -> List[np.ndarray]:
    """Round-robin assignment of item indices to parts.

    Cache-unfriendly but perfectly balanced for any monotone cost gradient;
    included for the scheduling ablation.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    return [np.arange(i, n_items, n_parts, dtype=np.int64) for i in range(n_parts)]
