"""A persistent fork-based worker pool for shared-memory kernels.

``multiprocessing.Pool`` re-pickles every argument per call; for the GEE
edge pass we instead want workers that (a) are forked once, (b) attach to
the shared-memory graph buffers once, and (c) then receive only tiny task
descriptors (edge ranges) per call.  :class:`ForkWorkerPool` implements that
pattern with plain ``multiprocessing.Process`` + queues and degrades
gracefully to in-process execution when only one worker is requested or the
platform cannot fork.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs import core as _obs

__all__ = [
    "ForkWorkerPool",
    "WorkerTaskError",
    "effective_worker_count",
    "resolve_worker_count",
    "fork_available",
]


class WorkerTaskError(RuntimeError):
    """A task failed inside a pooled worker.

    Carries enough context to identify *which* piece of work failed —
    ``task_id`` (position in the submitted batch) and ``label`` (the
    caller-supplied description: shard index, chunk range, backend name) —
    on top of the worker-side traceback embedded in the message.
    Subclasses :class:`RuntimeError`, which is what :meth:`ForkWorkerPool.map`
    historically raised.
    """

    def __init__(self, task_id: int, label: Optional[str], worker_traceback: str):
        self.task_id = task_id
        self.label = label
        self.worker_traceback = worker_traceback
        where = f"worker task {task_id}"
        if label:
            where += f" ({label})"
        super().__init__(f"{where} failed:\n{worker_traceback}")


def fork_available() -> bool:
    """Whether the ``fork`` start method is usable on this platform."""
    try:
        return "fork" in mp.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def effective_worker_count(requested: Optional[int] = None) -> int:
    """Clamp a requested worker count to the machine's CPU count.

    ``None`` or ``0`` means "use all CPUs".  This is the *auto-sizing*
    helper for defaults; explicit user requests go through
    :func:`resolve_worker_count`, which honours the request exactly instead
    of silently clamping it.
    """
    n_cpus = os.cpu_count() or 1
    if requested is None or requested <= 0:
        return n_cpus
    return max(1, min(int(requested), n_cpus))


def resolve_worker_count(
    requested: Optional[int] = None, *, max_oversubscription: int = 8
) -> int:
    """Resolve an explicit worker request: honour it exactly or raise.

    ``None`` or ``0`` means "use all CPUs".  A positive request is returned
    unchanged — never silently clamped to the CPU count; oversubscription is
    legitimate (e.g. reproducing a worker sweep on a smaller machine).
    A *negative* request is outside the documented None/0 contract and
    raises :class:`ValueError` (it used to be treated as "all CPUs", which
    let typos like ``n_workers=-3`` silently succeed).  Requests beyond
    ``max(16, max_oversubscription × CPUs)`` are almost certainly mistakes
    (they would fork thousands of processes) and raise
    :class:`ValueError` instead of degrading.
    """
    n_cpus = os.cpu_count() or 1
    if requested is None:
        return n_cpus
    requested = int(requested)
    if requested < 0:
        raise ValueError(
            f"n_workers={requested} is negative; pass a positive worker count, "
            "or None/0 to use every CPU"
        )
    if requested == 0:
        return n_cpus
    limit = max(16, n_cpus * max_oversubscription)
    if requested > limit:
        raise ValueError(
            f"n_workers={requested} exceeds the oversubscription limit of {limit} "
            f"on this machine ({n_cpus} CPUs); request at most {limit} workers or "
            "pass n_workers=None to use every CPU"
        )
    return requested


def _worker_main(
    worker_id: int,
    init_fn: Optional[Callable[..., Dict[str, Any]]],
    init_args: tuple,
    task_queue: "mp.Queue",
    result_queue: "mp.Queue",
) -> None:
    """Worker loop: run the initialiser once, then serve tasks until None."""
    # A forked worker inherits the parent's span buffer and tracing flag;
    # drop both so this process only ever ships spans it produced itself.
    _obs.clear()
    _obs.disable()
    try:
        context: Dict[str, Any] = {}
        if init_fn is not None:
            context = init_fn(worker_id, *init_args) or {}
    except BaseException:
        result_queue.put(("__init_error__", worker_id, traceback.format_exc()))
        return
    result_queue.put(("__ready__", worker_id, None))
    while True:
        item = task_queue.get()
        if item is None:
            break
        task_id, fn, args, trace_on, label = item
        # Mirror the parent's tracing flag for the duration of the task so
        # instrumented code inside ``fn`` records into this worker's buffer.
        if trace_on != _obs.enabled():
            _obs.enable() if trace_on else _obs.disable()
        span = None
        if trace_on:
            span = _obs.Span(
                "worker.task", {"worker": worker_id, "label": label}
            ).begin()
        try:
            result, err = fn(context, *args), None
        except BaseException:
            result, err = None, traceback.format_exc()
        if span is not None:
            span.finish(error=None if err is None else "task failed")
        payload = _obs.drain_for_ship() if trace_on else None
        result_queue.put((task_id, err, result, payload))


class ForkWorkerPool:
    """Pool of forked workers sharing a one-time initialised context.

    Parameters
    ----------
    n_workers:
        Number of worker processes.  ``1`` short-circuits to in-process
        execution (no fork), which keeps the code path identical for the
        serial baseline.
    initializer:
        ``initializer(worker_id, *initargs) -> dict`` run once in each
        worker; the returned dict is passed as the first argument to every
        task function.  This is where workers attach shared memory.
    """

    def __init__(
        self,
        n_workers: int,
        initializer: Optional[Callable[..., Dict[str, Any]]] = None,
        initargs: tuple = (),
    ) -> None:
        self.n_workers = max(1, int(n_workers))
        self._initializer = initializer
        self._initargs = initargs
        self._procs: List[mp.process.BaseProcess] = []
        self._task_queue: Optional[mp.Queue] = None
        self._result_queue: Optional[mp.Queue] = None
        self._closed = False
        self._inline = self.n_workers == 1 or not fork_available()
        self._inline_context: Optional[Dict[str, Any]] = None
        if not self._inline:
            self._start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _start(self) -> None:
        ctx = mp.get_context("fork")
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        for wid in range(self.n_workers):
            p = ctx.Process(
                target=_worker_main,
                args=(
                    wid,
                    self._initializer,
                    self._initargs,
                    self._task_queue,
                    self._result_queue,
                ),
                daemon=True,
            )
            p.start()
            self._procs.append(p)
        ready = 0
        while ready < self.n_workers:
            tag, wid, err = self._result_queue.get()
            if tag == "__init_error__":
                self.close()
                raise RuntimeError(f"worker {wid} failed to initialise:\n{err}")
            if tag == "__ready__":
                ready += 1

    @property
    def is_inline(self) -> bool:
        """True when tasks run in the calling process (no fork)."""
        return self._inline

    def close(self) -> None:
        """Shut down worker processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._inline and self._task_queue is not None:
            for _ in self._procs:
                try:
                    self._task_queue.put(None)
                except Exception:  # pragma: no cover - defensive
                    pass
            for p in self._procs:
                p.join(timeout=5)
                if p.is_alive():  # pragma: no cover - defensive
                    p.terminate()
        self._procs.clear()
        self._inline_context = None

    def __enter__(self) -> "ForkWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _ensure_inline_context(self) -> Dict[str, Any]:
        if self._inline_context is None:
            if self._initializer is not None:
                self._inline_context = self._initializer(0, *self._initargs) or {}
            else:
                self._inline_context = {}
        return self._inline_context

    def map(
        self,
        fn: Callable[..., Any],
        task_args: Sequence[tuple],
        *,
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """Run ``fn(context, *args)`` for every argument tuple.

        Results are returned in task order.  Tasks are distributed to idle
        workers dynamically (a shared queue), so uneven task costs
        self-balance — the same behaviour as a work-stealing scheduler at
        the granularity of one task.

        ``labels`` (optional, same length as ``task_args``) describes each
        task for diagnostics: a failing forked task raises
        :class:`WorkerTaskError` carrying its label (shard index, chunk
        range, backend name) so the error identifies *which* piece of work
        failed, and the label lands on the worker's ``worker.task`` span.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        task_args = list(task_args)
        if labels is not None and len(labels) != len(task_args):
            raise ValueError(
                f"labels length {len(labels)} != task count {len(task_args)}"
            )
        if self._inline:
            context = self._ensure_inline_context()
            results = []
            for task_id, args in enumerate(task_args):
                try:
                    results.append(fn(context, *args))
                except BaseException:
                    # Inline tasks propagate the original exception unchanged
                    # (no wrapping); the failure event still identifies the task.
                    _obs.record_event(
                        "worker.task_failed",
                        task_id=task_id,
                        label=labels[task_id] if labels else None,
                        inline=True,
                    )
                    raise
            return results
        assert self._task_queue is not None and self._result_queue is not None
        trace_on = _obs.enabled()
        for task_id, args in enumerate(task_args):
            label = labels[task_id] if labels else None
            self._task_queue.put((task_id, fn, args, trace_on, label))
        results: List[Any] = [None] * len(task_args)
        received = 0
        failure: Optional[WorkerTaskError] = None
        while received < len(task_args):
            try:
                task_id, err, value, payload = self._result_queue.get(timeout=5.0)
            except queue.Empty:
                # No result in a while: make sure the workers are still alive,
                # otherwise this map would wait forever.
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    raise RuntimeError(
                        f"{len(dead)} worker process(es) died while running tasks "
                        f"(exit codes {[p.exitcode for p in dead]})"
                    )
                continue
            _obs.absorb(payload)
            if err is not None and failure is None:
                label = labels[task_id] if labels else None
                _obs.record_event(
                    "worker.task_failed", task_id=task_id, label=label
                )
                failure = WorkerTaskError(task_id, label, err)
            results[task_id] = value
            received += 1
        if failure is not None:
            raise failure
        return results

    def run_on_all(
        self,
        fn: Callable[..., Any],
        *args: Any,
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """Run the same task once per worker (e.g. barrier-style setup)."""
        return self.map(fn, [tuple(args)] * self.n_workers, labels=labels)
