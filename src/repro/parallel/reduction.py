"""Reductions for combining per-worker partial results.

The process-parallel GEE kernel has each worker accumulate a private copy of
the embedding ``Z`` for its edge range; the partials are then combined.
For `p` workers and an `(n, K)` embedding the combine step costs
``O(n·K·p)`` which, for the paper's configurations (``s >> n·K``), is small
relative to the ``O(s)`` edge pass — this is what lets the private-partial
strategy stand in for Ligra's hardware atomics without changing the
scalability story (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..obs import trace

__all__ = ["sum_reduce", "tree_reduce", "inplace_accumulate"]


def sum_reduce(partials: Sequence[np.ndarray]) -> np.ndarray:
    """Sum a sequence of equally shaped arrays into a new array."""
    partials = list(partials)
    if not partials:
        raise ValueError("nothing to reduce")
    out = np.array(partials[0], dtype=np.float64, copy=True)
    for p in partials[1:]:
        if p.shape != out.shape:
            raise ValueError(f"shape mismatch in reduction: {p.shape} vs {out.shape}")
        out += p
    return out


def tree_reduce(partials: Sequence[np.ndarray]) -> np.ndarray:
    """Pairwise (tree) reduction.

    Mathematically identical to :func:`sum_reduce` up to floating-point
    association order; the tree shape halves the length of the dependency
    chain, which matters when the reduction itself is parallelised or when
    accumulation error on long chains is a concern.
    """
    partials = [np.asarray(p, dtype=np.float64) for p in partials]
    if not partials:
        raise ValueError("nothing to reduce")
    if len(partials) == 1:
        return partials[0].copy()
    with trace("tree_reduce", n_partials=len(partials)):
        level: List[np.ndarray] = [p.copy() for p in partials]
        while len(level) > 1:
            nxt: List[np.ndarray] = []
            for i in range(0, len(level) - 1, 2):
                if level[i].shape != level[i + 1].shape:
                    raise ValueError("shape mismatch in reduction")
                nxt.append(level[i] + level[i + 1])
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            level = nxt
        return level[0]


def inplace_accumulate(target: np.ndarray, partials: Sequence[np.ndarray]) -> np.ndarray:
    """Add every partial into ``target`` (which is returned)."""
    for p in partials:
        if p.shape != target.shape:
            raise ValueError(f"shape mismatch in reduction: {p.shape} vs {target.shape}")
        target += p
    return target
