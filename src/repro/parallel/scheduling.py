"""Chunk scheduling policies for the parallel edge pass.

Ligra's runtime schedules the dense edge map with a parallel-for over
vertices; the grain size (how many vertices or edges one steal unit covers)
controls the balance between scheduling overhead and load imbalance.  The
policies here pick chunk boundaries for a given strategy and are exercised
by the scheduling ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .partition import balanced_edge_ranges_by_vertex, block_ranges, chunk_ranges

__all__ = ["SchedulePolicy", "make_schedule"]


@dataclass(frozen=True)
class SchedulePolicy:
    """A named scheduling policy.

    Attributes
    ----------
    name:
        ``"static"`` — one contiguous block per worker;
        ``"dynamic"`` — many fixed-size chunks pulled from a shared queue;
        ``"guided"`` — exponentially decreasing chunk sizes;
        ``"degree-balanced"`` — vertex ranges with equal edge counts
        (requires a CSR ``indptr``).
    chunk_size:
        Base chunk size for the dynamic policy (items per chunk).
    min_chunk:
        Smallest chunk the guided policy will emit.
    """

    name: str = "static"
    chunk_size: int = 65536
    min_chunk: int = 1024

    def __post_init__(self) -> None:
        if self.name not in ("static", "dynamic", "guided", "degree-balanced"):
            raise ValueError(f"unknown schedule policy {self.name!r}")
        if self.chunk_size <= 0 or self.min_chunk <= 0:
            raise ValueError("chunk sizes must be positive")


def make_schedule(
    policy: SchedulePolicy,
    n_items: int,
    n_workers: int,
    indptr: np.ndarray | None = None,
) -> List[Tuple[int, int]]:
    """Produce the list of (lo, hi) item ranges for a policy.

    For ``degree-balanced`` the items are interpreted as *vertices* and
    ``indptr`` must be supplied; every other policy treats items as a flat
    range (edges).
    """
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    if policy.name == "static":
        return [r for r in block_ranges(n_items, n_workers)]
    if policy.name == "dynamic":
        return chunk_ranges(n_items, policy.chunk_size)
    if policy.name == "degree-balanced":
        if indptr is None:
            raise ValueError("degree-balanced scheduling requires a CSR indptr")
        return balanced_edge_ranges_by_vertex(indptr, n_workers)
    # guided: halve the remaining work / workers each round.
    ranges: List[Tuple[int, int]] = []
    remaining = n_items
    lo = 0
    while remaining > 0:
        size = max(policy.min_chunk, remaining // (2 * n_workers))
        size = min(size, remaining)
        ranges.append((lo, lo + size))
        lo += size
        remaining -= size
    return ranges
