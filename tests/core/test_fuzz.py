"""Property-style fuzz tests (seeded, deterministic — no hypothesis dep).

Two invariants that parametrised example tests cover thinly:

* ``scatter_add``'s dense (whole-output ``bincount``) and sparse
  (``np.unique`` + compacted ``bincount``) strategies must agree with the
  ``np.add.at`` oracle — and with each other — on *any* index/weight
  profile, since the fill-ratio threshold that picks between them is a
  perf tunable, never a semantics switch;
* a cached :class:`~repro.core.plan.EmbedPlan` must be evicted when the
  underlying edge data is mutated in place (the sampled fingerprint covers
  every edge on graphs with ≤ 32 edges, so detection there is exact, not
  best-effort).

~200 random instances each, driven by one seeded ``np.random.Generator``
per test so failures reproduce exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

import importlib

# Bind the *module* (the package __init__ re-exports a function of the same
# name, which shadows the submodule as a package attribute).
gv = importlib.import_module("repro.core.gee_vectorized")
from repro.core.plan import _FINGERPRINT_SAMPLES
from repro.graph.edgelist import EdgeList
from repro.graph.facade import Graph

N_CASES = 200


def _force_scatter(monkeypatch, out, idx, w, threshold):
    """Run scatter_add with the strategy threshold pinned."""
    monkeypatch.setattr(gv, "_SPARSE_THRESHOLD", threshold)
    gv.scatter_add(out, idx, w)
    return out


def test_scatter_add_paths_agree(monkeypatch):
    rng = np.random.default_rng(20260728)
    for case in range(N_CASES):
        size = int(rng.integers(1, 400))
        m = int(rng.integers(0, 600))
        idx = rng.integers(0, size, size=m).astype(np.int64)
        if m and rng.random() < 0.3:
            # Heavy duplication: all updates into very few slots.
            idx = idx % max(1, size // 10)
        w = rng.normal(size=m)
        base = rng.normal(size=size)

        oracle = base.copy()
        np.add.at(oracle, idx, w)
        # threshold 0 -> m >= 0 is always true -> dense; huge -> sparse.
        dense = _force_scatter(monkeypatch, base.copy(), idx, w, 0.0)
        sparse = _force_scatter(monkeypatch, base.copy(), idx, w, float("inf"))

        np.testing.assert_allclose(dense, oracle, atol=1e-10, err_msg=f"case {case}")
        np.testing.assert_allclose(sparse, oracle, atol=1e-10, err_msg=f"case {case}")
        np.testing.assert_allclose(dense, sparse, atol=1e-10, err_msg=f"case {case}")


def test_scatter_add_strategies_match_in_kernels(monkeypatch):
    """Whole-kernel check: the embedding is threshold-independent."""
    rng = np.random.default_rng(7)
    for case in range(40):
        n = int(rng.integers(2, 40))
        s = int(rng.integers(1, 80))
        edges = EdgeList(
            rng.integers(0, n, size=s),
            rng.integers(0, n, size=s),
            rng.uniform(0.1, 2.0, size=s),
            n,
        )
        k = int(rng.integers(1, 5))
        y = rng.integers(-1, k, size=n).astype(np.int64)
        if np.all(y == -1):
            y[0] = 0
        monkeypatch.setattr(gv, "_SPARSE_THRESHOLD", 0.0)
        dense = gv.gee_vectorized(edges, y, k).embedding.copy()
        monkeypatch.setattr(gv, "_SPARSE_THRESHOLD", float("inf"))
        sparse = gv.gee_vectorized(edges, y, k).embedding
        np.testing.assert_allclose(dense, sparse, atol=1e-10, err_msg=f"case {case}")


def _random_small_graph(rng):
    """A weighted graph with at most _FINGERPRINT_SAMPLES edges.

    Below the sample cap the plan fingerprint hashes *every* edge, so any
    single-edge mutation must be detected — the property under test.
    """
    n = int(rng.integers(3, 20))
    s = int(rng.integers(1, _FINGERPRINT_SAMPLES + 1))
    return EdgeList(
        rng.integers(0, n, size=s),
        rng.integers(0, n, size=s),
        rng.uniform(0.5, 2.0, size=s),
        n,
    )


def test_plan_evicted_on_edge_mutation():
    rng = np.random.default_rng(99)
    for case in range(N_CASES):
        edges = _random_small_graph(rng)
        graph = Graph.coerce(edges)
        k = int(rng.integers(1, 4))
        plan = graph.plan(k)
        # Touch the compiled artifacts so eviction visibly discards work.
        plan.src_flat

        pos = int(rng.integers(0, edges.n_edges))
        field = ("src", "dst", "weights")[int(rng.integers(0, 3))]
        if field == "src":
            edges.src[pos] = (edges.src[pos] + 1) % edges.n_vertices
        elif field == "dst":
            edges.dst[pos] = (edges.dst[pos] + 1) % edges.n_vertices
        else:
            edges.weights[pos] += 1.0

        new_plan = graph.plan(k)
        assert new_plan is not plan, (
            f"case {case}: cached plan survived in-place mutation of "
            f"{field}[{pos}] on a fully-sampled graph"
        )
        assert new_plan.fingerprint != plan.fingerprint


def test_mutated_plan_recompiles_to_correct_embedding():
    """Eviction is not just identity churn: the re-plan embeds the new graph."""
    rng = np.random.default_rng(5)
    for case in range(40):
        edges = _random_small_graph(rng)
        graph = Graph.coerce(edges)
        k = 2
        y = rng.integers(0, k, size=edges.n_vertices).astype(np.int64)
        from repro.backends import get_backend

        backend = get_backend("vectorized")
        backend.embed_with_plan(graph.plan(k), y)

        pos = int(rng.integers(0, edges.n_edges))
        edges.weights[pos] += 3.0
        fresh = backend.embed_with_plan(graph.plan(k), y).detached().embedding
        expected = backend.embed(Graph.coerce(edges.copy()), y, k).embedding
        np.testing.assert_allclose(fresh, expected, atol=1e-12, err_msg=f"case {case}")


def test_chunked_plan_cache_also_evicted_on_mutation():
    rng = np.random.default_rng(1234)
    for case in range(50):
        edges = _random_small_graph(rng)
        graph = Graph.coerce(edges)
        plan = graph.plan(2, chunk_edges=3)
        pos = int(rng.integers(0, edges.n_edges))
        edges.weights[pos] *= -1.0
        assert graph.plan(2, chunk_edges=3) is not plan, f"case {case}"


def test_fingerprint_detects_replacement_beyond_sample_cap():
    # Above the cap detection of *replacement* stays exact (shape + samples
    # change); in-place mutation there is documented as best-effort.
    rng = np.random.default_rng(55)
    edges = EdgeList(
        rng.integers(0, 50, size=500),
        rng.integers(0, 50, size=500),
        rng.uniform(0.1, 1.0, size=500),
        50,
    )
    graph = Graph.coerce(edges)
    plan = graph.plan(3)
    bigger = EdgeList(
        np.concatenate([edges.src, [0]]),
        np.concatenate([edges.dst, [1]]),
        np.concatenate([edges.weights, [1.0]]),
        50,
    )
    graph2 = Graph.coerce(bigger)
    assert graph2.plan(3).fingerprint != plan.fingerprint


def test_sampled_fingerprint_misses_unsampled_inplace_mutation():
    """The documented gap the "full" mode exists to close.

    Beyond _FINGERPRINT_SAMPLES edges the sampled fingerprint hashes an
    evenly-spaced subset; an in-place edit between two sample points goes
    undetected and the stale plan survives.
    """
    rng = np.random.default_rng(77)
    edges = EdgeList(
        rng.integers(0, 50, size=500),
        rng.integers(0, 50, size=500),
        rng.uniform(0.1, 1.0, size=500),
        50,
    )
    graph = Graph.coerce(edges)
    plan = graph.plan(3)
    edges.weights[1] += 5.0  # positions 0 and 499 are sampled; 1 is not
    assert graph.plan(3) is plan  # stale plan survives — sampling's gap


def test_full_fingerprint_detects_any_inplace_mutation():
    rng = np.random.default_rng(78)
    for case in range(50):
        s = int(rng.integers(100, 600))  # well beyond the sample cap
        edges = EdgeList(
            rng.integers(0, 40, size=s),
            rng.integers(0, 40, size=s),
            rng.uniform(0.1, 1.0, size=s),
            40,
        )
        graph = Graph.coerce(edges)
        plan = graph.plan(3, fingerprint="full")
        pos = int(rng.integers(0, s))
        field = ("src", "dst", "weights")[int(rng.integers(0, 3))]
        if field == "src":
            edges.src[pos] = (edges.src[pos] + 1) % 40
        elif field == "dst":
            edges.dst[pos] = (edges.dst[pos] + 1) % 40
        else:
            edges.weights[pos] += 1.0
        new_plan = graph.plan(3)  # mode is sticky: still exact
        assert new_plan is not plan, (
            f"case {case}: full fingerprint missed in-place mutation of "
            f"{field}[{pos}] on {s} edges"
        )


def test_fingerprint_mode_is_sticky_and_validated():
    edges = EdgeList(np.array([0, 1]), np.array([1, 2]), None, 3)
    graph = Graph.coerce(edges)
    with pytest.raises(ValueError, match="sampled.*full|full.*sampled"):
        graph.plan(2, fingerprint="exact")
    plan = graph.plan(2, fingerprint="full")
    assert plan.fingerprint[0] == "edges-full"
    assert graph.plan(2) is plan  # unchanged data, sticky full mode
    # Switching back to sampled drops the incomparable cached plan once.
    resampled = graph.plan(2, fingerprint="sampled")
    assert resampled.fingerprint[0] == "edges"
