"""Behavioural tests specific to the parallel kernel and the Ligra wrapper."""

import numpy as np
import pytest

from repro.core import gee_ligra, gee_parallel, gee_python
from repro.core.gee_parallel import (
    _balanced_row_ranges,
    owner_rows_accumulate,
    shutdown_workers,
)
from repro.core.gee_vectorized import scatter_add
from repro.core.projection import projection_scales
from repro.graph import EdgeList, erdos_renyi, rmat
from repro.labels import random_partial_labels


class TestScatterAdd:
    def test_dense_and_sparse_paths_agree(self):
        rng = np.random.default_rng(0)
        out_dense = np.zeros(50)
        out_sparse = np.zeros(50)
        idx = rng.integers(0, 50, size=40)
        w = rng.standard_normal(40)
        # Force dense (many updates relative to output size).
        scatter_add(out_dense, idx, w)
        # Force sparse by growing the output: same indices into a larger array.
        big_dense = np.zeros(5000)
        big_sparse = np.zeros(5000)
        scatter_add(big_dense, idx, w)  # sparse path (40 << 5000/4)
        big_dense2 = np.zeros(5000)
        big_dense2 += np.bincount(idx, weights=w, minlength=5000)
        np.testing.assert_allclose(big_dense, big_dense2, atol=1e-12)
        out_ref = np.zeros(50)
        np.add.at(out_ref, idx, w)
        np.testing.assert_allclose(out_dense, out_ref, atol=1e-12)
        del out_sparse, big_sparse

    def test_empty_input_noop(self):
        out = np.zeros(5)
        scatter_add(out, np.empty(0, dtype=np.int64), np.empty(0))
        assert np.all(out == 0)


class TestOwnerRowsKernel:
    def test_blocks_tile_the_full_embedding(self):
        edges = rmat(7, edge_factor=6, seed=3)
        csr = edges.to_csr()
        y = random_partial_labels(csr.n_vertices, 6, 0.4, seed=1)
        scales = projection_scales(y, 6)
        full = owner_rows_accumulate(
            0,
            csr.n_vertices,
            csr.indptr,
            csr.indices,
            csr.weights,
            csr.in_indptr,
            csr.in_indices,
            csr.in_weights,
            y,
            scales,
            6,
        )
        ref = gee_python(edges, y, 6).embedding
        np.testing.assert_allclose(full, ref, atol=1e-9)
        # Arbitrary 3-way split must tile to the same matrix.
        n = csr.n_vertices
        cuts = [0, n // 3, 2 * n // 3, n]
        tiled = np.vstack(
            [
                owner_rows_accumulate(
                    cuts[i],
                    cuts[i + 1],
                    csr.indptr,
                    csr.indices,
                    csr.weights,
                    csr.in_indptr,
                    csr.in_indices,
                    csr.in_weights,
                    y,
                    scales,
                    6,
                )
                for i in range(3)
            ]
        )
        np.testing.assert_allclose(tiled, ref, atol=1e-9)

    def test_empty_row_range(self):
        edges = erdos_renyi(20, 50, seed=0)
        csr = edges.to_csr()
        y = random_partial_labels(20, 3, 0.5, seed=0)
        scales = projection_scales(y, 3)
        block = owner_rows_accumulate(
            5, 5, csr.indptr, csr.indices, csr.weights, csr.in_indptr, csr.in_indices,
            csr.in_weights, y, scales, 3,
        )
        assert block.shape == (0, 3)

    def test_balanced_row_ranges_cover_all_vertices(self):
        csr = rmat(9, edge_factor=10, seed=5).to_csr()
        ranges = _balanced_row_ranges(csr.indptr, csr.in_indptr, 7)
        assert ranges[0][0] == 0 and ranges[-1][1] == csr.n_vertices
        total_work = csr.n_edges * 2
        works = [
            int(
                csr.indptr[hi]
                - csr.indptr[lo]
                + csr.in_indptr[hi]
                - csr.in_indptr[lo]
            )
            for lo, hi in ranges
        ]
        assert sum(works) == total_work


class TestGeeParallelBehaviour:
    def test_worker_count_reported(self):
        edges = erdos_renyi(60, 300, seed=1)
        y = random_partial_labels(60, 4, 0.5, seed=1)
        assert gee_parallel(edges, y, 4, n_workers=1).n_workers == 1
        assert gee_parallel(edges, y, 4, n_workers=3).n_workers == 3

    def test_oversubscribed_request_is_honored(self):
        # Explicit requests are honored exactly, even beyond the CPU count
        # (reproducing a worker sweep on a smaller machine is legitimate).
        edges = erdos_renyi(30, 100, seed=2)
        y = random_partial_labels(30, 3, 0.5, seed=2)
        res = gee_parallel(edges, y, 3, n_workers=2)
        assert res.n_workers == 2

    def test_absurd_worker_count_rejected(self):
        # ... but an absurd request raises instead of silently degrading.
        edges = erdos_renyi(30, 100, seed=2)
        y = random_partial_labels(30, 3, 0.5, seed=2)
        with pytest.raises(ValueError, match="n_workers=10000"):
            gee_parallel(edges, y, 3, n_workers=10_000)

    def test_negative_worker_count_rejected(self):
        # Regression: resolve_worker_count used to treat any requested <= 0
        # as "all CPUs", so a typo like n_workers=-3 silently succeeded
        # despite the documented None/0 contract.
        from repro.parallel import resolve_worker_count

        edges = erdos_renyi(30, 100, seed=2)
        y = random_partial_labels(30, 3, 0.5, seed=2)
        with pytest.raises(ValueError, match="negative"):
            resolve_worker_count(-3)
        with pytest.raises(ValueError, match="negative"):
            gee_parallel(edges, y, 3, n_workers=-3)

    def test_negative_worker_count_rejected_by_ligra_processes(self):
        # The Ligra process backend resolves its worker count at embed time
        # (the engine is built inside gee_ligra), so the regression check
        # must go through .embed, not just backend construction.
        from repro.backends import get_backend
        from repro.graph import Graph

        edges = erdos_renyi(30, 100, seed=2)
        y = random_partial_labels(30, 3, 0.5, seed=2)
        backend = get_backend("ligra-processes", n_workers=-2)
        with pytest.raises(ValueError, match="negative"):
            backend.embed(Graph.coerce(edges), y, 3)

    def test_timings_contain_phases(self):
        edges = erdos_renyi(50, 200, seed=3)
        y = random_partial_labels(50, 3, 0.5, seed=3)
        res = gee_parallel(edges, y, 3, n_workers=2)
        for key in ("preprocess", "projection", "edge_pass", "total"):
            assert key in res.timings
            assert res.timings[key] >= 0

    def test_empty_edge_list(self):
        edges = EdgeList([], [], n_vertices=5)
        y = np.array([0, 1, -1, 0, 1])
        res = gee_parallel(edges, y, n_workers=4)
        assert res.embedding.shape == (5, 2)
        assert np.all(res.embedding == 0)

    def test_repeated_calls_reuse_cached_graph(self):
        edges = erdos_renyi(80, 400, seed=4)
        csr = edges.to_csr()
        y = random_partial_labels(80, 4, 0.5, seed=4)
        first = gee_parallel(csr, y, 4, n_workers=2)
        second = gee_parallel(csr, y, 4, n_workers=2)
        np.testing.assert_allclose(first.embedding, second.embedding)
        # The cached path must not be slower by more than the noise floor
        # of a tiny run; mostly this asserts the second call still works.
        assert second.timings["preprocess"] <= first.timings["preprocess"] + 0.05

    def test_shutdown_and_recreate(self):
        edges = erdos_renyi(40, 150, seed=5)
        y = random_partial_labels(40, 3, 0.5, seed=5)
        before = gee_parallel(edges, y, 3, n_workers=2).embedding
        shutdown_workers()
        after = gee_parallel(edges, y, 3, n_workers=2).embedding
        np.testing.assert_allclose(before, after)


class TestGeeLigraBehaviour:
    def test_method_name_includes_backend(self):
        edges = erdos_renyi(40, 150, seed=6)
        y = random_partial_labels(40, 3, 0.5, seed=6)
        assert gee_ligra(edges, y, backend="serial").method == "gee-ligra[serial]"
        assert gee_ligra(edges, y, backend="vectorized").method == "gee-ligra[vectorized]"

    def test_engine_reuse(self):
        from repro.ligra import LigraEngine

        edges = erdos_renyi(50, 200, seed=7)
        csr = edges.to_csr()
        y = random_partial_labels(50, 4, 0.5, seed=7)
        engine = LigraEngine(csr, backend="vectorized")
        a = gee_ligra(csr, y, 4, engine=engine).embedding
        b = gee_ligra(csr, y, 4, engine=engine).embedding
        np.testing.assert_allclose(a, b)

    def test_engine_graph_mismatch_rejected(self):
        from repro.ligra import LigraEngine

        edges = erdos_renyi(50, 200, seed=8)
        other = erdos_renyi(60, 200, seed=8)
        y = random_partial_labels(50, 4, 0.5, seed=8)
        engine = LigraEngine(other.to_csr())
        with pytest.raises(ValueError, match="different graph"):
            gee_ligra(edges, y, 4, engine=engine)

    def test_projection_timing_reported(self):
        edges = erdos_renyi(40, 100, seed=9)
        y = random_partial_labels(40, 3, 0.5, seed=9)
        res = gee_ligra(edges, y, backend="serial")
        assert res.timings["projection"] >= 0
        assert res.timings["edge_pass"] >= 0
