"""Locality-optimized layouts: permutation invariance, narrowing, memory.

The fused sorted/blocked layouts only *reorder commutative additions* (and
hoist the per-edge projection scale into a per-column rescale), so every
``supports_layout`` backend × layout combination must reproduce the
unpermuted pure-Python reference on the conformance-matrix edge cases to
1e-12.  The suite also pins the int32 index-narrowing boundary at
``n*K = 2^31`` and the plan-buffer reuse property (no fresh ``(n*K,)``
output temporary on the layout plan path — the satellite bugfix).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.backends import backend_capabilities, get_backend, list_backends
from repro.core import gee_python
from repro.core.plan import (
    LAYOUTS,
    ChunkedPlan,
    EmbedPlan,
    choose_index_dtype,
    compile_fused_layout,
)
from repro.graph import Graph
from repro.graph.edgelist import EdgeList

ATOL = 1e-12
K = 5

LAYOUT_BACKENDS = sorted(
    n for n in list_backends() if backend_capabilities(n).supports_layout
)
PERMUTING_LAYOUTS = [l for l in LAYOUTS if l != "none"]


def _labels(n, rng, labelled="partial"):
    y = rng.integers(0, K, size=n).astype(np.int64)
    if labelled == "partial":
        y[rng.random(n) < 0.35] = -1
        if np.all(y == -1):
            y[0] = 0
    return y


def _case(name, labelled):
    """Conformance-matrix structural edge cases (small, reference-checkable)."""
    rng = np.random.default_rng(hash(name) % (2**32))
    if name == "weighted":
        src = rng.integers(0, 40, 120)
        dst = rng.integers(0, 40, 120)
        w = rng.uniform(0.1, 4.0, 120)
        edges = EdgeList(src, dst, w, 40)
    elif name == "unweighted":
        src = rng.integers(0, 40, 120)
        dst = rng.integers(0, 40, 120)
        edges = EdgeList(src, dst, None, 40)
    elif name == "self-loops":
        src = rng.integers(0, 30, 90)
        dst = rng.integers(0, 30, 90)
        src[:15] = dst[:15]
        edges = EdgeList(src, dst, rng.uniform(0.5, 2.0, 90), 30)
    elif name == "duplicate-edges":
        src = rng.integers(0, 20, 30)
        dst = rng.integers(0, 20, 30)
        src = np.concatenate([src, src, src])
        dst = np.concatenate([dst, dst, dst])
        edges = EdgeList(src, dst, rng.uniform(0.1, 2.0, src.size), 20)
    elif name == "isolated-vertices":
        src = rng.integers(0, 25, 60)
        dst = rng.integers(0, 25, 60)
        edges = EdgeList(src, dst, None, 45)  # vertices 25..44 isolated
    else:  # pragma: no cover - guard against typos in parametrize
        raise AssertionError(name)
    return edges, _labels(edges.n_vertices, rng, labelled)


CASES = ["weighted", "unweighted", "self-loops", "duplicate-edges", "isolated-vertices"]


class TestPermutationInvariance:
    """All supports_layout backends × layouts × structural edge cases."""

    @pytest.mark.parametrize("backend_name", LAYOUT_BACKENDS)
    @pytest.mark.parametrize("layout", PERMUTING_LAYOUTS)
    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("labelled", ["partial", "full"])
    def test_matches_unpermuted_reference(self, backend_name, layout, case, labelled):
        edges, y = _case(case, labelled)
        reference = gee_python(edges, y, K).embedding
        graph = Graph.coerce(edges)
        plan = graph.plan(K, layout=layout)
        caps = backend_capabilities(backend_name)
        # The blocked kernel is inherently serial (buckets cannot be split
        # into single-writer row ranges), so an explicit worker count is
        # only legal for the sorted layout.
        workers = 2 if caps.supports_n_workers and layout == "sorted" else None
        backend = get_backend(backend_name, n_workers=workers)
        result = backend.embed_with_plan(plan, y)
        np.testing.assert_allclose(result.embedding, reference, atol=ATOL)
        if caps.supports_sharding:
            # Sharded execution re-slices its own owner-sorted incidence
            # regardless of the plan's layout, and says so.
            assert result.layout == "sorted"
        else:
            assert result.layout in (layout, "none")  # auto may re-choose

    def test_parallel_blocked_rejects_explicit_workers(self):
        edges, y = _case("weighted", "partial")
        plan = Graph.coerce(edges).plan(K, layout="blocked")
        with pytest.raises(RuntimeError, match="blocked"):
            get_backend("parallel", n_workers=2).embed_with_plan(plan, y)

    @pytest.mark.parametrize("chunk_edges", [1, 17, 10_000])
    def test_chunked_sorted_incidence(self, chunk_edges):
        edges, y = _case("weighted", "partial")
        reference = gee_python(edges, y, K).embedding
        graph = Graph.coerce(edges)
        plan = graph.plan(K, chunk_edges=chunk_edges, layout="sorted")
        assert isinstance(plan, ChunkedPlan) and plan.layout == "sorted"
        for backend_name in ("vectorized", "parallel"):
            result = get_backend(backend_name).embed_with_plan(plan, y)
            np.testing.assert_allclose(result.embedding, reference, atol=ATOL)

    def test_sparse_rejects_sorted_incidence_chunked_plan(self):
        """The two-sided A+Aᵀ matmul would double-count incidence blocks
        (each edge appears twice) — the sparse backend must refuse, not
        silently return a wrong embedding."""
        edges, y = _case("weighted", "partial")
        plan = Graph.coerce(edges).plan(K, chunk_edges=32, layout="sorted")
        with pytest.raises(ValueError, match="sorted-incidence"):
            get_backend("sparse").embed_with_plan(plan, y)

    def test_chunked_incidence_plan_reports_true_edge_count(self):
        edges, _ = _case("weighted", "partial")
        g = Graph.coerce(edges)
        plain = g.plan(K, chunk_edges=32)
        incidence = g.plan(K, chunk_edges=32, layout="sorted")
        assert incidence.n_edges == plain.n_edges == edges.n_edges
        assert incidence.source.n_edges == 2 * edges.n_edges

    def test_layout_plan_equals_default_plan(self):
        edges, y = _case("weighted", "partial")
        graph = Graph.coerce(edges)
        backend = get_backend("vectorized")
        base = backend.embed_with_plan(graph.plan(K), y).detached()
        for layout in PERMUTING_LAYOUTS:
            other = backend.embed_with_plan(graph.plan(K, layout=layout), y)
            np.testing.assert_allclose(other.embedding, base.embedding, atol=ATOL)


class TestPlanLayoutCaching:
    def test_default_plan_stays_layout_preserving(self):
        edges, _ = _case("unweighted", "partial")
        g = Graph.coerce(edges)
        plan = g.plan(K)
        assert plan.layout == "none"
        assert g.plan(K) is plan  # bare-K cache key unchanged

    def test_each_layout_is_a_separate_cached_plan(self):
        edges, _ = _case("unweighted", "partial")
        g = Graph.coerce(edges)
        base = g.plan(K)
        sorted_plan = g.plan(K, layout="sorted")
        blocked_plan = g.plan(K, layout="blocked")
        assert base is not sorted_plan is not blocked_plan
        assert g.plan(K, layout="sorted") is sorted_plan
        assert sorted_plan.layout == "sorted"
        assert blocked_plan.layout == "blocked"

    def test_unknown_layout_rejected(self):
        edges, _ = _case("unweighted", "partial")
        g = Graph.coerce(edges)
        with pytest.raises(ValueError, match="layout"):
            g.plan(K, layout="zorted")

    def test_chunked_blocked_rejected(self):
        edges, _ = _case("unweighted", "partial")
        g = Graph.coerce(edges)
        with pytest.raises(ValueError, match="chunked plans support"):
            g.plan(K, chunk_edges=16, layout="blocked")

    def test_fused_on_none_plan_raises(self):
        edges, _ = _case("unweighted", "partial")
        plan = Graph.coerce(edges).plan(K)
        with pytest.raises(ValueError, match="layout-preserving"):
            plan.fused

    def test_auto_layout_resolves_to_concrete(self):
        edges, y = _case("weighted", "full")
        g = Graph.coerce(edges)
        plan = g.plan(K, layout="auto")
        assert plan.layout in LAYOUTS
        result = get_backend("vectorized").embed_with_plan(plan, y)
        reference = gee_python(edges, y, K).embedding
        np.testing.assert_allclose(result.embedding, reference, atol=ATOL)


class TestIndexNarrowing:
    def test_dtype_boundary_fuzzed(self):
        """``n*K < 2^31`` → int32, else int64 — fuzzed around the boundary."""
        rng = np.random.default_rng(0)
        limit = 2**31
        for _ in range(300):
            k = int(rng.integers(1, 1 << 12))
            # Aim n*K near the boundary, both sides, plus random magnitudes.
            near = limit // k + int(rng.integers(-2, 3))
            n = max(1, near if rng.random() < 0.7 else int(rng.integers(1, 1 << 24)))
            expected = np.int32 if n * k < limit else np.int64
            assert choose_index_dtype(n, k) is expected, (n, k)
        # Exact boundary: 2^31 - 1 cells is the last int32-safe size.
        assert choose_index_dtype(limit - 1, 1) is np.int32
        assert choose_index_dtype(limit, 1) is np.int64

    @pytest.mark.parametrize("layout", PERMUTING_LAYOUTS)
    def test_int64_fallback_is_exact(self, layout):
        """Force the int64 path via a tiny limit; results must not change."""
        edges, y = _case("weighted", "partial")
        reference = gee_python(edges, y, K).embedding
        graph = Graph.coerce(edges)
        plan = graph.plan(K, layout=layout)
        narrow = plan.fused
        assert narrow.index_dtype is np.int32
        wide = compile_fused_layout(
            plan.src,
            plan.dst,
            plan.weights,
            plan.n_vertices,
            K,
            layout,
            int32_limit=1,  # every graph is now "too big" for int32
        )
        assert wide.index_dtype is np.int64
        plan._fused = wide  # swap the compiled artifact under the kernel
        result = get_backend("vectorized").embed_with_plan(plan, y)
        np.testing.assert_allclose(result.embedding, reference, atol=ATOL)
        np.testing.assert_array_equal(
            np.sort(narrow.owner_flat.astype(np.int64)),
            np.sort(wide.owner_flat),
        )


class TestPlanBufferReuse:
    """The satellite bugfix: layout plan paths must not allocate a fresh
    ``(n*K,)`` output temporary — the block-local segment sums write into
    the plan's reused buffer with only L2-sized temporaries."""

    def _peak_during_embed(self, backend, plan, y):
        backend.embed_with_plan(plan, y)  # warm: compile layout, buffers
        tracemalloc.start()
        backend.embed_with_plan(plan, y)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def test_sorted_plan_path_avoids_output_temporary(self):
        rng = np.random.default_rng(3)
        n, e, k = 6000, 20000, 40
        edges = EdgeList(rng.integers(0, n, e), rng.integers(0, n, e), None, n)
        y = rng.integers(0, k, n)
        graph = Graph.coerce(edges)
        backend = get_backend("vectorized")
        out_bytes = n * k * 8

        peak_sorted = self._peak_during_embed(backend, graph.plan(k, layout="sorted"), y)
        peak_none = self._peak_during_embed(backend, graph.plan(k), y)
        # The arrival-order dense path allocates a full output-sized
        # bincount temporary; the fused path must stay well under one.
        assert peak_none >= out_bytes
        assert peak_sorted < out_bytes
        assert peak_sorted < peak_none

    def test_layout_result_views_plan_buffer(self):
        edges, y = _case("weighted", "full")
        g = Graph.coerce(edges)
        plan = g.plan(K, layout="sorted")
        backend = get_backend("vectorized")
        first = backend.embed_with_plan(plan, y)
        assert first.buffer_view
        kept = first.detached()
        second = backend.embed_with_plan(plan, np.roll(y, 1))
        assert second.embedding is not kept.embedding
        np.testing.assert_allclose(
            kept.embedding, gee_python(edges, y, K).embedding, atol=ATOL
        )
