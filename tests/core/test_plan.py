"""Tests for the compiled EmbedPlan layer and the delta-driven refinement."""

import numpy as np
import pytest

from repro.backends import backend_capabilities, get_backend, list_backends
from repro.core import (
    EmbedPlan,
    GraphEncoderEmbedding,
    gee_python,
    gee_unsupervised,
    gee_vectorized,
)
from repro.core.refinement import _apply_label_delta
from repro.core.validation import class_counts
from repro.graph import Graph, erdos_renyi, planted_partition
from repro.labels import mask_labels


@pytest.fixture(scope="module")
def seeded():
    edges, truth = planted_partition(240, 4, 0.1, 0.01, seed=7)
    y = mask_labels(truth, 0.3, seed=7)
    return edges, y


class TestPlanCaching:
    def test_same_graph_same_k_reuses_plan(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges)
        plan = g.plan(4)
        assert isinstance(plan, EmbedPlan)
        assert g.plan(4) is plan

    def test_different_k_compiles_new_plan(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges)
        p4 = g.plan(4)
        p6 = g.plan(6)
        assert p4 is not p6
        assert p6.n_classes == 6
        # Both stay cached independently.
        assert g.plan(4) is p4
        assert g.plan(6) is p6

    def test_inplace_mutation_invalidates(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges.copy())
        p = g.plan(4)
        # Mutate a sampled edge (the first edge is always fingerprinted).
        g.edges.dst[0] = (g.edges.dst[0] + 1) % g.n_vertices
        p2 = g.plan(4)
        assert p2 is not p
        assert int(p2.dst[0]) == int(g.edges.dst[0])

    def test_mutation_invalidates_other_cached_views(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges.copy())
        g.plan(4)
        stale_csr = g.csr
        g.edges.src[0] = (g.edges.src[0] + 1) % g.n_vertices
        g.plan(4)
        assert g.csr is not stale_csr

    def test_explicit_invalidate_cache(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges)
        p = g.plan(4)
        g.invalidate_cache()
        assert g.plan(4) is not p

    def test_plan_precomputes_flat_components_and_views(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges)
        p = g.plan(5)
        np.testing.assert_array_equal(p.src_flat, p.src * 5)
        np.testing.assert_array_equal(p.dst_flat, p.dst * 5)
        assert p.out_degrees.sum() == p.n_edges
        assert p.in_degrees.sum() == p.n_edges
        # Accessing in_degrees built (and cached) the CSC view; edge-array
        # backends that never touch it never pay for it.
        assert p.csr._in_indptr is not None

    def test_plan_compile_is_lazy_about_adjacency(self, seeded):
        """One-shot vectorized fits must not pay for CSR/CSC builds."""
        edges, y = seeded
        g = Graph.coerce(edges)
        p = g.plan(4)
        assert g._csr is None  # compile touched only the edge arrays
        get_backend("vectorized").embed_with_plan(p, y)
        assert g._csr is None

    def test_mutation_before_first_plan_detected(self, seeded):
        """A mutation between CSR construction and the FIRST plan() call
        must not pair fresh edge arrays with the stale CSR."""
        edges, y = seeded
        g = Graph.coerce(edges.copy())
        stale_csr = g.csr  # view built before any plan exists
        g.edges.dst[0] = (g.edges.dst[0] + 1) % g.n_vertices
        p = g.plan(4)
        assert g.csr is not stale_csr
        # Edge-array and CSR consumers of the same plan agree.
        np.testing.assert_allclose(
            get_backend("vectorized").embed_with_plan(p, y).embedding,
            get_backend("sparse").embed_with_plan(p, y).embedding,
            atol=1e-9,
        )

    def test_mutation_detected_for_first_time_k(self, seeded):
        """A new K after mutation must not mix fresh edges with stale views."""
        edges, _ = seeded
        g = Graph.coerce(edges.copy())
        g.plan(4)
        stale_csr = g.csr
        g.edges.dst[0] = (g.edges.dst[0] + 1) % g.n_vertices
        p6 = g.plan(6)  # K never seen before; fingerprint must still trip
        assert g.csr is not stale_csr
        assert int(p6.dst[0]) == int(g.edges.dst[0])

    def test_plan_cache_capped(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges)
        for k in range(2, 2 + g._MAX_PLANS + 3):
            g.plan(k)
        assert len(g._plans) == g._MAX_PLANS

    def test_adopted_csr_mutation_detected(self, seeded):
        """For a CSR-adopted graph the CSR is the source of truth: in-place
        CSR mutation must invalidate the plan and the derived edge view."""
        edges, y = seeded
        csr = Graph.coerce(edges.copy()).csr
        g = Graph.coerce(csr)
        p = g.plan(4)
        csr.weights[0] = 5.0  # first edge is always fingerprint-sampled
        p2 = g.plan(4)
        assert p2 is not p
        assert float(p2.weights[0]) == 5.0
        # The rebuilt plan matches a from-scratch embed of the mutated CSR.
        result = get_backend("vectorized").embed_with_plan(p2, y)
        reference = gee_python(g.edges, y, 4).embedding
        np.testing.assert_allclose(result.embedding, reference, atol=1e-9)

    def test_row_ranges_cached_per_worker_count(self, seeded):
        edges, _ = seeded
        p = Graph.coerce(edges).plan(4)
        r2 = p.row_ranges(2)
        assert p.row_ranges(2) is r2
        assert len(p.row_ranges(3)) == 3
        assert r2[0][0] == 0 and r2[-1][1] == p.n_vertices


class TestEmbedWithPlan:
    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_matches_reference_and_classic_path(self, seeded, name):
        edges, y = seeded
        g = Graph.coerce(edges)
        reference = gee_python(edges, y, 4).embedding
        caps = backend_capabilities(name)
        backend = get_backend(name, n_workers=2 if caps.supports_n_workers else None)
        plan = g.plan(4)
        result = backend.embed_with_plan(plan, y)
        np.testing.assert_allclose(result.embedding, reference, atol=1e-9)
        # Lazy projection materialises correctly.
        np.testing.assert_allclose(
            result.projection, gee_python(edges, y, 4).projection, atol=1e-12
        )

    def test_repeated_calls_reuse_output_buffer(self, seeded):
        edges, y = seeded
        g = Graph.coerce(edges)
        plan = g.plan(4)
        backend = get_backend("vectorized")
        r1 = backend.embed_with_plan(plan, y)
        base1 = r1.embedding.base if r1.embedding.base is not None else r1.embedding
        kept = r1.detached()
        r2 = backend.embed_with_plan(plan, y)
        base2 = r2.embedding.base if r2.embedding.base is not None else r2.embedding
        assert base1 is base2  # same reused buffer
        np.testing.assert_array_equal(kept.embedding, r2.embedding)
        assert kept.embedding.base is not base2

    def test_fully_labelled_fast_path(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges)
        y_full = np.arange(g.n_vertices) % 4
        plan = g.plan(4)
        fast = get_backend("vectorized").embed_with_plan(plan, y_full)
        np.testing.assert_allclose(
            fast.embedding, gee_python(edges, y_full, 4).embedding, atol=1e-9
        )

    def test_weighted_graph_with_plan(self):
        edges = erdos_renyi(120, 700, seed=5, weighted=True)
        y = mask_labels(np.arange(120) % 3, 0.4, seed=5)
        g = Graph.coerce(edges)
        plan = g.plan(3)
        reference = gee_python(edges, y, 3).embedding
        for name in ("vectorized", "sparse", "ligra-vectorized", "parallel"):
            result = get_backend(name).embed_with_plan(plan, y)
            np.testing.assert_allclose(result.embedding, reference, atol=1e-9)

    def test_plan_label_validation_still_applies(self, seeded):
        edges, _ = seeded
        g = Graph.coerce(edges)
        plan = g.plan(4)
        backend = get_backend("vectorized")
        with pytest.raises(ValueError, match="out of range"):
            backend.embed_with_plan(plan, np.full(g.n_vertices, 7))
        with pytest.raises(ValueError, match="1-D array"):
            backend.embed_with_plan(plan, np.zeros(3))


class TestEstimatorWithPlanActive:
    def test_fit_caches_plan_and_second_fit_matches(self, seeded):
        edges, y = seeded
        g = Graph.coerce(edges)
        first = GraphEncoderEmbedding(method="vectorized").fit(g, y).embedding_.copy()
        plan = g.plan(4)
        second = GraphEncoderEmbedding(method="vectorized").fit(g, y)
        assert g.plan(4) is plan  # the fit reused the compiled plan
        np.testing.assert_allclose(second.embedding_, first, atol=0)

    def test_fits_do_not_alias_each_other(self, seeded):
        """Two fits on one Graph must not share the plan's output buffer."""
        edges, y = seeded
        g = Graph.coerce(edges)
        a = GraphEncoderEmbedding(method="vectorized").fit(g, y)
        snapshot = a.embedding_.copy()
        y2 = np.roll(y, 1)
        GraphEncoderEmbedding(method="vectorized").fit(g, y2)
        np.testing.assert_array_equal(a.embedding_, snapshot)

    def test_transform_matches_full_batch_with_plan_active(self, seeded):
        edges, y = seeded
        g = Graph.coerce(edges)
        model = GraphEncoderEmbedding(method="vectorized").fit(g, y)
        n = g.n_vertices
        new_edges = np.array([[n, 0, 1.0], [n, 5, 1.0], [3, n, 2.0]])
        rows = model.transform(new_edges)

        combined = np.vstack([g.edges.as_array(), new_edges])
        y_ext = np.concatenate([y, [-1]])
        full = GraphEncoderEmbedding(method="vectorized").fit(combined, y_ext)
        np.testing.assert_allclose(rows[0], full.embedding_[n], atol=1e-12)

    def test_partial_fit_matches_full_batch_with_plan_active(self, seeded):
        edges, y = seeded
        g = Graph.coerce(edges)
        batch_model = GraphEncoderEmbedding(method="vectorized").fit(g, y)

        E = g.edges.as_array()
        half = E.shape[0] // 2
        stream = GraphEncoderEmbedding(method="vectorized")
        stream.partial_fit(E[:half], labels=y)
        stream.partial_fit(E[half:])
        np.testing.assert_allclose(
            stream.embedding_, batch_model.embedding_, atol=1e-9
        )


class TestDeltaRefinement:
    def test_delta_update_matches_from_scratch_embed(self, seeded):
        """The tentpole exactness claim: delta S-updates track a full embed."""
        edges, _ = seeded
        g = Graph.coerce(edges)
        k = 4
        plan = g.plan(k)
        rng = np.random.default_rng(11)
        y_old = rng.integers(0, k, size=g.n_vertices)
        S_flat = (
            gee_vectorized(g.edges, y_old, k).embedding
            * class_counts(y_old, k)[None, :]
        ).ravel().copy()
        # Ten successive delta rounds, each flipping ~5% of the labels.
        y = y_old
        for _ in range(10):
            y_new = y.copy()
            flip = rng.choice(g.n_vertices, size=12, replace=False)
            y_new[flip] = rng.integers(0, k, size=flip.size)
            _apply_label_delta(S_flat, plan, y, y_new)
            y = y_new
        counts = class_counts(y, k).astype(np.float64)
        inv = np.where(counts > 0, 1.0 / np.maximum(counts, 1.0), 0.0)
        Z_delta = S_flat.reshape(g.n_vertices, k) * inv[None, :]
        Z_full = gee_vectorized(g.edges, y, k).embedding
        np.testing.assert_allclose(Z_delta, Z_full, atol=1e-10)

    def test_delta_handles_weights_and_self_loops(self):
        src = np.array([0, 1, 2, 3, 3, 4])
        dst = np.array([1, 2, 0, 3, 4, 0])  # includes self-loop (3, 3)
        w = np.array([1.5, 0.5, 2.0, 3.0, 1.0, 0.25])
        g = Graph.coerce((src, dst, w))
        k = 3
        plan = g.plan(k)
        y0 = np.array([0, 1, 2, 0, 1])
        y1 = np.array([1, 1, 2, 2, 0])  # changes vertices 0, 3, 4
        S = (
            gee_vectorized(g.edges, y0, k).embedding * class_counts(y0, k)[None, :]
        ).ravel().copy()
        _apply_label_delta(S, plan, y0, y1)
        counts = class_counts(y1, k).astype(np.float64)
        inv = np.where(counts > 0, 1.0 / np.maximum(counts, 1.0), 0.0)
        Z_delta = S.reshape(5, k) * inv[None, :]
        np.testing.assert_allclose(
            Z_delta, gee_vectorized(g.edges, y1, k).embedding, atol=1e-12
        )

    def test_unsupervised_delta_matches_full_loop(self):
        # Warm-start near the planted truth so the per-iteration churn stays
        # under delta_threshold and the delta path actually engages.
        edges, truth = planted_partition(240, 4, 0.1, 0.01, seed=7)
        rng = np.random.default_rng(3)
        noisy = truth.copy()
        flip = rng.choice(240, size=24, replace=False)
        noisy[flip] = rng.integers(0, 4, size=flip.size)
        kwargs = dict(
            seed=0, max_iterations=12, initial_labels=noisy,
            convergence_fraction=1.0,
        )
        res_delta = gee_unsupervised(edges, 4, delta=True, **kwargs)
        res_full = gee_unsupervised(edges, 4, delta=False, **kwargs)
        np.testing.assert_array_equal(res_delta.labels, res_full.labels)
        np.testing.assert_allclose(res_delta.embedding, res_full.embedding, atol=1e-10)
        assert res_delta.n_delta_passes > 0
        assert res_full.n_delta_passes == 0

    def test_chaotic_iterations_fall_back_to_full(self, seeded):
        """Random starts churn >50% of labels; the delta loop must notice
        and run those rounds as full passes rather than doubling the work."""
        edges, _ = seeded
        res = gee_unsupervised(edges, 4, seed=0, max_iterations=5, delta=True)
        # Every early iteration changed most labels -> full fallback each time.
        assert res.n_full_passes >= 1
        assert res.n_full_passes + res.n_delta_passes == res.n_iterations

    def test_full_refresh_cadence(self, seeded):
        edges, _ = seeded
        res = gee_unsupervised(
            edges, 4, seed=0, max_iterations=9, delta=True,
            full_refresh_every=4, convergence_fraction=1.0,
            delta_threshold=1.0,  # disable the churn fallback: cadence only
        )
        # Iterations 1, 5, 9 are full refreshes; the rest are deltas.
        assert res.n_full_passes == 3
        assert res.n_full_passes + res.n_delta_passes == res.n_iterations

    def test_delta_with_registry_backend_implementation(self, seeded):
        edges, _ = seeded
        res = gee_unsupervised(
            edges, 4, seed=0, max_iterations=8, implementation="sparse", delta=True
        )
        ref = gee_unsupervised(
            edges, 4, seed=0, max_iterations=8, implementation="vectorized", delta=True
        )
        np.testing.assert_array_equal(res.labels, ref.labels)

    def test_auto_delta_disabled_for_reweighting_callable(self, seeded):
        """delta="auto" must not replay raw edge weights against an
        implementation that reweights internally (gee_laplacian)."""
        from repro.core import gee_laplacian

        edges, _ = seeded
        auto = gee_unsupervised(edges, 4, seed=0, max_iterations=6,
                                implementation=gee_laplacian)
        off = gee_unsupervised(edges, 4, seed=0, max_iterations=6,
                               implementation=gee_laplacian, delta=False)
        assert auto.n_delta_passes == 0
        np.testing.assert_array_equal(auto.labels, off.labels)
        np.testing.assert_allclose(auto.embedding, off.embedding, atol=0)

    def test_auto_delta_enabled_for_standard_kernels(self, seeded):
        edges, truth = planted_partition(240, 4, 0.1, 0.01, seed=7)
        res = gee_unsupervised(
            edges, 4, seed=0, max_iterations=8, initial_labels=truth,
            convergence_fraction=1.0, implementation=gee_vectorized,
        )
        assert res.n_delta_passes > 0  # "auto" engaged for the raw kernel

    def test_invalid_full_refresh_every(self, seeded):
        edges, _ = seeded
        with pytest.raises(ValueError, match="full_refresh_every"):
            gee_unsupervised(edges, 4, full_refresh_every=0)
        with pytest.raises(ValueError, match="delta must be"):
            gee_unsupervised(edges, 4, delta="yes")
