"""Out-of-core chunked execution: correctness, memory bounds, wiring.

The acceptance bar for the chunked engine:

* chunked embedding equals the in-memory embedding to 1e-12 for chunk
  sizes {1, E//7, E}, on every chunk-capable backend, for both in-memory
  and file-backed (memory-mapped) sources;
* the edge pass's peak temporary allocation is bounded by the caller's
  memory budget (asserted with tracemalloc against a warm plan, so the
  vertex-side output buffer is excluded);
* the chunked path is reachable from every entry point it is wired
  through: ``Graph.plan(K, chunk_edges=...)``, backend ``embed`` on a
  ``ChunkedEdgeSource``, ``GraphEncoderEmbedding.fit(chunk_edges=...)``
  and ``gee_unsupervised(chunk_edges=...)``.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.backends import backend_capabilities, get_backend, list_backends
from repro.core.api import GraphEncoderEmbedding
from repro.core.plan import ChunkedPlan, EmbedPlan
from repro.core.refinement import gee_unsupervised
from repro.graph import erdos_renyi
from repro.graph.facade import Graph
from repro.graph.io import CHUNK_BYTES_PER_EDGE, ChunkedEdgeSource, save_chunked
from repro.labels import random_partial_labels

CHUNKED_BACKENDS = sorted(
    name for name in list_backends() if backend_capabilities(name).supports_chunked
)

K = 5


@pytest.fixture(scope="module")
def case():
    edges = erdos_renyi(300, 5000, seed=3, weighted=True)
    labels = random_partial_labels(300, K, 0.5, seed=1)
    graph = Graph.coerce(edges)
    reference = get_backend("python").embed(graph, labels, K).detached().embedding
    return edges, labels, graph, reference


@pytest.fixture(scope="module")
def store(case, tmp_path_factory):
    edges, _, _, _ = case
    return save_chunked(edges, tmp_path_factory.mktemp("ooc") / "store")


def test_chunked_backend_set_is_declared():
    assert CHUNKED_BACKENDS == ["auto", "parallel", "sparse", "vectorized"]


# --------------------------------------------------------------------------- #
# Equivalence: chunked == in-memory, all chunk sizes, all capable backends
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend_name", CHUNKED_BACKENDS)
def test_chunked_equals_in_memory(case, backend_name):
    edges, labels, graph, _ = case
    backend = get_backend(backend_name)
    baseline = backend.embed_with_plan(graph.plan(K), labels).detached().embedding
    E = edges.n_edges
    for chunk_edges in (1, E // 7, E):
        plan = graph.plan(K, chunk_edges=chunk_edges)
        assert isinstance(plan, ChunkedPlan)
        chunked = backend.embed_with_plan(plan, labels).detached().embedding
        np.testing.assert_allclose(
            chunked, baseline, atol=1e-12, rtol=1e-12,
            err_msg=f"{backend_name} chunk_edges={chunk_edges}",
        )


@pytest.mark.parametrize("backend_name", CHUNKED_BACKENDS)
def test_file_backed_source_matches_reference(case, store, backend_name):
    _, labels, _, reference = case
    source = ChunkedEdgeSource.open(store, chunk_edges=617)
    result = get_backend(backend_name).embed(source, labels, K).detached()
    np.testing.assert_allclose(result.embedding, reference, atol=1e-10)


def test_parallel_chunked_multi_worker_matches(case, store):
    _, labels, _, reference = case
    source = ChunkedEdgeSource.open(store, chunk_edges=500)
    result = get_backend("parallel", n_workers=3).embed(source, labels, K).detached()
    np.testing.assert_allclose(result.embedding, reference, atol=1e-10)


def test_parallel_chunked_reports_actual_worker_count(case):
    # Concurrency is structurally capped at one worker per chunk; the
    # result must report the slab count that ran, not the nominal request.
    edges, labels, _, _ = case
    two_chunks = ChunkedEdgeSource.from_edgelist(
        edges, chunk_edges=-(-edges.n_edges // 2)
    )
    result = get_backend("parallel", n_workers=4).embed(two_chunks, labels, K)
    assert result.n_workers == 2
    one_chunk = ChunkedEdgeSource.from_edgelist(edges, chunk_edges=edges.n_edges)
    result = get_backend("parallel", n_workers=4).embed(one_chunk, labels, K)
    assert result.n_workers == 1


def test_unlabelled_vertices_and_unweighted_store(tmp_path):
    # Unweighted store round-trips without a weights column; partially
    # labelled graphs exercise the masked scatter path of every chunk.
    edges = erdos_renyi(120, 900, seed=9)
    labels = random_partial_labels(120, 3, 0.3, seed=2)
    reference = get_backend("python").embed(edges, labels, 3).embedding
    store = save_chunked(edges, tmp_path / "store")
    source = ChunkedEdgeSource.open(store, chunk_edges=97)
    assert not source.is_weighted
    for backend_name in CHUNKED_BACKENDS:
        out = get_backend(backend_name).embed(source, labels, 3).detached().embedding
        np.testing.assert_allclose(out, reference, atol=1e-10, err_msg=backend_name)


# --------------------------------------------------------------------------- #
# Memory bounds
# --------------------------------------------------------------------------- #
def test_budget_resolves_chunk_size_and_bounds_blocks():
    edges = erdos_renyi(50, 4000, seed=0)
    budget = 64 << 10
    source = ChunkedEdgeSource.from_edgelist(edges, memory_budget_bytes=budget)
    assert source.chunk_edges == budget // CHUNK_BYTES_PER_EDGE
    total = 0
    for src, dst, w in source.iter_chunks():
        assert src.size <= source.chunk_edges
        # The yielded triple itself stays well inside the budget.
        assert src.nbytes + dst.nbytes + w.nbytes <= budget
        total += src.size
    assert total == edges.n_edges


@pytest.mark.parametrize("backend_name", ["vectorized", "sparse"])
def test_peak_allocation_bounded_by_budget(backend_name):
    # A graph whose one-shot edge-pass temporaries far exceed the budget.
    edges = erdos_renyi(400, 60000, seed=3, weighted=True)
    labels = random_partial_labels(400, 4, 0.5, seed=1)
    graph = Graph.coerce(edges)
    budget = 256 << 10

    backend = get_backend(backend_name)
    plan = graph.plan(4, memory_budget_bytes=budget)
    full_plan = graph.plan(4)
    # Warm both paths so reusable buffers and cached views (the vertex-side
    # state the budget does not govern) exist before tracing.
    backend.embed_with_plan(plan, labels)
    backend.embed_with_plan(full_plan, labels)

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        backend.embed_with_plan(plan, labels)
        _, peak_chunked = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        backend.embed_with_plan(full_plan, labels)
        _, peak_full = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # The chunked pass stays inside the budget; the full scatter pass (the
    # thing the budget protects against) does not.  The sparse backend's
    # full pass is a CSR matmul with no O(E) temporaries, so the contrast
    # assertion only applies to the scatter formulation.
    assert peak_chunked <= budget, (peak_chunked, budget)
    if backend_name == "vectorized":
        assert peak_full > budget, (peak_full, budget)


# --------------------------------------------------------------------------- #
# Plan caching and wiring
# --------------------------------------------------------------------------- #
def test_chunked_plans_cached_per_chunk_size(case):
    edges, _, _, _ = case
    graph = Graph.coerce(edges.copy())
    p1 = graph.plan(K, chunk_edges=100)
    p2 = graph.plan(K, chunk_edges=100)
    p3 = graph.plan(K, chunk_edges=200)
    full = graph.plan(K)
    assert p1 is p2
    assert p3 is not p1
    assert isinstance(full, EmbedPlan) and full is graph.plan(K)


def test_budget_and_chunk_edges_are_exclusive(case):
    edges, _, _, _ = case
    with pytest.raises(ValueError, match="not both"):
        ChunkedEdgeSource.from_edgelist(
            edges, chunk_edges=10, memory_budget_bytes=1 << 20
        )
    with pytest.raises(ValueError, match="positive"):
        ChunkedEdgeSource.from_edgelist(edges, chunk_edges=0)


def test_non_chunk_capable_backends_reject(case):
    edges, labels, graph, _ = case
    source = ChunkedEdgeSource.from_edgelist(edges, chunk_edges=100)
    plan = graph.plan(K, chunk_edges=100)
    for name in list_backends():
        if backend_capabilities(name).supports_chunked:
            continue
        backend = get_backend(name)
        with pytest.raises(ValueError, match="chunked"):
            backend.embed(source, labels, K)
        with pytest.raises(ValueError, match="chunked"):
            backend.embed_with_plan(plan, labels)


def test_source_cannot_be_coerced_to_graph(case):
    edges, _, _, _ = case
    source = ChunkedEdgeSource.from_edgelist(edges, chunk_edges=100)
    with pytest.raises(TypeError, match="ChunkedEdgeSource"):
        Graph.coerce(source)
    roundtrip = source.to_edgelist()
    assert roundtrip == edges


def test_estimator_fit_chunk_edges(case, store):
    edges, labels, _, reference = case
    model = GraphEncoderEmbedding(K, method="vectorized").fit(
        edges, labels, chunk_edges=123
    )
    np.testing.assert_allclose(model.embedding_, reference, atol=1e-10)
    # File-backed source straight into fit, re-blocked by the fit kwarg.
    source = ChunkedEdgeSource.open(store)
    model2 = GraphEncoderEmbedding(K, method="sparse").fit(
        source, labels, chunk_edges=611
    )
    np.testing.assert_allclose(model2.embedding_, reference, atol=1e-10)
    # Downstream helpers keep working on an out-of-core fit.
    assert model2.predict().shape == (edges.n_vertices,)
    # Budget-based re-blocking of an opened store, same result.
    model3 = GraphEncoderEmbedding(K, method="vectorized").fit(
        ChunkedEdgeSource.open(store), labels, memory_budget_bytes=128 << 10
    )
    np.testing.assert_allclose(model3.embedding_, reference, atol=1e-10)


def test_estimator_fit_chunked_rejects_incapable_backend(case, store):
    _, labels, _, _ = case
    source = ChunkedEdgeSource.open(store)
    with pytest.raises(ValueError, match="chunked"):
        GraphEncoderEmbedding(K, method="python").fit(source, labels)


def test_estimator_fit_chunked_rejects_laplacian(case, store):
    _, labels, _, _ = case
    source = ChunkedEdgeSource.open(store)
    with pytest.raises(ValueError, match="laplacian"):
        GraphEncoderEmbedding(K, method="vectorized", laplacian=True).fit(
            source, labels
        )


def test_unsupervised_chunked_matches_full(case):
    edges, _, _, _ = case
    kwargs = dict(max_iterations=6, seed=7, implementation="vectorized")
    full = gee_unsupervised(edges, 3, **kwargs)
    chunked = gee_unsupervised(edges, 3, chunk_edges=700, **kwargs)
    np.testing.assert_array_equal(full.labels, chunked.labels)
    np.testing.assert_allclose(full.embedding, chunked.embedding, atol=1e-10)
    assert chunked.n_delta_passes == full.n_delta_passes


def test_unsupervised_chunked_default_implementation_works(case):
    # The default implementation (the bare gee_vectorized callable) maps to
    # its registry backend rather than rejecting chunk_edges.
    edges, _, _, _ = case
    result = gee_unsupervised(edges, 3, max_iterations=3, seed=7, chunk_edges=700)
    assert result.embedding.shape == (edges.n_vertices, 3)


def test_unsupervised_chunked_requires_registry_backend(case):
    edges, _, _, _ = case
    from repro.core.laplacian import gee_laplacian

    with pytest.raises(ValueError, match="registry"):
        gee_unsupervised(
            edges, 3, implementation=gee_laplacian, chunk_edges=100, max_iterations=2
        )


def test_save_chunked_streams_from_source(case, store, tmp_path):
    # Store-to-store conversion goes chunk by chunk (never materialises).
    edges, _, _, _ = case
    source = ChunkedEdgeSource.open(store, chunk_edges=333)
    copy = save_chunked(source, tmp_path / "copy")
    reopened = ChunkedEdgeSource.open(copy)
    assert reopened.to_edgelist() == edges
