"""Exact-value tests of the reference GEE implementation (Algorithm 1).

These tests pin down the algorithm's semantics on hand-computed examples so
that the equivalence tests (which compare the other implementations against
the reference) are anchored to the paper's definition rather than to
whatever the code happens to do.
"""

import numpy as np
import pytest

from repro.core import (
    UNKNOWN_LABEL,
    gee_python,
    labels_from_paper_convention,
    labels_to_paper_convention,
    validate_labels,
)
from repro.core.projection import (
    build_projection,
    build_projection_parallel,
    projection_from_scales,
    projection_scales,
)
from repro.graph import EdgeList


class TestProjectionMatrix:
    def test_values_are_inverse_class_counts(self):
        y = np.array([0, 0, 1, -1, 1, 1])
        W = build_projection(y, 2)
        assert W.shape == (6, 2)
        assert W[0, 0] == pytest.approx(1 / 2)
        assert W[2, 1] == pytest.approx(1 / 3)
        assert np.all(W[3] == 0)  # unknown label contributes nothing

    def test_empty_class_column_is_zero(self):
        y = np.array([0, 0, -1])
        W = build_projection(y, 3)
        assert np.all(W[:, 1] == 0) and np.all(W[:, 2] == 0)

    def test_parallel_matches_serial(self):
        rng = np.random.default_rng(0)
        y = rng.integers(-1, 20, size=500)
        np.testing.assert_allclose(
            build_projection(y, 20), build_projection_parallel(y, 20, n_workers=4)
        )

    def test_scales_match_dense_projection(self):
        rng = np.random.default_rng(1)
        y = rng.integers(-1, 7, size=200)
        W = build_projection(y, 7)
        scales = projection_scales(y, 7)
        known = y != UNKNOWN_LABEL
        np.testing.assert_allclose(scales[known], W[np.flatnonzero(known), y[known]])
        np.testing.assert_allclose(projection_from_scales(y, scales, 7), W)

    def test_columns_sum_to_one_for_nonempty_classes(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 5, size=300)
        W = build_projection(y, 5)
        np.testing.assert_allclose(W.sum(axis=0), 1.0)


class TestAlgorithmOnHandExamples:
    def test_single_edge_both_directions(self):
        # One edge 0 -> 1 with weight 2; Y = [0, 1]; one vertex per class.
        edges = EdgeList([0], [1], weights=[2.0], n_vertices=2)
        y = np.array([0, 1])
        Z = gee_python(edges, y).embedding
        # Z[0, Y[1]] += W[1, Y[1]] * 2 = (1/1)*2 ; Z[1, Y[0]] += (1/1)*2
        np.testing.assert_allclose(Z, [[0.0, 2.0], [2.0, 0.0]])

    def test_unknown_destination_contributes_nothing(self):
        edges = EdgeList([0], [1], n_vertices=2)
        y = np.array([0, -1])
        Z = gee_python(edges, y, n_classes=1).embedding
        # Only line 11 fires: Z[1, Y[0]] += W[0,0]*1 = 1
        np.testing.assert_allclose(Z, [[0.0], [1.0]])

    def test_class_counts_normalise_contributions(self):
        # Two vertices in class 0; edges from vertex 2 to both.
        edges = EdgeList([2, 2], [0, 1], n_vertices=3)
        y = np.array([0, 0, 1])
        Z = gee_python(edges, y).embedding
        # Each contribution into Z[2, 0] is 1/2 -> total 1.0.
        assert Z[2, 0] == pytest.approx(1.0)
        # Each of vertices 0,1 receives W[2,1]*1 = 1 into class 1.
        assert Z[0, 1] == pytest.approx(1.0)
        assert Z[1, 1] == pytest.approx(1.0)

    def test_self_loop_contributes_to_own_row_twice(self):
        edges = EdgeList([0], [0], weights=[3.0], n_vertices=1)
        y = np.array([0])
        Z = gee_python(edges, y).embedding
        # Both updates hit Z[0, 0]: 2 * (1/1) * 3.
        assert Z[0, 0] == pytest.approx(6.0)

    def test_weighted_graph_scales_linearly(self, tiny_edges):
        y = np.array([0, 1, 0, 1, 0])
        base = gee_python(tiny_edges, y).embedding
        doubled = gee_python(tiny_edges.with_weights(tiny_edges.effective_weights() * 2), y).embedding
        np.testing.assert_allclose(doubled, 2 * base)

    def test_result_metadata(self, tiny_edges):
        y = np.array([0, 1, 0, 1, 0])
        res = gee_python(tiny_edges, y)
        assert res.method == "gee-python"
        assert res.n_vertices == 5
        assert res.n_classes == 2
        assert res.total_seconds >= 0
        assert set(res.timings) == {"projection", "edge_pass", "total"}

    def test_normalized_rows_unit_norm(self, tiny_edges):
        y = np.array([0, 1, 0, 1, 0])
        res = gee_python(tiny_edges, y)
        norms = np.linalg.norm(res.normalized(), axis=1)
        nonzero = np.linalg.norm(res.embedding, axis=1) > 0
        np.testing.assert_allclose(norms[nonzero], 1.0)


class TestLabelValidation:
    def test_unknown_only_requires_explicit_k(self):
        edges = EdgeList([0], [1], n_vertices=2)
        with pytest.raises(ValueError, match="n_classes"):
            gee_python(edges, np.array([-1, -1]))

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            validate_labels(np.array([0, 5]), 2, n_classes=3)

    def test_below_minus_one_rejected(self):
        with pytest.raises(ValueError, match=">= -1"):
            validate_labels(np.array([-2, 0]), 2)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            validate_labels(np.array([0.5, 1.0]), 2)

    def test_float_integers_accepted(self):
        y, k = validate_labels(np.array([0.0, 1.0]), 2)
        assert y.dtype == np.int64
        assert k == 2

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            validate_labels(np.array([0, 1, 0]), 2)

    def test_paper_convention_round_trip(self):
        y_paper = np.array([0, 1, 3, 0])
        internal = labels_from_paper_convention(y_paper)
        np.testing.assert_array_equal(internal, [-1, 0, 2, -1])
        np.testing.assert_array_equal(labels_to_paper_convention(internal), y_paper)

    def test_paper_convention_rejects_negative(self):
        with pytest.raises(ValueError):
            labels_from_paper_convention(np.array([-1, 0]))
