"""Tests for the high-level API, the Laplacian variant and the refinement loop."""

import numpy as np
import pytest

from repro.core import (
    GraphEncoderEmbedding,
    METHODS,
    gee_laplacian,
    gee_python,
    gee_unsupervised,
    gee_vectorized,
    laplacian_reweight,
    weighted_total_degrees,
)
from repro.eval.metrics import adjusted_rand_index, best_match_accuracy
from repro.graph import EdgeList, erdos_renyi, planted_partition
from repro.labels import mask_labels, random_partial_labels


class TestLaplacianVariant:
    def test_weighted_total_degrees(self, tiny_edges):
        deg = weighted_total_degrees(tiny_edges)
        # vertex 0: out 1+2=3; vertex 4: self loop counts out 5 and in 5.
        assert deg[0] == pytest.approx(3.0)
        assert deg[4] == pytest.approx(10.0)

    def test_reweight_formula(self):
        edges = EdgeList([0], [1], weights=[4.0], n_vertices=2)
        rw = laplacian_reweight(edges)
        # d_0 = d_1 = 4 -> new weight = 4 / sqrt(16) = 1.
        assert rw.effective_weights()[0] == pytest.approx(1.0)

    def test_laplacian_embedding_differs_from_adjacency(self, small_sbm_partial):
        edges, _, y = small_sbm_partial
        adj = gee_vectorized(edges, y).embedding
        lap = gee_laplacian(edges, y).embedding
        assert not np.allclose(adj, lap)

    def test_laplacian_composes_with_any_implementation(self, small_sbm_partial):
        edges, _, y = small_sbm_partial
        a = gee_laplacian(edges, y, implementation=gee_vectorized)
        b = gee_laplacian(edges, y, implementation=gee_python)
        np.testing.assert_allclose(a.embedding, b.embedding, atol=1e-9)
        assert a.method.endswith("+laplacian")


class TestUnsupervisedRefinement:
    def test_recovers_planted_partition(self, small_sbm):
        edges, truth = small_sbm
        result = gee_unsupervised(edges, 3, seed=0, max_iterations=15)
        assert adjusted_rand_index(truth, result.labels) > 0.8

    def test_converges_and_reports_history(self, small_sbm):
        edges, _ = small_sbm
        result = gee_unsupervised(edges, 3, seed=1)
        assert result.n_iterations == len(result.history)
        assert result.embedding.shape == (edges.n_vertices, 3)
        assert result.final is not None

    def test_warm_start_with_initial_labels(self, small_sbm):
        edges, truth = small_sbm
        noisy = truth.copy()
        rng = np.random.default_rng(0)
        flip = rng.choice(truth.size, size=truth.size // 10, replace=False)
        noisy[flip] = rng.integers(0, 3, size=flip.size)
        result = gee_unsupervised(edges, 3, initial_labels=noisy, seed=0, max_iterations=10)
        assert adjusted_rand_index(truth, result.labels) > 0.9

    def test_invalid_parameters(self, small_sbm):
        edges, _ = small_sbm
        with pytest.raises(ValueError):
            gee_unsupervised(edges, 0)
        with pytest.raises(ValueError):
            gee_unsupervised(edges, 3, convergence_fraction=0.0)
        with pytest.raises(ValueError):
            gee_unsupervised(edges, 3, initial_labels=np.zeros(3, dtype=int))


class TestGraphEncoderEmbeddingAPI:
    def test_all_methods_registered(self):
        assert set(METHODS) == {
            "python",
            "vectorized",
            "ligra",
            "ligra-serial",
            "ligra-parallel",
            "parallel",
        }

    @pytest.mark.parametrize(
        "method,kwargs",
        [
            ("vectorized", {}),
            ("ligra", {}),
            ("ligra-threads", {"n_workers": 2}),
            ("parallel", {"n_workers": 2}),
        ],
    )
    def test_fit_produces_consistent_embeddings(self, small_sbm_partial, method, kwargs):
        edges, truth, y = small_sbm_partial
        model = GraphEncoderEmbedding(method=method, **kwargs).fit(edges, y)
        assert model.embedding_.shape == (edges.n_vertices, 3)
        reference = GraphEncoderEmbedding(method="python").fit(edges, y)
        np.testing.assert_allclose(model.embedding_, reference.embedding_, atol=1e-9)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            GraphEncoderEmbedding(method="gpu")

    def test_n_workers_rejected_for_serial_methods(self):
        # Capability validation happens at construction, not silently at fit.
        with pytest.raises(ValueError, match="n_workers"):
            GraphEncoderEmbedding(method="vectorized", n_workers=2)

    def test_unknown_backend_option_rejected(self):
        with pytest.raises(TypeError, match="unsupported option"):
            GraphEncoderEmbedding(method="vectorized", bogus_option=1)

    def test_unfitted_access_raises(self):
        model = GraphEncoderEmbedding()
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = model.embedding_

    def test_predict_classifies_unlabelled_vertices(self, small_sbm):
        edges, truth = small_sbm
        y = mask_labels(truth, 0.2, seed=0)
        model = GraphEncoderEmbedding(method="vectorized", normalize=True).fit(edges, y)
        pred = model.predict()
        # Known labels are passed through unchanged.
        known = y != -1
        np.testing.assert_array_equal(pred[known], y[known])
        # Overall accuracy against the planted truth should be high.
        assert np.mean(pred == truth) > 0.85

    def test_predict_subset_of_vertices(self, small_sbm_partial):
        edges, _, y = small_sbm_partial
        model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        subset = np.array([0, 5, 10])
        assert model.predict(subset).shape == (3,)

    def test_fit_unsupervised_requires_n_classes(self, small_sbm):
        edges, _ = small_sbm
        with pytest.raises(ValueError, match="n_classes"):
            GraphEncoderEmbedding().fit_unsupervised(edges)

    def test_fit_unsupervised_recovers_structure(self, small_sbm):
        edges, truth = small_sbm
        model = GraphEncoderEmbedding(n_classes=3).fit_unsupervised(edges, seed=0)
        assert best_match_accuracy(truth, model.labels_) > 0.8

    def test_laplacian_flag(self, small_sbm_partial):
        edges, _, y = small_sbm_partial
        plain = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        lap = GraphEncoderEmbedding(method="vectorized", laplacian=True).fit(edges, y)
        assert not np.allclose(plain.embedding_, lap.embedding_)

    def test_timings_exposed(self, small_sbm_partial):
        edges, _, y = small_sbm_partial
        model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        assert "total" in model.timings_

    def test_class_centroids_shape(self, small_sbm_partial):
        edges, _, y = small_sbm_partial
        model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        assert model.class_centroids().shape == (3, 3)


class TestEmbeddingQualitySemiSupervised:
    """E8 (part): GEE separates SBM communities with partial supervision."""

    def test_within_class_distance_smaller(self, small_sbm):
        from repro.eval.metrics import within_between_separation

        edges, truth = small_sbm
        y = mask_labels(truth, 0.3, seed=1)
        res = gee_vectorized(edges, y)
        separation = within_between_separation(res.embedding, truth)
        assert separation > 1.5

    def test_more_labels_do_not_hurt(self, small_sbm):
        edges, truth = small_sbm
        accs = []
        for frac in (0.05, 0.3):
            y = mask_labels(truth, frac, seed=2)
            model = GraphEncoderEmbedding(method="vectorized", normalize=True).fit(edges, y)
            accs.append(np.mean(model.predict() == truth))
        assert accs[1] >= accs[0] - 0.05
