"""Tests for the estimator's out-of-sample transform and streaming partial_fit.

The acceptance contract: ``transform`` on held-out vertices and
``partial_fit`` over streamed edge batches must match a full-batch ``fit``
embedding within 1e-8 on a seeded planted-partition graph.
"""

import numpy as np
import pytest

from repro import GraphEncoderEmbedding
from repro.graph import EdgeList, planted_partition
from repro.labels import mask_labels

ATOL = 1e-8


@pytest.fixture(scope="module")
def planted_case():
    edges, truth = planted_partition(300, 3, 0.1, 0.01, seed=5)
    y = mask_labels(truth, 0.3, seed=2)
    return edges, truth, y


def _split_edges(edges, mask, n_vertices):
    keep = EdgeList(edges.src[mask], edges.dst[mask], None, n_vertices)
    rest = EdgeList(edges.src[~mask], edges.dst[~mask], None, n_vertices)
    return keep, rest


class TestTransform:
    def test_held_out_vertices_match_full_batch_fit(self, planted_case):
        edges, _, y = planted_case
        n_held = 30
        n_core = edges.n_vertices - n_held
        # Held-out vertices are unlabelled everywhere, so the full-batch fit
        # with them present is the ground truth their transform must match.
        y_masked = y.copy()
        y_masked[n_core:] = -1
        full = GraphEncoderEmbedding(method="vectorized").fit(edges, y_masked)

        core_mask = (edges.src < n_core) & (edges.dst < n_core)
        core_edges = EdgeList(edges.src[core_mask], edges.dst[core_mask], None, n_core)
        held_edges = EdgeList(
            edges.src[~core_mask], edges.dst[~core_mask], None, edges.n_vertices
        )
        model = GraphEncoderEmbedding(3, method="vectorized").fit(
            core_edges, y_masked[:n_core]
        )
        Z_new = model.transform(held_edges)
        assert Z_new.shape == (n_held, 3)
        np.testing.assert_allclose(Z_new, full.embedding_[n_core:], atol=ATOL)

    def test_explicit_vertex_selection(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        # Recompute two fitted rows from only their incident edges.
        targets = np.array([3, 7])
        incident = np.isin(edges.src, targets) | np.isin(edges.dst, targets)
        sub = EdgeList(edges.src[incident], edges.dst[incident], None, edges.n_vertices)
        rows = model.transform(sub, vertices=targets)
        # Rows of unlabelled target vertices match the fit exactly; labelled
        # ones too, because only the target rows are read back.
        np.testing.assert_allclose(rows, model.embedding_[targets], atol=ATOL)

    def test_transform_requires_fit(self, planted_case):
        edges, _, _ = planted_case
        with pytest.raises(RuntimeError, match="not fitted"):
            GraphEncoderEmbedding().transform(edges)

    def test_transform_rejected_with_laplacian(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding(method="vectorized", laplacian=True).fit(edges, y)
        with pytest.raises(ValueError, match="laplacian"):
            model.transform(edges)

    def test_normalized_transform(self, planted_case):
        edges, _, y = planted_case
        n_core = edges.n_vertices - 30
        y_masked = y.copy()
        y_masked[n_core:] = -1
        core_mask = (edges.src < n_core) & (edges.dst < n_core)
        core_edges, held_edges = _split_edges(edges, core_mask, edges.n_vertices)
        model = GraphEncoderEmbedding(3, method="vectorized", normalize=True).fit(
            core_edges, y_masked
        )
        full = GraphEncoderEmbedding(method="vectorized", normalize=True).fit(
            edges, y_masked
        )
        Z_new = model.transform(held_edges, vertices=np.arange(n_core, edges.n_vertices))
        np.testing.assert_allclose(Z_new, full.embedding_[n_core:], atol=ATOL)


class TestPartialFit:
    @pytest.mark.parametrize("n_batches", [1, 4, 9])
    def test_streamed_batches_match_full_batch_fit(self, planted_case, n_batches):
        edges, _, y = planted_case
        full = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        model = GraphEncoderEmbedding(3)
        for i, ids in enumerate(np.array_split(np.arange(edges.n_edges), n_batches)):
            batch = EdgeList(edges.src[ids], edges.dst[ids], None, edges.n_vertices)
            model.partial_fit(batch, labels=y if i == 0 else None)
        np.testing.assert_allclose(model.embedding_, full.embedding_, atol=ATOL)
        np.testing.assert_allclose(model.projection_, full.projection_, atol=ATOL)

    def test_continues_from_batch_fit(self, planted_case):
        edges, _, y = planted_case
        full = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        half = edges.n_edges // 2
        first = EdgeList(edges.src[:half], edges.dst[:half], None, edges.n_vertices)
        rest = EdgeList(edges.src[half:], edges.dst[half:], None, edges.n_vertices)
        model = GraphEncoderEmbedding(3, method="vectorized").fit(first, y)
        model.partial_fit(rest)
        np.testing.assert_allclose(model.embedding_, full.embedding_, atol=ATOL)

    def test_new_vertices_grow_the_embedding(self):
        # Stream a graph whose second batch introduces new labelled vertices
        # (their edges arrive with or after their labels).
        src1, dst1 = np.array([0, 1]), np.array([1, 2])
        src2, dst2 = np.array([2, 3, 4]), np.array([3, 4, 0])
        y1 = np.array([0, 1, 0])
        y_all = np.array([0, 1, 0, 1, 0])
        model = GraphEncoderEmbedding(2)
        model.partial_fit(EdgeList(src1, dst1), labels=y1)
        assert model.embedding_.shape == (3, 2)
        model.partial_fit(EdgeList(src2, dst2), labels=y_all)
        assert model.embedding_.shape == (5, 2)
        full = GraphEncoderEmbedding(method="python").fit(
            EdgeList(np.concatenate([src1, src2]), np.concatenate([dst1, dst2])),
            y_all,
        )
        np.testing.assert_allclose(model.embedding_, full.embedding_, atol=ATOL)

    def test_first_call_requires_labels_or_n_classes(self, planted_case):
        edges, _, _ = planted_case
        with pytest.raises(ValueError, match="labels"):
            GraphEncoderEmbedding().partial_fit(edges)

    def test_first_call_with_n_classes_streams_unlabelled(self, planted_case):
        # An explicit n_classes makes an unlabelled start well-defined:
        # every vertex arrives unknown, so no edge contributes yet.
        edges, _, y = planted_case
        model = GraphEncoderEmbedding(3).partial_fit(edges)
        assert model.embedding_.shape == (edges.n_vertices, 3)
        np.testing.assert_array_equal(model.embedding_, 0.0)

    def test_label_rewrites_rejected(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding(3).partial_fit(edges, labels=y)
        flipped = y.copy()
        flipped[0] = (y[0] + 1) % 3
        with pytest.raises(ValueError, match="must not change"):
            model.partial_fit(edges, labels=flipped)
        shorter = y[:-1]
        with pytest.raises(ValueError, match="extended"):
            model.partial_fit(edges, labels=shorter)

    def test_padding_vertices_may_be_labelled_later(self):
        # Vertex 4 exists only as id-range padding after batch 1 (no incident
        # edge); labelling it later is allowed — only edge-touched vertices
        # have their labels frozen.
        model = GraphEncoderEmbedding(3)
        model.partial_fit(
            EdgeList([0, 5], [1, 0]), labels=np.array([0, 1, -1, -1, -1, 2])
        )
        model.partial_fit(
            EdgeList([4], [0]), labels=np.array([0, 1, -1, -1, 1, 2])
        )
        full = GraphEncoderEmbedding(method="python").fit(
            EdgeList([0, 5, 4], [1, 0, 0]), np.array([0, 1, -1, -1, 1, 2])
        )
        np.testing.assert_allclose(model.embedding_, full.embedding_, atol=ATOL)

    def test_partial_fit_rejected_with_laplacian(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding(3, laplacian=True)
        with pytest.raises(ValueError, match="laplacian"):
            model.partial_fit(edges, labels=y)

    def test_predict_after_streaming(self, planted_case):
        edges, truth, y = planted_case
        model = GraphEncoderEmbedding(3, normalize=True)
        for i, ids in enumerate(np.array_split(np.arange(edges.n_edges), 5)):
            batch = EdgeList(edges.src[ids], edges.dst[ids], None, edges.n_vertices)
            model.partial_fit(batch, labels=y if i == 0 else None)
        pred = model.predict()
        assert np.mean(pred == truth) > 0.8


class TestFitTransform:
    def test_matches_fit_then_embedding(self, planted_case):
        edges, _, y = planted_case
        a = GraphEncoderEmbedding(method="vectorized").fit_transform(edges, y)
        b = GraphEncoderEmbedding(method="vectorized").fit(edges, y).embedding_
        np.testing.assert_allclose(a, b, atol=1e-12)


def _empty_edges(n_vertices=0):
    return EdgeList(
        np.array([], dtype=np.int64), np.array([], dtype=np.int64), None, n_vertices
    )


class TestDegenerateInputs:
    """Zero-edge graphs and empty batches through every estimator entry point."""

    @pytest.mark.parametrize(
        "method",
        ["python", "vectorized", "sparse", "parallel", "ligra-vectorized"],
    )
    def test_fit_on_zero_edge_graph(self, method):
        y = np.array([0, 1, 0, 1, -1])
        model = GraphEncoderEmbedding(method=method).fit(_empty_edges(5), y)
        assert model.embedding_.shape == (5, 2)
        np.testing.assert_array_equal(model.embedding_, 0.0)
        # Fitted state is fully usable: projections, centroids, prediction.
        assert model.projection_.shape == (5, 2)
        assert model.predict().shape == (5,)

    def test_fit_zero_edge_chunked(self):
        y = np.array([0, 1, 0, 1, -1])
        model = GraphEncoderEmbedding(method="vectorized").fit(
            _empty_edges(5), y, chunk_edges=3
        )
        np.testing.assert_array_equal(model.embedding_, 0.0)

    def test_fit_zero_vertex_graph_rejected(self):
        with pytest.raises(ValueError, match="at least one vertex"):
            GraphEncoderEmbedding().fit(_empty_edges(0), np.array([]))

    def test_transform_empty_batch(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        out = model.transform(_empty_edges())
        assert out.shape == (0, 3)
        out = model.transform(np.empty((0, 2)))
        assert out.shape == (0, 3)
        # Selecting fitted vertices against an empty batch returns their
        # (zero-contribution) rows rather than failing.
        out = model.transform(_empty_edges(), vertices=np.array([1, 2]))
        assert out.shape == (2, 3)
        np.testing.assert_array_equal(out, 0.0)

    def test_transform_empty_batch_normalized(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding(method="vectorized", normalize=True).fit(edges, y)
        assert model.transform(_empty_edges()).shape == (0, 3)

    def test_partial_fit_empty_batch_is_identity(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding().partial_fit(edges, labels=y)
        before = model.embedding_.copy()
        model.partial_fit(_empty_edges())
        np.testing.assert_array_equal(model.embedding_, before)
        model.partial_fit(np.empty((0, 3)))
        np.testing.assert_array_equal(model.embedding_, before)

    def test_partial_fit_empty_first_batch_with_labels(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding().partial_fit(_empty_edges(), labels=y)
        assert model.embedding_.shape == (y.shape[0], 3)
        np.testing.assert_array_equal(model.embedding_, 0.0)
        # Streaming the real edges afterwards matches a full-batch fit.
        model.partial_fit(edges)
        full = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        np.testing.assert_allclose(model.embedding_, full.embedding_, atol=ATOL)

    def test_partial_fit_empty_first_batch_with_n_classes_only(self):
        # The regression this guards: an empty unlabelled start with an
        # explicit n_classes used to raise instead of initialising.
        model = GraphEncoderEmbedding(3).partial_fit(_empty_edges())
        assert model.is_fitted_
        assert model.embedding_.shape == (0, 3)

    def test_partial_fit_empty_batch_after_fit_continues(self, planted_case):
        edges, _, y = planted_case
        model = GraphEncoderEmbedding(method="vectorized").fit(edges, y)
        before = model.embedding_.copy()
        model.partial_fit(_empty_edges())
        np.testing.assert_allclose(model.embedding_, before, atol=1e-12)


class TestStreamingRemovals:
    """partial_fit(remove=True) and update(MutationDelta)."""

    def test_remove_inverts_ingestion(self, planted_case):
        edges, _, y = planted_case
        half = edges.n_edges // 2
        first = EdgeList(edges.src[:half], edges.dst[:half],
                         None, edges.n_vertices)
        second = EdgeList(edges.src[half:], edges.dst[half:],
                          None, edges.n_vertices)
        model = GraphEncoderEmbedding(3).partial_fit(first, labels=y)
        model.partial_fit(second)
        model.partial_fit(second, remove=True)
        only_first = GraphEncoderEmbedding(3).partial_fit(first, labels=y)
        np.testing.assert_allclose(
            model.embedding_, only_first.embedding_, atol=ATOL
        )

    def test_remove_weighted_batch(self):
        y = np.array([0, 1, 0, 1])
        e1 = EdgeList(np.array([0, 1]), np.array([1, 2]),
                      np.array([2.0, 3.0]), 4)
        e2 = EdgeList(np.array([2, 3]), np.array([3, 0]),
                      np.array([4.0, 5.0]), 4)
        model = GraphEncoderEmbedding(2).partial_fit(e1, labels=y)
        model.partial_fit(e2)
        model.partial_fit(e1, remove=True)
        alone = GraphEncoderEmbedding(2).partial_fit(e2, labels=y)
        np.testing.assert_allclose(model.embedding_, alone.embedding_, atol=ATOL)

    def test_update_applies_mutation_delta(self, planted_case):
        from repro.graph import Graph
        from repro.stream import DynamicGraph

        edges, _, y = planted_case
        dyn = DynamicGraph(edges)
        model = GraphEncoderEmbedding(3).fit(dyn.graph, y)
        dyn.add_edges([0, 1, 2], [5, 6, 7])
        dyn.remove_edges(edges.src[:2], edges.dst[:2])
        delta = dyn.commit()
        model.update(delta)
        fresh = GraphEncoderEmbedding(3).fit(Graph(dyn.graph.edges.copy()), y)
        np.testing.assert_allclose(model.embedding_, fresh.embedding_, atol=ATOL)

    def test_update_with_vertex_growth_and_labels(self, planted_case):
        from repro.graph import Graph
        from repro.stream import DynamicGraph

        edges, _, y = planted_case
        dyn = DynamicGraph(edges)
        model = GraphEncoderEmbedding(3).fit(dyn.graph, y)
        dyn.add_vertices(2)
        n = edges.n_vertices
        dyn.add_edges([n, n + 1], [0, 1])
        delta = dyn.commit()
        y2 = np.concatenate([y, [0, 2]])
        model.update(delta, labels=y2)
        fresh = GraphEncoderEmbedding(3).fit(Graph(dyn.graph.edges.copy()), y2)
        np.testing.assert_allclose(model.embedding_, fresh.embedding_, atol=ATOL)

    def test_update_requires_delta_and_fitted_state(self, planted_case):
        from repro.stream import DynamicGraph

        edges, _, y = planted_case
        with pytest.raises(TypeError, match="MutationDelta"):
            GraphEncoderEmbedding(3).update(edges)
        dyn = DynamicGraph(edges)
        dyn.add_edges([0], [1])
        delta = dyn.commit()
        with pytest.raises(RuntimeError, match="fit"):
            GraphEncoderEmbedding(3).update(delta)
