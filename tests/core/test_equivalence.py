"""E7: every implementation computes the same embedding as the reference.

This is the paper's §III claim ("GEE-Ligra ... computes the same values on
the same input") verified across all implementations, backends, graph
shapes, label densities and edge orderings, including property-based tests
over randomly generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gee_ligra, gee_parallel, gee_python, gee_vectorized
from repro.graph import EdgeList, erdos_renyi, rmat, star_graph, symmetrize
from repro.labels import random_partial_labels

ATOL = 1e-9


def _implementations():
    return {
        "vectorized": lambda e, y, k: gee_vectorized(e, y, k),
        "vectorized-chunked": lambda e, y, k: gee_vectorized(e, y, k, chunk_edges=97),
        "ligra-serial": lambda e, y, k: gee_ligra(e, y, k, backend="serial"),
        "ligra-vectorized": lambda e, y, k: gee_ligra(e, y, k, backend="vectorized"),
        "ligra-threads": lambda e, y, k: gee_ligra(e, y, k, backend="threads", n_workers=4),
        "ligra-processes": lambda e, y, k: gee_ligra(e, y, k, backend="processes", n_workers=2),
        "parallel-1": lambda e, y, k: gee_parallel(e, y, k, n_workers=1),
        "parallel-4": lambda e, y, k: gee_parallel(e, y, k, n_workers=4),
    }


GRAPH_CASES = {
    "erdos-renyi": lambda: erdos_renyi(150, 900, seed=3),
    "erdos-renyi-weighted": lambda: erdos_renyi(150, 900, seed=4, weighted=True),
    "rmat-skewed": lambda: rmat(8, edge_factor=6, seed=5),
    "undirected": lambda: symmetrize(erdos_renyi(100, 400, seed=6)),
    "star": lambda: star_graph(50),
}


@pytest.mark.parametrize("impl_name", sorted(_implementations()))
@pytest.mark.parametrize("graph_name", sorted(GRAPH_CASES))
def test_matches_reference_on_graph_zoo(impl_name, graph_name):
    edges = GRAPH_CASES[graph_name]()
    y = random_partial_labels(edges.n_vertices, 7, 0.3, seed=1)
    reference = gee_python(edges, y, 7).embedding
    result = _implementations()[impl_name](edges, y, 7)
    np.testing.assert_allclose(result.embedding, reference, atol=ATOL)
    np.testing.assert_allclose(result.projection, gee_python(edges, y, 7).projection, atol=ATOL)


@pytest.mark.parametrize("labelled_fraction", [0.0, 0.05, 0.5, 1.0])
def test_label_density_sweep(labelled_fraction):
    edges = erdos_renyi(120, 700, seed=9)
    y = random_partial_labels(edges.n_vertices, 10, labelled_fraction, seed=2)
    reference = gee_python(edges, y, 10).embedding
    for name, impl in _implementations().items():
        np.testing.assert_allclose(
            impl(edges, y, 10).embedding, reference, atol=ATOL, err_msg=name
        )


def test_edge_order_invariance():
    """Permuting the edge list must not change the embedding (commutativity)."""
    edges = erdos_renyi(80, 500, seed=11, weighted=True)
    y = random_partial_labels(80, 5, 0.4, seed=3)
    base = gee_vectorized(edges, y, 5).embedding
    rng = np.random.default_rng(0)
    for _ in range(3):
        perm = rng.permutation(edges.n_edges)
        shuffled = edges.permute_edges(perm)
        np.testing.assert_allclose(gee_vectorized(shuffled, y, 5).embedding, base, atol=ATOL)


def test_csr_input_equals_edgelist_input():
    edges = erdos_renyi(100, 600, seed=13)
    y = random_partial_labels(100, 6, 0.3, seed=5)
    from_edges = gee_parallel(edges, y, 6, n_workers=2).embedding
    from_csr = gee_parallel(edges.to_csr(), y, 6, n_workers=2).embedding
    np.testing.assert_allclose(from_edges, from_csr, atol=ATOL)
    ligra_csr = gee_ligra(edges.to_csr(), y, 6, backend="vectorized").embedding
    np.testing.assert_allclose(ligra_csr, from_edges, atol=ATOL)


def test_atomics_on_off_same_result():
    """The paper's atomics-off run: unsafe updates change nothing serially,
    and the lock-striped threads backend stays exact."""
    edges = rmat(7, edge_factor=8, seed=17)
    y = random_partial_labels(edges.n_vertices, 8, 0.5, seed=7)
    ref = gee_python(edges, y, 8).embedding
    on = gee_ligra(edges, y, 8, backend="threads", n_workers=4, atomic=True).embedding
    off = gee_ligra(edges, y, 8, backend="serial", atomic=False).embedding
    np.testing.assert_allclose(on, ref, atol=ATOL)
    np.testing.assert_allclose(off, ref, atol=ATOL)


@st.composite
def graph_and_labels(draw):
    n = draw(st.integers(2, 40))
    s = draw(st.integers(0, 120))
    k = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=s)
    dst = rng.integers(0, n, size=s)
    weights = rng.uniform(0.1, 2.0, size=s) if draw(st.booleans()) else None
    labels = rng.integers(-1, k, size=n)
    if np.all(labels == -1):
        labels[0] = 0
    return EdgeList(src, dst, weights, n), labels.astype(np.int64), k


class TestPropertyBased:
    @given(case=graph_and_labels())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_equals_reference(self, case):
        edges, labels, k = case
        ref = gee_python(edges, labels, k).embedding
        vec = gee_vectorized(edges, labels, k).embedding
        np.testing.assert_allclose(vec, ref, atol=ATOL)

    @given(case=graph_and_labels())
    @settings(max_examples=25, deadline=None)
    def test_ligra_serial_equals_reference(self, case):
        edges, labels, k = case
        ref = gee_python(edges, labels, k).embedding
        lig = gee_ligra(edges, labels, k, backend="serial").embedding
        np.testing.assert_allclose(lig, ref, atol=ATOL)

    @given(case=graph_and_labels())
    @settings(max_examples=15, deadline=None)
    def test_parallel_equals_reference(self, case):
        edges, labels, k = case
        ref = gee_python(edges, labels, k).embedding
        par = gee_parallel(edges, labels, k, n_workers=2).embedding
        np.testing.assert_allclose(par, ref, atol=ATOL)

    @given(case=graph_and_labels())
    @settings(max_examples=25, deadline=None)
    def test_embedding_mass_equals_weighted_known_degree(self, case):
        """Invariant: sum(Z) equals the total normalised contribution mass.

        Every edge endpoint with a known label contributes exactly
        ``w / count(class)`` to one cell, so the total embedding mass equals
        the sum over edges of those normalised weights.
        """
        edges, labels, k = case
        res = gee_vectorized(edges, labels, k)
        scales = np.zeros(edges.n_vertices)
        known = labels >= 0
        counts = np.bincount(labels[known], minlength=k)
        scales[known] = 1.0 / counts[labels[known]]
        w = edges.effective_weights()
        expected = float(np.sum(w * scales[edges.dst]) + np.sum(w * scales[edges.src]))
        assert res.embedding.sum() == pytest.approx(expected, abs=1e-8)
