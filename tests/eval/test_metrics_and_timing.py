"""Tests for evaluation metrics, timing utilities and report formatting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    Timer,
    accuracy,
    adjusted_rand_index,
    ascii_line_plot,
    best_match_accuracy,
    confusion_matrix,
    format_csv,
    format_markdown_table,
    normalized_mutual_information,
    time_callable,
    within_between_separation,
)


class TestAccuracyAndConfusion:
    def test_accuracy_basic(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 1.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))

    def test_confusion_matrix_counts(self):
        table = confusion_matrix(np.array([0, 0, 1]), np.array([0, 1, 1]))
        assert table.tolist() == [[1, 1], [0, 1]]

    def test_confusion_matrix_empty(self):
        assert confusion_matrix(np.array([]), np.array([])).shape == (0, 0)


class TestClusteringMetrics:
    def test_ari_identical_partitions(self):
        y = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(y, y) == pytest.approx(1.0)

    def test_ari_permuted_labels_still_one(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_ari_random_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 2000)
        b = rng.integers(0, 5, 2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_nmi_identical(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert normalized_mutual_information(y, y) == pytest.approx(1.0)

    def test_nmi_independent_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 3000)
        b = rng.integers(0, 4, 3000)
        assert normalized_mutual_information(a, b) < 0.05

    def test_nmi_single_cluster(self):
        assert normalized_mutual_information(np.zeros(5, int), np.zeros(5, int)) == 1.0

    def test_best_match_accuracy_handles_permutation(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert best_match_accuracy(a, b) == pytest.approx(1.0)

    @given(labels=st.lists(st.integers(0, 3), min_size=2, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_metric_bounds_property(self, labels):
        y = np.array(labels)
        rng = np.random.default_rng(0)
        other = rng.integers(0, 4, y.size)
        ari = adjusted_rand_index(y, other)
        nmi = normalized_mutual_information(y, other)
        assert -1.0 <= ari <= 1.0 + 1e-12
        assert -1e-12 <= nmi <= 1.0 + 1e-12


class TestSeparation:
    def test_separated_clusters_score_high(self):
        rng = np.random.default_rng(0)
        Z = np.vstack([rng.normal(0, 0.05, (40, 3)), rng.normal(3, 0.05, (40, 3))])
        y = np.repeat([0, 1], 40)
        assert within_between_separation(Z, y) > 5

    def test_random_embedding_scores_near_one(self):
        rng = np.random.default_rng(1)
        Z = rng.standard_normal((80, 3))
        y = rng.integers(0, 2, 80)
        assert within_between_separation(Z, y) == pytest.approx(1.0, abs=0.2)

    def test_sampling_path(self):
        rng = np.random.default_rng(2)
        Z = rng.standard_normal((500, 2))
        y = rng.integers(0, 3, 500)
        value = within_between_separation(Z, y, sample=100, seed=0)
        assert np.isfinite(value)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            within_between_separation(np.zeros((3, 2)), np.zeros(4, int))


class TestTiming:
    def test_timer_records_samples(self):
        timer = Timer()
        with timer.measure("phase"):
            sum(range(1000))
        with timer.measure("phase"):
            sum(range(1000))
        assert timer.records["phase"].n_samples == 2
        assert timer.best("phase") >= 0

    def test_time_callable_repeats(self):
        record = time_callable(lambda: sum(range(100)), repeats=3, warmup=1)
        assert record.n_samples == 3
        assert record.best <= record.mean + 1e-12

    def test_time_callable_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestReporting:
    def test_markdown_table_structure(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.25}]
        text = format_markdown_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("| a | b |")
        assert len(lines) == 4

    def test_markdown_table_empty(self):
        assert format_markdown_table([]) == "(no rows)"

    def test_csv_output(self):
        rows = [{"x": 1, "y": "p"}]
        assert format_csv(rows) == "x,y\n1,p"

    def test_csv_empty(self):
        assert format_csv([]) == ""

    def test_ascii_plot_contains_markers_and_legend(self):
        series = {"runtime": [(1, 1.0), (10, 10.0), (100, 100.0)]}
        art = ascii_line_plot(series, logx=True, logy=True, xlabel="edges", ylabel="sec")
        assert "legend" in art
        assert "o" in art

    def test_ascii_plot_no_data(self):
        assert ascii_line_plot({"empty": []}) == "(no data)"
