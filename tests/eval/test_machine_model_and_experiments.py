"""Tests for the machine model and (small-scale) experiment drivers."""

import numpy as np
import pytest

from repro.eval.machine_model import PAPER_MACHINE, MachineModel, fit_p_half
from repro.eval import experiments


class TestMachineModel:
    def test_runtime_scales_linearly_with_edges(self):
        m = PAPER_MACHINE
        assert m.runtime(2_000_000, 4) == pytest.approx(2 * m.runtime(1_000_000, 4), rel=0.01)

    def test_speedup_is_monotone_in_cores(self):
        m = PAPER_MACHINE
        speedups = [m.speedup(1_800_000_000, p) for p in range(1, 25)]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_paper_headline_point_reproduced(self):
        """Figure 3's endpoint: ~11x speedup at 24 cores on Friendster."""
        speedup = PAPER_MACHINE.speedup(1_800_000_000, 24)
        assert 9.0 <= speedup <= 13.0

    def test_serial_runtime_order_of_magnitude(self):
        """Table I: Ligra serial on Friendster took 77 s."""
        t = PAPER_MACHINE.runtime(1_800_000_000, 1)
        assert 50 <= t <= 110

    def test_sublinear_beyond_bandwidth_knee(self):
        m = PAPER_MACHINE
        s = 1_800_000_000
        assert m.speedup(s, 24) < 24 * 0.75

    def test_bandwidth_saturates(self):
        m = PAPER_MACHINE
        assert m.bandwidth(48) < 2 * m.bandwidth(4)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PAPER_MACHINE.runtime(-1, 2)
        with pytest.raises(ValueError):
            PAPER_MACHINE.runtime(10, 0)
        with pytest.raises(ValueError):
            PAPER_MACHINE.bandwidth(0)

    def test_scaled_matches_measured_serial(self):
        m = PAPER_MACHINE.scaled(measured_serial=2.0, n_edges=10_000_000)
        assert m.runtime(10_000_000, 1) == pytest.approx(2.0, rel=1e-6)

    def test_speedup_curve_keys(self):
        curve = PAPER_MACHINE.speedup_curve(1_000_000, [1, 2, 4])
        assert set(curve) == {1, 2, 4}

    def test_fit_p_half_recovers_generator(self):
        truth = MachineModel(bandwidth_half_cores=5.0)
        cores = [1, 2, 4, 8, 16, 24]
        speedups = [truth.speedup(10**9, p) for p in cores]
        fitted = fit_p_half(cores, speedups, 10**9)
        assert fitted.bandwidth_half_cores == pytest.approx(5.0, abs=0.5)

    def test_fit_p_half_invalid(self):
        with pytest.raises(ValueError):
            fit_p_half([], [], 100)


@pytest.mark.slow
class TestExperimentDriversSmall:
    """Run every experiment driver at a tiny scale to validate plumbing."""

    SCALE = 1e-5

    def test_table1_rows_and_columns(self):
        rows = experiments.table1(scale=self.SCALE, repeats=1, datasets=["twitch-sim", "pokec-sim"])
        assert len(rows) == 2
        for row in rows:
            for col in experiments.TABLE1_COLUMNS:
                assert row[col] > 0
            assert row["speedup_vs_numba"] > 0
            assert row["paper_speedup_vs_numba"] > 0

    def test_figure2_normalisation(self):
        rows = experiments.figure2(scale=self.SCALE, repeats=1, dataset="twitch-sim")
        by_name = {r["implementation"]: r for r in rows}
        assert by_name["numba-serial"]["normalized_to_numba"] == pytest.approx(1.0)
        assert by_name["gee-python"]["runtime_s"] > 0
        # The paper's own normalisation is reproduced exactly from Table I.
        assert by_name["gee-python"]["paper_normalized"] == pytest.approx(12.18 / 0.20)
        assert by_name["ligra-parallel"]["paper_normalized"] == pytest.approx(0.013 / 0.20)

    def test_figure3_structure(self):
        data = experiments.figure3(scale=self.SCALE, repeats=1, dataset="twitch-sim", max_cores=2)
        assert data["measured"][0]["cores"] == 1
        assert data["measured"][0]["speedup"] == pytest.approx(1.0)
        assert len(data["model"]) == 24
        assert data["paper_speedup_24_cores"] == pytest.approx(77.23 / 6.42)

    def test_figure4_linear_growth(self):
        rows = experiments.figure4(log2_edges=[10, 12], repeats=1, include_python=False)
        assert rows[0]["n_edges"] == 1024
        assert rows[1]["n_edges"] == 4096
        assert np.isnan(rows[0]["gee-python"])
        assert rows[1]["numba-serial"] > 0

    def test_ablation_projection_init_fraction_ordering(self):
        rows = experiments.ablation_projection_init(n_vertices=20_000, n_classes=20)
        by_regime = {r["regime"]: r for r in rows}
        # The O(nK) init is a larger fraction of the total on the sparse graph.
        assert by_regime["sparse"]["projection_fraction"] > by_regime["dense"]["projection_fraction"]

    def test_ablation_atomics_results_agree(self):
        out = experiments.ablation_atomics(scale=self.SCALE, repeats=1, dataset="twitch-sim", n_workers=2)
        assert out["max_abs_embedding_deviation"] < 1e-9
        assert out["runtime_atomics_on_s"] > 0

    def test_cli_main_runs_table1(self, capsys):
        code = experiments.main(["table1", "--scale", "1e-5", "--skip-python"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "friendster-sim" in out
