"""Validation of the classic graph algorithms on the Ligra-like engine.

Each algorithm is checked against an independent oracle (queue BFS, dense
PageRank, union-find components, networkx k-core / triangles), which is the
evidence that the engine implements the frontier model correctly.
"""

import networkx as nx
import numpy as np
import pytest

from repro.graph import erdos_renyi, path_graph, star_graph, symmetrize
from repro.graph.properties import connected_components
from repro.ligra import LigraEngine
from repro.ligra.algorithms import (
    bfs,
    bfs_reference,
    connected_components_ligra,
    count_triangles,
    kcore_decomposition,
    pagerank,
    pagerank_reference,
)


@pytest.fixture(scope="module")
def undirected_graph():
    """A simple (no duplicate edges, no self loops) undirected graph.

    The networkx oracles used below collapse parallel edges and ignore self
    loops, so the comparison graph must be simple to start with.
    """
    from repro.graph import deduplicate, remove_self_loops

    multi = erdos_renyi(180, 900, seed=31, undirected=True)
    return deduplicate(remove_self_loops(multi), combine="first")


@pytest.fixture(scope="module")
def engine(undirected_graph):
    return LigraEngine(undirected_graph.to_csr())


def _nx_graph(edges):
    G = nx.Graph()
    G.add_nodes_from(range(edges.n_vertices))
    G.add_edges_from(zip(edges.src.tolist(), edges.dst.tolist()))
    return G


class TestBFS:
    def test_levels_match_reference(self, engine):
        csr = engine.graph
        _, levels = bfs(engine, 0)
        np.testing.assert_array_equal(levels, bfs_reference(csr.indptr, csr.indices, 0))

    def test_parents_are_consistent_with_levels(self, engine):
        parents, levels = bfs(engine, 0)
        for v in range(engine.n_vertices):
            if levels[v] > 0:
                assert levels[parents[v]] == levels[v] - 1

    def test_unreachable_vertices_marked(self):
        edges = path_graph(4)
        # Add two isolated vertices.
        from repro.graph import EdgeList

        iso = EdgeList(edges.src, edges.dst, None, 6)
        engine = LigraEngine(iso.to_csr())
        _, levels = bfs(engine, 0)
        assert levels[4] == -1 and levels[5] == -1

    def test_star_graph_levels(self):
        engine = LigraEngine(star_graph(6).to_csr())
        _, levels = bfs(engine, 0)
        assert levels[0] == 0
        assert np.all(levels[1:] == 1)

    def test_invalid_source(self, engine):
        with pytest.raises(ValueError):
            bfs(engine, engine.n_vertices)


class TestPageRank:
    def test_matches_reference(self, engine):
        csr = engine.graph
        pr = pagerank(engine, max_iterations=60)
        ref = pagerank_reference(csr.indptr, csr.indices, max_iterations=60)
        np.testing.assert_allclose(pr, ref, atol=1e-10)

    def test_sums_to_one(self, engine):
        assert pagerank(engine).sum() == pytest.approx(1.0, abs=1e-9)

    def test_matches_networkx(self, undirected_graph):
        engine = LigraEngine(undirected_graph.to_csr())
        pr = pagerank(engine, damping=0.85, max_iterations=200, tolerance=1e-12)
        G = nx.DiGraph()
        G.add_nodes_from(range(undirected_graph.n_vertices))
        G.add_edges_from(zip(undirected_graph.src.tolist(), undirected_graph.dst.tolist()))
        nx_pr = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=200)
        mine = np.array([pr[v] for v in range(undirected_graph.n_vertices)])
        theirs = np.array([nx_pr[v] for v in range(undirected_graph.n_vertices)])
        np.testing.assert_allclose(mine, theirs, atol=1e-6)

    def test_star_graph_hub_dominates(self):
        engine = LigraEngine(star_graph(20).to_csr())
        pr = pagerank(engine)
        assert pr[0] > pr[1:].max()

    def test_invalid_damping(self, engine):
        with pytest.raises(ValueError):
            pagerank(engine, damping=1.5)

    def test_zero_vertex_graph(self):
        from repro.graph import CSRGraph

        csr = CSRGraph(indptr=np.array([0]), indices=np.array([], dtype=np.int64), weights=np.array([]))
        assert pagerank(LigraEngine(csr)).size == 0


class TestComponents:
    def test_matches_union_find(self, undirected_graph):
        engine = LigraEngine(undirected_graph.to_csr())
        mine = connected_components_ligra(engine)
        ref = connected_components(undirected_graph)
        # Same partition: equal number of components and consistent grouping.
        assert mine.max() == ref.max()
        # Vertices in the same reference component share a ligra label.
        for c in np.unique(ref):
            members = np.flatnonzero(ref == c)
            assert np.unique(mine[members]).size == 1

    def test_disconnected_graph(self):
        from repro.graph import EdgeList

        edges = symmetrize(EdgeList([0, 2], [1, 3], n_vertices=5))
        engine = LigraEngine(edges.to_csr())
        labels = connected_components_ligra(engine)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3


class TestKCoreAndTriangles:
    def test_kcore_matches_networkx(self, undirected_graph):
        engine = LigraEngine(undirected_graph.to_csr())
        mine = kcore_decomposition(engine)
        G = _nx_graph(undirected_graph)
        G.remove_edges_from(nx.selfloop_edges(G))
        theirs = nx.core_number(G)
        for v in range(undirected_graph.n_vertices):
            assert mine[v] == theirs[v]

    def test_triangles_match_networkx(self, undirected_graph):
        csr = undirected_graph.to_csr()
        mine = count_triangles(csr)
        G = _nx_graph(undirected_graph)
        theirs = sum(nx.triangles(G).values()) // 3
        assert mine == theirs

    def test_path_graph_has_no_triangles(self):
        assert count_triangles(path_graph(10).to_csr()) == 0

    def test_complete_graph_triangle_count(self):
        from repro.graph import complete_graph

        assert count_triangles(complete_graph(5).to_csr()) == 10
