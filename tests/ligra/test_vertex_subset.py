"""Unit and property tests for repro.ligra.vertex_subset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ligra import VertexSubset


class TestConstruction:
    def test_empty(self):
        s = VertexSubset.empty(10)
        assert len(s) == 0
        assert not s

    def test_full(self):
        s = VertexSubset.full(10)
        assert len(s) == 10
        assert 7 in s

    def test_single(self):
        s = VertexSubset.single(10, 3)
        assert list(s) == [3]

    def test_from_iterable_deduplicates(self):
        s = VertexSubset.from_iterable(10, [1, 1, 2, 2, 3])
        assert len(s) == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            VertexSubset(5, indices=np.array([7]))

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            VertexSubset(5, mask=np.ones(6, dtype=bool))

    def test_both_representations_rejected(self):
        with pytest.raises(ValueError):
            VertexSubset(5, indices=np.array([0]), mask=np.ones(5, dtype=bool))


class TestRepresentations:
    def test_indices_to_mask(self):
        s = VertexSubset(6, indices=np.array([1, 4]))
        mask = s.mask()
        assert mask.tolist() == [False, True, False, False, True, False]

    def test_mask_to_indices(self):
        mask = np.array([True, False, True])
        s = VertexSubset(3, mask=mask)
        np.testing.assert_array_equal(s.indices(), [0, 2])

    def test_membership_out_of_range(self):
        s = VertexSubset.full(4)
        assert -1 not in s
        assert 4 not in s


class TestSetAlgebra:
    def test_union_intersection_difference(self):
        a = VertexSubset(8, indices=np.array([0, 1, 2]))
        b = VertexSubset(8, indices=np.array([2, 3]))
        assert sorted(a.union(b)) == [0, 1, 2, 3]
        assert sorted(a.intersection(b)) == [2]
        assert sorted(a.difference(b)) == [0, 1]

    def test_complement(self):
        a = VertexSubset(4, indices=np.array([1]))
        assert sorted(a.complement()) == [0, 2, 3]

    def test_incompatible_sizes_rejected(self):
        with pytest.raises(ValueError):
            VertexSubset.full(3).union(VertexSubset.full(4))

    @given(
        n=st.integers(1, 60),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_de_morgan(self, n, data):
        idx_a = data.draw(st.lists(st.integers(0, n - 1), max_size=n))
        idx_b = data.draw(st.lists(st.integers(0, n - 1), max_size=n))
        a = VertexSubset.from_iterable(n, idx_a)
        b = VertexSubset.from_iterable(n, idx_b)
        lhs = a.union(b).complement()
        rhs = a.complement().intersection(b.complement())
        assert lhs == rhs


class TestHeuristics:
    def test_dense_preferred_for_full_frontier(self, random_graph):
        csr = random_graph.to_csr()
        full = VertexSubset.full(csr.n_vertices)
        assert full.is_dense_preferred(csr.indptr, csr.n_edges)

    def test_sparse_preferred_for_tiny_frontier(self, random_graph):
        csr = random_graph.to_csr()
        one = VertexSubset.single(csr.n_vertices, 0)
        assert not one.is_dense_preferred(csr.indptr, csr.n_edges)

    def test_out_degree_sum(self, tiny_edges):
        csr = tiny_edges.to_csr()
        s = VertexSubset(5, indices=np.array([0, 3]))
        assert s.out_degree_sum(csr.indptr) == 3
