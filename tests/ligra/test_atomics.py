"""Unit tests for repro.ligra.atomics, including a real multi-thread race test."""

import threading

import numpy as np
import pytest

from repro.ligra import AtomicArray, UnsafeArray, make_accumulator


class TestAtomicArray:
    def test_write_add_scalar_index(self):
        a = AtomicArray(np.zeros(4))
        a.write_add(2, 1.5)
        a.write_add(2, 0.5)
        assert a.array[2] == pytest.approx(2.0)

    def test_write_add_tuple_index(self):
        a = AtomicArray(np.zeros((3, 3)))
        a.write_add((1, 2), 4.0)
        assert a.array[1, 2] == pytest.approx(4.0)

    def test_write_min(self):
        a = AtomicArray(np.full(3, 10.0))
        assert a.write_min(1, 5.0) is True
        assert a.write_min(1, 7.0) is False
        assert a.array[1] == 5.0

    def test_compare_and_swap(self):
        a = AtomicArray(np.zeros(3))
        assert a.compare_and_swap(0, 0.0, 9.0) is True
        assert a.compare_and_swap(0, 0.0, 5.0) is False
        assert a.array[0] == 9.0

    def test_add_at_bulk(self):
        a = AtomicArray(np.zeros((4, 2)))
        rows = np.array([0, 0, 3])
        cols = np.array([1, 1, 0])
        a.add_at((rows, cols), np.array([1.0, 2.0, 5.0]))
        assert a.array[0, 1] == pytest.approx(3.0)
        assert a.array[3, 0] == pytest.approx(5.0)

    def test_invalid_lock_count(self):
        with pytest.raises(ValueError):
            AtomicArray(np.zeros(3), n_locks=0)

    def test_concurrent_write_add_is_race_free(self):
        """The Figure-1 scenario: many threads adding into the same entries."""
        arr = np.zeros(8)
        atomic = AtomicArray(arr, n_locks=4)
        n_threads, n_iter = 8, 2000

        def work():
            for i in range(n_iter):
                atomic.write_add(i % 8, 1.0)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert arr.sum() == pytest.approx(n_threads * n_iter)


class TestUnsafeArray:
    def test_same_interface(self):
        u = UnsafeArray(np.zeros(3))
        u.write_add(0, 2.0)
        assert u.write_min(1, -1.0) is True
        assert u.compare_and_swap(2, 0.0, 3.0) is True
        u.add_at(np.array([0, 0]), np.array([1.0, 1.0]))
        assert u.array[0] == pytest.approx(4.0)
        assert u.shape == (3,)


class TestFactory:
    def test_make_accumulator_atomic(self):
        acc = make_accumulator(np.zeros(2), atomic=True)
        assert isinstance(acc, AtomicArray)

    def test_make_accumulator_unsafe(self):
        acc = make_accumulator(np.zeros(2), atomic=False)
        assert isinstance(acc, UnsafeArray)
