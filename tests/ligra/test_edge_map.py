"""Tests for edge_map / vertex_map / engine across backends."""

import numpy as np
import pytest

from repro.graph import erdos_renyi
from repro.ligra import (
    EdgeMapFunction,
    LigraEngine,
    VertexSubset,
    edge_map_dense_serial,
    edge_map_sparse,
)
from repro.ligra.backends import AccumulatingEdgeMapFunction, make_backend
from repro.ligra.vertex_map import VertexMapFunction, vertex_map


class DegreeCount(AccumulatingEdgeMapFunction):
    """Counts, per destination, the weighted in-degree — a pure accumulation."""

    def __init__(self, n):
        self.counts = np.zeros(n, dtype=np.float64)

    def output_arrays(self):
        return {"counts": self.counts}

    def update_batch_into(self, outputs, srcs, dsts, weights):
        np.add.at(outputs["counts"], dsts, weights)
        return None


class MarkLargeTargets(EdgeMapFunction):
    """Scalar-only function: flags destinations with id above a threshold."""

    def __init__(self, threshold):
        self.threshold = threshold
        self.hits = []

    def update(self, u, v, w):
        if v >= self.threshold:
            self.hits.append((u, v))
            return True
        return False


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 700, seed=21).to_csr()


class TestSerialTraversals:
    def test_dense_visits_every_edge(self, graph):
        fn = DegreeCount(graph.n_vertices)
        edge_map_dense_serial(graph, VertexSubset.full(graph.n_vertices), fn)
        assert fn.counts.sum() == pytest.approx(graph.n_edges)

    def test_sparse_only_visits_frontier_edges(self, graph):
        fn = DegreeCount(graph.n_vertices)
        frontier = VertexSubset(graph.n_vertices, indices=np.array([0, 1, 2]))
        edge_map_sparse(graph, frontier, fn)
        expected = sum(graph.out_degree(u) for u in (0, 1, 2))
        assert fn.counts.sum() == pytest.approx(expected)

    def test_output_frontier_contains_fired_destinations(self, graph):
        fn = MarkLargeTargets(threshold=60)
        out = edge_map_dense_serial(graph, VertexSubset.full(graph.n_vertices), fn)
        assert all(v >= 60 for v in out)


class TestBackendsAgree:
    @pytest.mark.parametrize("backend", ["serial", "vectorized", "threads", "processes"])
    def test_degree_count_identical(self, graph, backend):
        reference = DegreeCount(graph.n_vertices)
        edge_map_dense_serial(graph, VertexSubset.full(graph.n_vertices), reference)

        fn = DegreeCount(graph.n_vertices)
        with LigraEngine(graph, backend=backend, n_workers=4) as engine:
            engine.edge_map(engine.full_frontier(), fn, mode="dense")
        np.testing.assert_allclose(fn.counts, reference.counts)

    def test_process_backend_falls_back_for_non_accumulating(self, graph):
        fn = MarkLargeTargets(threshold=200)  # never fires
        with pytest.warns(RuntimeWarning, match="falling back"):
            with LigraEngine(graph, backend="processes", n_workers=2) as engine:
                out = engine.edge_map(engine.full_frontier(), fn, mode="dense")
        assert len(out) == 0


class TestEngine:
    def test_auto_mode_switches(self, graph):
        engine = LigraEngine(graph)
        fn = DegreeCount(graph.n_vertices)
        # Tiny frontier -> sparse; should not raise and should count few edges.
        engine.edge_map(VertexSubset.single(graph.n_vertices, 0), fn, mode="auto")
        assert fn.counts.sum() == pytest.approx(graph.out_degree(0))

    def test_mismatched_frontier_rejected(self, graph):
        engine = LigraEngine(graph)
        with pytest.raises(ValueError):
            engine.edge_map(VertexSubset.full(graph.n_vertices + 1), DegreeCount(3))

    def test_invalid_mode_rejected(self, graph):
        engine = LigraEngine(graph)
        with pytest.raises(ValueError):
            engine.edge_map(engine.full_frontier(), DegreeCount(graph.n_vertices), mode="both")

    def test_engine_from_edgelist(self):
        edges = erdos_renyi(30, 90, seed=1)
        engine = LigraEngine(edges)
        assert engine.n_vertices == 30
        assert engine.n_edges == 90

    def test_unknown_backend_name(self, graph):
        with pytest.raises(ValueError):
            make_backend("gpu")

    def test_bad_dense_threshold(self, graph):
        with pytest.raises(ValueError):
            LigraEngine(graph, dense_threshold=0.0)


class TestVertexMap:
    def test_callable_filtering(self):
        frontier = VertexSubset.from_iterable(10, range(10))
        out = vertex_map(frontier, lambda v: v % 2 == 0)
        assert sorted(out) == [0, 2, 4, 6, 8]

    def test_batch_hook(self):
        class Evens(VertexMapFunction):
            def apply(self, v):  # pragma: no cover - batch used instead
                raise AssertionError("batch hook should be used")

            def apply_batch(self, vertices):
                return vertices % 2 == 0

        out = vertex_map(VertexSubset.from_iterable(10, range(10)), Evens())
        assert sorted(out) == [0, 2, 4, 6, 8]

    def test_empty_frontier(self):
        out = vertex_map(VertexSubset.empty(5), lambda v: True)
        assert len(out) == 0

    def test_bad_batch_shape_raises(self):
        class Broken(VertexMapFunction):
            def apply(self, v):
                return True

            def apply_batch(self, vertices):
                return np.ones(vertices.size + 1, dtype=bool)

        with pytest.raises(ValueError):
            vertex_map(VertexSubset.from_iterable(4, range(4)), Broken())
