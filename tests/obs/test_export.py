"""Exporters: trace-event schema, file round-trip, summaries, telemetry."""

from __future__ import annotations

import json

from repro import obs
from repro.obs import export
from repro.obs.__main__ import _records_from_trace


def _record_some_spans():
    obs.enable()
    with obs.trace("plan.compile", K=50, layout="sorted"):
        pass
    with obs.trace("backend.embed", backend="vectorized", n_edges=1000):
        with obs.trace("phase.edge_pass"):
            pass
    obs.record_event("incremental.refresh_decision", reason="churn")
    obs.metrics.count("edges_processed", 1000)
    obs.disable()


def test_trace_events_follow_the_chrome_schema():
    _record_some_spans()
    events = obs.to_trace_events()
    assert len(events) == 4
    for event in events:
        assert event["cat"] == "repro"
        assert event["ph"] in ("X", "i")
        assert isinstance(event["ts"], float)
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert "dur" in event
        else:
            assert event["s"] == "t" and "dur" not in event
    args = {e["name"]: e.get("args") for e in events}
    assert args["plan.compile"] == {"K": 50, "layout": "sorted"}
    assert args["incremental.refresh_decision"] == {"reason": "churn"}


def test_non_jsonable_attrs_are_stringified(tmp_path):
    obs.enable()
    with obs.trace("odd.attr", shape=(3, 4)):
        pass
    obs.disable()
    path = obs.write_trace(tmp_path / "t.json")
    payload = json.loads(path.read_text())
    (event,) = payload["traceEvents"]
    assert event["args"]["shape"] == "(3, 4)"


def test_trace_file_round_trip(tmp_path):
    """write_trace → valid JSON → CLI reader reconstructs the records."""
    _record_some_spans()
    original = obs.snapshot()
    path = obs.write_trace(tmp_path / "trace.json")
    payload = json.loads(path.read_text())
    assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert payload["otherData"]["counters"] == {"edges_processed": 1000}
    assert payload["otherData"]["dropped_spans"] == 0

    recovered = _records_from_trace(str(path))
    assert len(recovered) == len(original)
    for rec, orig in zip(recovered, original):
        kind, name, t0, dur, pid, tid, attrs = rec
        assert (kind, name, pid, tid) == (orig[0], orig[1], orig[4], orig[5])
        assert abs(t0 - orig[2]) < 1e-6 and abs(dur - orig[3]) < 1e-6
        assert (attrs or None) == (orig[6] or None)


def test_start_stop_trace_writes_file_and_toggles_flag(tmp_path):
    target = tmp_path / "run.json"
    obs.start_trace(target)
    assert obs.enabled()
    with obs.trace("traced.region"):
        pass
    written = obs.stop_trace()
    assert not obs.enabled()
    assert written == target and target.exists()
    names = [e["name"] for e in json.loads(target.read_text())["traceEvents"]]
    assert names == ["traced.region"]


def test_stop_trace_without_path_writes_nothing():
    obs.start_trace()  # enable only
    assert obs.stop_trace() is None


def test_aggregate_orders_by_inclusive_total():
    obs.enable()
    for _ in range(3):
        with obs.trace("frequent"):
            pass
    obs.record_event("instant")
    obs.disable()
    rows = obs.aggregate()
    by_name = {r["name"]: r for r in rows}
    assert by_name["frequent"]["count"] == 3
    assert by_name["instant"]["total_s"] == 0.0
    totals = [r["total_s"] for r in rows]
    assert totals == sorted(totals, reverse=True)


def test_format_summary_and_empty_case():
    assert export.format_summary() == "no spans recorded"
    _record_some_spans()
    text = export.format_summary()
    assert "plan.compile" in text and "backend.embed" in text
    top1 = export.format_summary(top=1)
    assert len(top1.splitlines()) == 2  # header + one row


def test_telemetry_shape():
    _record_some_spans()
    summary = obs.telemetry(top=2)
    assert len(summary["top_spans"]) == 2
    assert summary["counters"] == {"edges_processed": 1000}
    for row in summary["top_spans"]:
        assert set(row) == {"name", "count", "total_s", "mean_s"}


def test_env_trace_path_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert export._env_trace_path() is None
    monkeypatch.setenv("REPRO_TRACE", "")
    assert export._env_trace_path() is None
    monkeypatch.setenv("REPRO_TRACE", "/tmp/x.json")
    assert export._env_trace_path() == "/tmp/x.json"
