"""Cross-process span shipping: worker buffers merge into one timeline."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs import core
from repro.parallel.pool import ForkWorkerPool, fork_available

fork_only = pytest.mark.skipif(not fork_available(), reason="fork not available")


def _traced_task(context, tag):
    with obs.trace("worker.unit", tag=tag):
        pass
    obs.metrics.count("worker.units")
    return (os.getpid(), tag)


def _quiet_task(context, tag):
    return tag


@fork_only
def test_worker_spans_ship_and_merge_with_parent_timeline():
    obs.enable()
    parent_pid = os.getpid()
    t_before = core.CLOCK()
    with ForkWorkerPool(2) as pool:
        with obs.trace("parent.dispatch"):
            results = pool.map(
                _traced_task, [("a",), ("b",), ("c",)], labels=["a", "b", "c"]
            )
    t_after = core.CLOCK()
    obs.disable()

    worker_pids = {pid for pid, _ in results}
    assert parent_pid not in worker_pids

    records = obs.snapshot()
    by_name: dict = {}
    for rec in records:
        by_name.setdefault(rec[1], []).append(rec)

    # Every task produced its explicit span and the pool's worker.task span,
    # and they kept the worker's pid (own track in the exported timeline).
    assert len(by_name["worker.unit"]) == 3
    assert len(by_name["worker.task"]) == 3
    for rec in by_name["worker.unit"] + by_name["worker.task"]:
        assert rec[4] in worker_pids
    assert {rec[6]["tag"] for rec in by_name["worker.unit"]} == {"a", "b", "c"}
    assert {rec[6]["label"] for rec in by_name["worker.task"]} == {"a", "b", "c"}
    (dispatch,) = by_name["parent.dispatch"]
    assert dispatch[4] == parent_pid

    # One clock across fork: every cross-process timestamp is bracketed by
    # the parent's measurements, so sorting by t0 yields a sane merged
    # timeline without any offset arithmetic.
    for rec in records:
        assert t_before <= rec[2] <= t_after
    for rec in by_name["worker.unit"] + by_name["worker.task"]:
        assert dispatch[2] <= rec[2] <= dispatch[2] + dispatch[3] + 1e-3

    # Worker counters merged into the parent registry.
    assert obs.metrics.counters()["worker.units"] == 3


@fork_only
def test_workers_ship_nothing_while_tracing_is_off():
    with ForkWorkerPool(2) as pool:
        pool.map(_traced_task, [("a",), ("b",)])
    assert obs.snapshot() == []
    assert obs.metrics.counters() == {}


@fork_only
def test_fork_inherited_parent_buffer_is_not_reshipped():
    obs.enable()
    with obs.trace("parent.pre.fork"):
        pass
    # The pool forks *after* the parent recorded a span; workers must clear
    # the inherited buffer, or the parent span would come back duplicated.
    with ForkWorkerPool(2) as pool:
        pool.map(_traced_task, [("x",)])
    obs.disable()
    names = [rec[1] for rec in obs.snapshot()]
    assert names.count("parent.pre.fork") == 1
