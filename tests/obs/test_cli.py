"""The ``python -m repro.obs`` CLI surface."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import drift
from repro.obs.__main__ import main


@pytest.fixture()
def trace_file(tmp_path):
    obs.enable()
    with obs.trace("backend.embed", backend="vectorized"):
        with obs.trace("phase.edge_pass"):
            pass
    obs.metrics.count("edges_processed", 42)
    obs.disable()
    path = obs.write_trace(tmp_path / "trace.json")
    obs.clear()
    obs.metrics.reset()
    return path


def test_summarize_prints_table_and_counters(trace_file, capsys):
    assert main(["summarize", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "backend.embed" in out
    assert "phase.edge_pass" in out
    assert "edges_processed = 42" in out


def test_summarize_top_limits_rows(trace_file, capsys):
    main(["summarize", str(trace_file), "--top", "1"])
    out = capsys.readouterr().out
    assert "backend.embed" in out
    assert "phase.edge_pass" not in out.split("counters:")[0]


def test_drift_no_probe_reports_recorded_runs(tmp_path, capsys):
    log = tmp_path / "drift.jsonl"
    log.write_text(
        json.dumps(
            {
                "config": "vectorized:sorted",
                "predicted_s": 0.01,
                "observed_s": 0.05,
                "n": 100,
                "E": 1000,
                "K": 5,
            }
        )
        + "\n"
    )
    drift._PENDING.clear()
    assert main(["drift", "--no-probe", "--log", str(log)]) == 0
    out = capsys.readouterr().out
    assert "vectorized:sorted" in out and "DRIFT" in out


def test_drift_check_exit_code(tmp_path, capsys):
    log = tmp_path / "drift.jsonl"
    log.write_text(
        json.dumps(
            {
                "config": "vectorized:sorted",
                "predicted_s": 0.01,
                "observed_s": 0.05,
            }
        )
        + "\n"
    )
    drift._PENDING.clear()
    assert main(["drift", "--no-probe", "--log", str(log), "--check"]) == 1
    capsys.readouterr()
    assert (
        main(
            ["drift", "--no-probe", "--log", str(log), "--check", "--threshold", "10"]
        )
        == 0
    )


def test_drift_json_output(tmp_path, capsys):
    log = tmp_path / "empty.jsonl"
    drift._PENDING.clear()
    assert main(["drift", "--no-probe", "--log", str(log), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["recalibrate"] is False
    assert report["n_recorded_runs"] == 0
