"""The metrics registry: gating, accumulation, cross-process merge."""

from __future__ import annotations

from repro import obs
from repro.obs import metrics


def test_everything_is_gated_while_disabled():
    metrics.count("edges", 10)
    metrics.gauge_set("level", 3)
    metrics.gauge_add("level", 1)
    metrics.observe("tasks", 7)
    assert metrics.counters() == {}
    assert metrics.gauges() == {}
    assert metrics.histograms() == {}


def test_counter_accumulates():
    obs.enable()
    metrics.count("edges")
    metrics.count("edges", 4)
    assert metrics.counters() == {"edges": 5}


def test_gauge_set_and_add():
    obs.enable()
    metrics.gauge_set("segments", 2)
    metrics.gauge_add("segments", 3)
    metrics.gauge_add("segments", -1)
    assert metrics.gauges() == {"segments": 4}


def test_histogram_tracks_count_total_min_max_mean():
    obs.enable()
    for v in (2.0, 8.0, 5.0):
        metrics.observe("task_cost", v)
    hist = metrics.histograms()["task_cost"]
    assert hist["count"] == 3
    assert hist["total"] == 15.0
    assert hist["min"] == 2.0
    assert hist["max"] == 8.0
    assert hist["mean"] == 5.0


def test_drain_and_merge_counters():
    obs.enable()
    metrics.count("edges", 3)
    shipped = metrics.drain_counters()
    assert shipped == {"edges": 3}
    assert metrics.counters() == {}
    metrics.count("edges", 2)
    metrics.merge_counters(shipped)
    assert metrics.counters() == {"edges": 5}
    metrics.merge_counters(None)  # tolerated
    metrics.merge_counters({})
    assert metrics.counters() == {"edges": 5}


def test_reset_clears_all_tables():
    obs.enable()
    metrics.count("a")
    metrics.gauge_set("b", 1)
    metrics.observe("c", 1)
    metrics.reset()
    assert metrics.counters() == {}
    assert metrics.gauges() == {}
    assert metrics.histograms() == {}
