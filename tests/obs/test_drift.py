"""Cost-model drift: recording, persistence, the report's verdict."""

from __future__ import annotations

import json

import pytest

from repro.obs import drift


class FakeChoice:
    """The ExecutionChoice surface record_auto_run consumes."""

    def __init__(self, config="vectorized:sorted", predicted_s=0.01):
        self.config = config
        self.n_workers = 1
        self.n_shards = None
        self.predicted_s = predicted_s
        self.source = "test"
        self.predictions = {config: predicted_s}


@pytest.fixture(autouse=True)
def clean_pending():
    drift._PENDING.clear()
    yield
    drift._PENDING.clear()


def test_record_auto_run_appends_and_skips_unusable():
    drift.record_auto_run(FakeChoice(), 0.02, 100, 1000, 5)
    drift.record_auto_run(FakeChoice(), None, 100, 1000, 5)  # no timing
    drift.record_auto_run(FakeChoice(), 0.0, 100, 1000, 5)  # zero
    assert len(drift._PENDING) == 1
    record = drift._PENDING[0]
    assert record["config"] == "vectorized:sorted"
    assert record["observed_s"] == 0.02
    assert record["predicted_s"] == 0.01
    assert (record["n"], record["E"], record["K"]) == (100, 1000, 5)


def test_pending_is_bounded():
    for _ in range(drift._MAX_PENDING + 10):
        drift.record_auto_run(FakeChoice(), 0.02, 1, 1, 1)
    assert len(drift._PENDING) == drift._MAX_PENDING


def test_flush_and_load_round_trip(tmp_path):
    log = tmp_path / "drift.jsonl"
    drift.record_auto_run(FakeChoice(), 0.02, 100, 1000, 5)
    assert drift.flush_drift_records(log) == log
    assert drift._PENDING == []
    lines = [json.loads(l) for l in log.read_text().splitlines()]
    assert len(lines) == 1 and lines[0]["config"] == "vectorized:sorted"
    # pending + disk merge
    drift.record_auto_run(FakeChoice("parallel:sorted"), 0.03, 100, 1000, 5)
    records = drift.load_drift_records(log)
    assert [r["config"] for r in records] == ["vectorized:sorted", "parallel:sorted"]


def test_flush_trims_log_to_cap(tmp_path):
    log = tmp_path / "drift.jsonl"
    log.write_text(
        "\n".join(json.dumps({"config": "old", "i": i}) for i in range(drift._MAX_LOG_LINES))
        + "\n"
    )
    drift.record_auto_run(FakeChoice(), 0.02, 1, 1, 1)
    drift.flush_drift_records(log)
    lines = log.read_text().splitlines()
    assert len(lines) == drift._MAX_LOG_LINES
    assert json.loads(lines[-1])["config"] == "vectorized:sorted"


def test_flush_nothing_returns_none(tmp_path):
    assert drift.flush_drift_records(tmp_path / "never.jsonl") is None


def test_load_tolerates_garbage_lines(tmp_path):
    log = tmp_path / "drift.jsonl"
    log.write_text('not json\n{"config": "ok"}\n[1,2]\n\n')
    assert [r["config"] for r in drift.load_drift_records(log)] == ["ok"]


def test_passive_summary_groups_and_ratios():
    records = [
        {"config": "a", "predicted_s": 0.01, "observed_s": 0.02},
        {"config": "a", "predicted_s": 0.01, "observed_s": 0.04},
        {"config": "b", "predicted_s": 0.10, "observed_s": 0.10},
        {"config": None, "predicted_s": 1, "observed_s": 1},  # skipped
    ]
    rows = {r["config"]: r for r in drift.passive_summary(records)}
    assert rows["a"]["n_runs"] == 2
    assert rows["a"]["ratio"] == pytest.approx(3.0)
    assert rows["b"]["ratio"] == pytest.approx(1.0)


def test_probe_shape_clamps_to_caps():
    huge = [{"n": 10**9, "E": 10**9, "K": 10**4}]
    assert drift._probe_shape(huge) == (
        drift._PROBE_MAX_N,
        drift._PROBE_MAX_E,
        drift._PROBE_MAX_K,
    )
    assert drift._probe_shape([]) == drift._PROBE_DEFAULT


def test_drift_report_without_probe_judges_recorded(tmp_path):
    log = tmp_path / "drift.jsonl"
    drift.record_auto_run(FakeChoice(predicted_s=0.01), 0.05, 100, 1000, 5)
    drift.flush_drift_records(log)
    report = drift.drift_report(threshold=2.0, probe=False, path=log)
    assert report["recalibrate"] is True  # ratio 5x > 2x
    healthy = drift.drift_report(threshold=10.0, probe=False, path=log)
    assert healthy["recalibrate"] is False
    text = drift.format_drift_report(report)
    assert "DRIFT" in text and "repro.tune" in text
    assert "vectorized:sorted" in text


def test_drift_report_rejects_bad_threshold():
    with pytest.raises(ValueError):
        drift.drift_report(threshold=1.0, probe=False)


def test_probe_candidates_covers_the_three_families():
    rows = drift.probe_candidates(256, 2048, 4, repeats=1)
    families = {r["config"].split(":")[0] for r in rows}
    assert {"vectorized", "sharded"} <= families
    from repro.parallel.pool import fork_available

    if fork_available():
        assert "parallel" in families
    for r in rows:
        assert r["observed_s"] > 0
        assert r["ratio"] == pytest.approx(r["observed_s"] / r["predicted_s"])
