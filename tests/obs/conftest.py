"""Obs-suite fixtures: every test starts and ends with a clean substrate."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.clear()
    obs.metrics.reset()
    yield
    obs.disable()
    obs.clear()
    obs.metrics.reset()
