"""The span substrate: flag gating, record shape, the zero-alloc contract."""

from __future__ import annotations

import gc
import os
import threading
import tracemalloc

import pytest

from repro import obs
from repro.obs import core


def test_disabled_trace_returns_shared_noop_singleton():
    a = obs.trace("anything", k=1)
    b = obs.trace("else")
    assert a is b  # one module-level instance, no per-call allocation
    with a:
        pass
    assert obs.snapshot() == []


def test_enabled_trace_records_complete_span():
    obs.enable()
    with obs.trace("unit.work", k=50, layout="sorted"):
        pass
    records = obs.snapshot()
    assert len(records) == 1
    kind, name, t0, dur, pid, tid, attrs = records[0]
    assert kind == "X"
    assert name == "unit.work"
    assert t0 > 0 and dur >= 0
    assert pid == os.getpid()
    assert tid == threading.get_ident()
    assert attrs == {"k": 50, "layout": "sorted"}


def test_span_error_attribute_on_exception():
    obs.enable()
    with pytest.raises(ValueError):
        with obs.trace("failing.region"):
            raise ValueError("boom")
    (record,) = obs.snapshot()
    assert record[6]["error"] == "ValueError"


def test_span_measures_even_while_disabled():
    span = core.Span("timed").begin()
    duration = span.finish()
    assert duration >= 0
    assert span.duration == duration
    assert obs.snapshot() == []  # measured, not recorded


def test_flag_flip_mid_span_records_at_finish_time():
    span = core.Span("late.enable").begin()
    obs.enable()
    span.finish()
    assert [r[1] for r in obs.snapshot()] == ["late.enable"]


def test_record_event_is_instant_and_gated():
    obs.record_event("ignored.while.disabled")
    assert obs.snapshot() == []
    obs.enable()
    obs.record_event("refresh.decision", reason="churn")
    (record,) = obs.snapshot()
    assert record[0] == "i"
    assert record[3] == 0.0
    assert record[6] == {"reason": "churn"}


def test_traced_decorator_bare_and_configured():
    @obs.traced
    def plain():
        return 1

    @obs.traced("custom.name", backend="x")
    def named():
        return 2

    assert plain() == 1 and named() == 2
    assert obs.snapshot() == []
    obs.enable()
    assert plain() == 1 and named() == 2
    names = [r[1] for r in obs.snapshot()]
    assert names == [plain.__qualname__, "custom.name"]
    attrs = obs.snapshot()[1][6]
    assert attrs == {"backend": "x"}


def test_ring_buffer_caps_and_counts_drops():
    obs.enable()
    for i in range(core.MAX_SPANS + 7):
        core.record_span("s", 0.0, 0.0)
    assert len(obs.snapshot()) == core.MAX_SPANS
    assert obs.dropped() == 7
    obs.clear()
    assert obs.snapshot() == [] and obs.dropped() == 0


def test_mark_and_records_since_window():
    obs.enable()
    with obs.trace("before"):
        pass
    pos = obs.mark()
    with obs.trace("after"):
        pass
    assert [r[1] for r in obs.records_since(pos)] == ["after"]


def test_drain_and_absorb_round_trip():
    obs.enable()
    with obs.trace("shipped"):
        pass
    obs.metrics.count("edges", 5)
    payload = core.drain_for_ship()
    assert payload is not None
    assert obs.snapshot() == []  # drained
    core.absorb(payload)
    assert [r[1] for r in obs.snapshot()] == ["shipped"]
    assert obs.metrics.counters()["edges"] == 5


def test_drain_for_ship_empty_returns_none():
    assert core.drain_for_ship() is None
    core.absorb(None)  # tolerated


def test_disabled_span_site_allocates_nothing():
    """The tentpole contract: a disabled span is tracemalloc-invisible.

    The snapshot comparison is filtered to the substrate's file: the noop
    span must retain zero bytes across thousands of entries (the call
    site's ephemeral kwargs dict is freed on return and never reaches a
    snapshot; tracemalloc's own bookkeeping is out of scope).
    """

    def site():
        with obs.trace("hot.seam", n_edges=1000, backend="vectorized"):
            pass

    obs.disable()
    for _ in range(512):  # warm CPython small-object freelists
        site()
    gc.collect()
    filters = [tracemalloc.Filter(True, core.__file__)]
    tracemalloc.start()
    try:
        for _ in range(256):
            site()
        gc.collect()
        before = tracemalloc.take_snapshot().filter_traces(filters)
        for _ in range(4096):
            site()
        gc.collect()
        after = tracemalloc.take_snapshot().filter_traces(filters)
    finally:
        tracemalloc.stop()
    growth = sum(s.size_diff for s in after.compare_to(before, "lineno"))
    assert growth == 0
