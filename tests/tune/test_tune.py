"""The adaptive execution layer: cost model, calibration cache, auto backend."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro import tune
from repro.backends import backend_capabilities, get_backend
from repro.core import gee_python
from repro.graph import Graph, planted_partition
from repro.labels import mask_labels
from repro.tune import (
    CostModel,
    ExecutionChoice,
    calibration_staleness,
    get_cost_model,
    load_calibration,
    reset_cost_model,
    save_calibration,
    tune_cache_path,
)
from repro.tune.calibration import SCHEMA_VERSION


@pytest.fixture
def tune_dir(tmp_path, monkeypatch):
    """Point the calibration cache at a private directory, reset the model."""
    monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path))
    reset_cost_model(rearm_warning=True)
    yield tmp_path
    reset_cost_model(rearm_warning=True)


def _synthetic_payload(**overrides):
    import os

    payload = {
        "schema": SCHEMA_VERSION,
        "cpu_count": os.cpu_count(),
        "parallel_workers": 0,
        "coefficients": {
            "vectorized:none": {"fixed_s": 1e-5, "per_edge_s": 3e-8, "per_cell_s": 2e-9},
            "vectorized:sorted": {"fixed_s": 1e-5, "per_edge_s": 1e-8, "per_cell_s": 2e-9},
            "vectorized:blocked": {"fixed_s": 1e-5, "per_edge_s": 2e-8, "per_cell_s": 2e-9},
            "sparse:none": {"fixed_s": 2e-5, "per_edge_s": 5e-8, "per_cell_s": 2e-8},
            "python:none": {"fixed_s": 0.0, "per_edge_s": 1e-6, "per_cell_s": 0.0},
        },
    }
    payload.update(overrides)
    return payload


class TestCacheLifecycle:
    def test_cache_path_honours_override(self, tune_dir):
        assert tune_cache_path() == tune_dir / "tune.json"

    def test_missing_cache_warns_once_and_falls_back(self, tune_dir):
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            model = get_cost_model()
            again = get_cost_model()
        assert model.source == "default"
        assert again is model
        tune_warnings = [w for w in rec if "calibration" in str(w.message)]
        assert len(tune_warnings) == 1

    def test_warning_latch_survives_model_reload(self, tune_dir):
        """Regression: the one-time warning must not re-fire on reload.

        ``reset_cost_model()`` used to re-arm the warn latch as a side
        effect, so every cost-model reload (in-process recalibration, a
        fixture swapping ``REPRO_TUNE_DIR``) made the "once-per-process"
        RuntimeWarning fire again — visible noise inside the tier-1 run.
        """
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            get_cost_model()
            reset_cost_model()  # reload WITHOUT re-arming the latch
            reloaded = get_cost_model()
        assert reloaded.source == "default"
        tune_warnings = [w for w in rec if "calibration" in str(w.message)]
        assert len(tune_warnings) == 1

    def test_corrupt_cache_warns_not_errors(self, tune_dir):
        tune_cache_path().parent.mkdir(parents=True, exist_ok=True)
        tune_cache_path().write_text("{not json")
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            model = get_cost_model()
        assert model.source == "default"

    def test_stale_schema_warns_not_errors(self, tune_dir):
        save_calibration(_synthetic_payload(schema=SCHEMA_VERSION + 99))
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            model = get_cost_model()
        assert model.source == "default"
        assert any("stale" in str(w.message) for w in rec)

    def test_fresh_cache_is_used(self, tune_dir):
        save_calibration(_synthetic_payload())
        model = get_cost_model()
        assert model.source == "calibrated"
        assert calibration_staleness(load_calibration()) is None

    def test_cpu_count_mismatch_is_stale(self, tune_dir):
        data = _synthetic_payload(cpu_count=99999)
        assert calibration_staleness(data) is not None

    def test_save_load_round_trip(self, tune_dir):
        path = save_calibration(_synthetic_payload())
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION
        assert load_calibration()["coefficients"]["vectorized:sorted"]


class TestCalibration:
    def test_calibrate_fits_and_round_trips(self, tune_dir, monkeypatch):
        """A real (tiny) calibration run: measure, fit, persist, choose."""
        from repro.tune import calibration

        # Four points, not three: with exactly three the 3-coefficient fit
        # interpolates measurement noise exactly (a few-microsecond wobble
        # on one 100us sample can hand the at-scale ranking to any config),
        # so mirror the real grid's overdetermined structure at toy scale
        # and keep the E spread wide enough to pin the per-edge term.
        monkeypatch.setattr(
            calibration,
            "DESIGN_POINTS",
            ((64, 256), (64, 4096), (512, 4096), (512, 16384)),
        )
        # Best-of-5 per point, and up to two whole-calibration retries for
        # the *measured-ranking* assertions: a load spike on one toy sample
        # can still hand the at-scale ranking to another config, and this
        # test is about the calibrate→fit→persist→choose plumbing, not
        # about the container being idle.  Structural assertions stay
        # unconditional.
        def _ranking_holds(data):
            python_edge = data["coefficients"]["python:none"]["per_edge_s"]
            vec_edge = data["coefficients"]["vectorized:none"]["per_edge_s"]
            save_calibration(data)
            reset_cost_model()
            choice = get_cost_model().choose(10_000, 200_000, 32)
            return (
                python_edge > 10 * vec_edge
                and choice.backend in ("vectorized", "sparse")
            )

        for attempt in range(3):
            data = tune.calibrate(repeats=5, include_parallel=False)
            assert data["schema"] == SCHEMA_VERSION
            for config in ("vectorized:none", "vectorized:sorted",
                           "vectorized:blocked", "sparse:none",
                           "sharded:sorted", "python:none"):
                coeff = data["coefficients"][config]
                assert coeff["per_edge_s"] >= 0 and coeff["fixed_s"] >= 0
            if _ranking_holds(data):
                break
        model = get_cost_model()
        assert model.source == "calibrated"
        # The interpreted loop must be orders of magnitude above vectorized.
        assert (
            data["coefficients"]["python:none"]["per_edge_s"]
            > 10 * data["coefficients"]["vectorized:none"]["per_edge_s"]
        )
        choice = model.choose(10_000, 200_000, 32)
        assert choice.backend in ("vectorized", "sparse")


class TestCostModel:
    def _model(self, **overrides):
        return CostModel.from_calibration(_synthetic_payload(**overrides))

    def test_choose_returns_full_choice(self):
        choice = self._model().choose(10_000, 100_000, 32)
        assert isinstance(choice, ExecutionChoice)
        assert choice.backend == "vectorized" and choice.layout == "sorted"
        assert choice.config in choice.predictions
        assert choice.predicted_s == min(choice.predictions.values())

    def test_python_never_wins_at_scale(self):
        model = self._model()
        # Make the interpreted loop look absurdly cheap; the candidacy cap
        # must still exclude it beyond toy edge counts.
        model.coefficients["python:none"] = {
            "fixed_s": 0.0,
            "per_edge_s": 1e-12,
            "per_cell_s": 0.0,
        }
        choice = model.choose(100_000, 1_000_000, 50)
        assert choice.backend != "python"

    def test_parallel_requires_workers_and_calibration(self):
        model = self._model(
            parallel_workers=8,
            coefficients={
                **_synthetic_payload()["coefficients"],
                "parallel:sorted": {
                    "fixed_s": 1e-4,
                    "per_edge_s": 1e-9,
                    "per_cell_s": 1e-10,
                },
            },
        )
        big = model.choose(200_000, 5_000_000, 50, n_workers_available=8)
        assert big.backend == "parallel" and big.n_workers == 8
        serial_only = model.choose(200_000, 5_000_000, 50, n_workers_available=1)
        assert serial_only.backend != "parallel"
        uncalibrated = self._model().choose(200_000, 5_000_000, 50, n_workers_available=8)
        assert uncalibrated.backend != "parallel"

    def test_chunked_restricts_candidates(self):
        choice = self._model().choose(10_000, 100_000, 32, chunked=True, chunk_edges=512)
        assert choice.config in ("vectorized:none", "vectorized:sorted", "sparse:none")
        assert choice.chunk_edges == 512

    def test_choose_layout_matches_vectorized_ranking(self):
        model = self._model()
        assert model.choose_layout(10_000, 100_000, 32) == "sorted"
        # With a tiny graph the fixed terms tie; any declared layout is fine.
        assert model.choose_layout(5, 4, 2) in ("none", "sorted", "blocked")

    def test_choice_to_dict_is_jsonable(self):
        choice = self._model().choose(1000, 5000, 8)
        json.dumps(choice.to_dict())


class TestAutoBackend:
    @pytest.fixture(scope="class")
    def seeded(self):
        edges, truth = planted_partition(260, 4, 0.1, 0.01, seed=5)
        y = mask_labels(truth, 0.3, seed=5)
        return edges, y

    def test_capabilities(self):
        caps = backend_capabilities("auto")
        assert caps.supports_chunked and caps.supports_incremental
        assert caps.supports_layout and caps.deterministic

    def test_embed_matches_reference_and_logs_choice(self, tune_dir, seeded):
        edges, y = seeded
        reference = gee_python(edges, y, 4).embedding
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = get_backend("auto").embed(Graph.coerce(edges), y, 4)
        np.testing.assert_allclose(result.embedding, reference, atol=1e-10)
        choice = result.execution_choice
        assert isinstance(choice, ExecutionChoice)
        assert choice.backend in ("vectorized", "sparse", "parallel", "python")

    def test_embed_with_plan_can_relayout(self, tune_dir, seeded):
        save_calibration(_synthetic_payload())  # sorted is cheapest
        edges, y = seeded
        graph = Graph.coerce(edges)
        plan = graph.plan(4)  # layout-preserving default plan
        result = get_backend("auto").embed_with_plan(plan, y)
        assert result.execution_choice.layout == "sorted"
        assert result.layout == "sorted"
        np.testing.assert_allclose(
            result.embedding, gee_python(edges, y, 4).embedding, atol=1e-10
        )

    def test_estimator_roundtrip(self, tune_dir, seeded):
        from repro import GraphEncoderEmbedding

        edges, y = seeded
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            model = GraphEncoderEmbedding(method="auto").fit(edges, y)
        np.testing.assert_allclose(
            model.embedding_, gee_python(edges, y, 4).embedding, atol=1e-10
        )
        assert model.result_.execution_choice is not None

    def test_incremental_embedding_accepts_auto(self, tune_dir, seeded):
        from repro.core.gee_vectorized import gee_vectorized
        from repro.stream import DynamicGraph, IncrementalEmbedding

        edges, truth = planted_partition(150, 3, 0.1, 0.01, seed=6)
        dynamic = DynamicGraph(edges)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            live = IncrementalEmbedding(dynamic, truth, 3, backend="auto")
            rng = np.random.default_rng(1)
            dynamic.add_edges(rng.integers(0, 150, 40), rng.integers(0, 150, 40)).commit()
            report = live.update()
        assert report.version_to == 1
        fresh = gee_vectorized(dynamic.graph.edges, truth, 3).embedding
        np.testing.assert_allclose(live.embedding, fresh, atol=1e-10)

    def test_auto_layout_plan_request(self, tune_dir, seeded):
        save_calibration(_synthetic_payload())
        edges, _ = seeded
        plan = Graph.coerce(edges).plan(4, layout="auto")
        assert plan.layout in ("none", "sorted", "blocked")


class TestNativeTierIntegration:
    """The JIT tier's hooks into the cost model, staleness and the CLI."""

    def _native_payload(self, **overrides):
        payload = _synthetic_payload()
        payload["coefficients"]["native:sorted"] = {
            "fixed_s": 1e-5, "per_edge_s": 3e-9, "per_cell_s": 1e-9,
        }
        payload["coefficients"]["native:blocked"] = {
            "fixed_s": 1e-5, "per_edge_s": 4e-9, "per_cell_s": 1e-9,
        }
        payload.update(overrides)
        return payload

    def test_native_presence_flip_is_stale(self, tune_dir):
        from repro.native import native_available

        matching = _synthetic_payload(native=native_available())
        assert calibration_staleness(matching) is None
        flipped = _synthetic_payload(native=not native_available())
        reason = calibration_staleness(flipped)
        assert reason is not None and "native tier" in reason

    def test_legacy_payload_without_native_key(self, tune_dir):
        """Pre-native cache files count as calibrated without the tier."""
        from repro.native import native_available

        reason = calibration_staleness(_synthetic_payload())
        if native_available():
            assert reason is not None and "native tier" in reason
        else:
            assert reason is None

    def test_candidates_exclude_native_when_unavailable(self, monkeypatch):
        from repro.native import availability

        monkeypatch.setattr(
            availability, "_PROBE", (False, "forced absent by test", None)
        )
        model = CostModel.from_calibration(self._native_payload())
        choice = model.choose(1 << 16, 1 << 20, 50, n_workers_available=8)
        assert all(not c.startswith("native") for c in choice.predictions)
        assert choice.backend != "native"

    def test_native_competes_when_available(self, monkeypatch):
        from repro.native import availability

        monkeypatch.setattr(
            availability, "_PROBE", (True, "forced by test", "0.0-test")
        )
        model = CostModel.from_calibration(self._native_payload())
        choice = model.choose(1 << 16, 1 << 20, 50, n_workers_available=8)
        # The synthetic native coefficients undercut every other config by
        # construction, so the choice must land on the JIT tier with the
        # worker cap passed through for its prange pool.
        assert choice.backend == "native" and choice.layout == "sorted"
        assert choice.n_workers == 8

    def test_native_single_worker_leaves_threads_default(self, monkeypatch):
        from repro.native import availability

        monkeypatch.setattr(
            availability, "_PROBE", (True, "forced by test", "0.0-test")
        )
        model = CostModel.from_calibration(self._native_payload())
        choice = model.choose(1 << 16, 1 << 20, 50, n_workers_available=1)
        assert choice.backend == "native"
        assert choice.n_workers is None


class TestShowCLI:
    def test_show_prints_calibration_and_choices(self, tune_dir, capsys):
        from repro.tune.__main__ import main

        save_calibration(_synthetic_payload())
        reset_cost_model()
        assert main(["--show"]) == 0
        out = capsys.readouterr().out
        assert "calibration cache:" in out
        assert "[fresh]" in out
        assert "native tier:" in out
        assert "vectorized:sorted" in out
        assert "choices at representative (n, E, K) points:" in out
        assert "predicted" in out  # the per-point ExecutionChoice rows

    def test_show_without_cache_mentions_defaults(self, tune_dir, capsys):
        from repro.tune.__main__ import main

        assert main(["--show"]) == 0
        out = capsys.readouterr().out
        assert "absent or unreadable" in out
        assert "model source: default" in out

    def test_show_flags_stale_cache(self, tune_dir, capsys):
        from repro.tune.__main__ import main

        save_calibration(_synthetic_payload(cpu_count=99999))
        reset_cost_model()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert main(["--show"]) == 0
        out = capsys.readouterr().out
        assert "STALE:" in out
